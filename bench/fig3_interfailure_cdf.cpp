// Reproduces Fig. 3: the CDF of per-server inter-failure times for VMs and
// PMs, with the statistical fit the paper performs (Gamma wins among
// Exponential/Weibull/Gamma/LogNormal by log-likelihood).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/interfailure.h"
#include "src/analysis/report.h"
#include "src/stats/descriptive.h"
#include "src/stats/ecdf.h"
#include "src/stats/fitting.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();

  std::array<std::vector<double>, 2> gaps;
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    gaps[static_cast<std::size_t>(t)] = analysis::per_server_interfailure_days(
        db, pipeline.failures(),
        {static_cast<trace::MachineType>(t), std::nullopt});
  }

  // CDF curves at a few representative quantiles (the Fig. 3 lines).
  analysis::TextTable curve({"percentile", "PM days", "VM days"});
  const stats::Ecdf pm_cdf(gaps[0]);
  const stats::Ecdf vm_cdf(gaps[1]);
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.80, 0.90, 0.95, 0.99}) {
    curve.add_row({format_double(100.0 * p, 0) + "%",
                   format_double(pm_cdf.quantile(p), 2),
                   format_double(vm_cdf.quantile(p), 2)});
  }
  std::cout << "Fig. 3 (inter-failure time distribution, days)\n"
            << curve.to_string() << "\n";

  // Distribution fits, as in the paper.
  analysis::TextTable fits({"type", "family", "parameters", "logL", "KS"});
  std::array<std::string, 2> best_family;
  std::array<double, 2> means{};
  for (int t = 0; t < 2; ++t) {
    const auto& sample = gaps[static_cast<std::size_t>(t)];
    means[static_cast<std::size_t>(t)] = stats::mean(sample);
    const auto candidates = stats::fit_candidates(sample);
    best_family[static_cast<std::size_t>(t)] = candidates.front().dist->name();
    for (const auto& fit : candidates) {
      fits.add_row({t == 0 ? "PM" : "VM", fit.dist->name(),
                    fit.dist->describe(),
                    format_double(fit.log_likelihood, 1),
                    format_double(fit.ks_statistic, 4)});
    }
  }
  std::cout << fits.to_string() << "\n";

  const auto census_vm = analysis::failure_census(
      db, pipeline.failures(), {trace::MachineType::kVirtual, std::nullopt});
  const double single_share =
      census_vm.failing_servers
          ? static_cast<double>(census_vm.single_failure_servers) /
                census_vm.failing_servers
          : 0.0;

  paperref::Comparison cmp("Fig. 3 -- inter-failure times and Gamma fit");
  cmp.add("VM mean inter-failure days", paperref::kVmInterfailureMeanDays,
          means[1], 2);
  cmp.add_text("PM best-fit family", "gamma", best_family[0]);
  cmp.add_text("VM best-fit family", "gamma", best_family[1]);
  cmp.add("share of failing VMs with a single failure",
          paperref::kVmSingleFailureShare, single_share, 3);

  const auto heavy_tailed = [](const std::string& family) {
    return family == "gamma" || family == "weibull" ||
           family == "lognormal";
  };
  cmp.check("PM inter-failure times are NOT exponential (heavy-tailed fit)",
            heavy_tailed(best_family[0]));
  cmp.check("VM inter-failure times are NOT exponential (heavy-tailed fit)",
            heavy_tailed(best_family[1]));
  cmp.check("VM mean inter-failure time within 2x of the paper's 37.22 days",
            means[1] > paperref::kVmInterfailureMeanDays / 2.0 &&
                means[1] < paperref::kVmInterfailureMeanDays * 2.0);
  cmp.check("majority of failing VMs fail only once (paper: ~60%)",
            single_share > 0.45);
  // The paper's Fig. 3 observations: VM gaps run slightly above PM gaps in
  // the body of the distribution (up to ~100 days), and the two tails
  // nearly overlap (with PMs slightly longer beyond the crossover).
  cmp.check("VM gaps exceed PM gaps in the distribution body (median)",
            vm_cdf.quantile(0.5) >= pm_cdf.quantile(0.5));
  cmp.check("tails nearly overlap (p90 within 25%)",
            pm_cdf.quantile(0.9) < 1.25 * vm_cdf.quantile(0.9) &&
                vm_cdf.quantile(0.9) < 1.25 * pm_cdf.quantile(0.9));
  return bench::finish(cmp);
}
