// Reproduces Fig. 7: weekly failure rates vs resource capacity — CPU counts
// (PM and VM), memory size (PM and VM), VM disk capacity, and VM disk count.
// The disk panels are VM-only because the dataset (like the paper's) has no
// PM disk information.
#include <iostream>

#include "bench/bench_common.h"
#include "src/stats/correlation.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  const analysis::Scope pm{trace::MachineType::kPhysical, std::nullopt};
  const analysis::Scope vm{trace::MachineType::kVirtual, std::nullopt};

  const analysis::CapacityAttribute cpu =
      [](const trace::ServerRecord& s) {
        return std::optional<double>(s.cpu_count);
      };
  const analysis::CapacityAttribute memory =
      [](const trace::ServerRecord& s) {
        return std::optional<double>(s.memory_gb);
      };
  const analysis::CapacityAttribute disk_gb =
      [](const trace::ServerRecord& s) { return s.disk_gb; };
  const analysis::CapacityAttribute disk_count =
      [](const trace::ServerRecord& s) {
        return s.disk_count ? std::optional<double>(*s.disk_count)
                            : std::nullopt;
      };

  // (a) CPU counts.
  const auto pm_cpu = analysis::capacity_binned_rates(
      db, failures, pm, cpu,
      stats::BinSpec::from_edges({1, 2, 3, 6, 12, 20, 28, 48, 128}));
  const auto vm_cpu = analysis::capacity_binned_rates(
      db, failures, vm, cpu, stats::BinSpec::from_edges({1, 2, 3, 6, 16}));
  std::cout << bench::render_binned("Fig. 7(a) PM rate vs CPU count",
                                    pm_cpu)
            << "\n"
            << bench::render_binned("Fig. 7(a) VM rate vs vCPU count",
                                    vm_cpu)
            << "\n";

  // (b) Memory size (GB).
  const auto pm_mem = analysis::capacity_binned_rates(
      db, failures, pm, memory,
      stats::BinSpec::from_edges({1, 6, 48, 96, 192, 512}));
  const auto vm_mem = analysis::capacity_binned_rates(
      db, failures, vm, memory,
      stats::BinSpec::from_edges({0.1, 6, 12, 24, 64}));
  std::cout << bench::render_binned("Fig. 7(b) PM rate vs memory GB", pm_mem)
            << "\n"
            << bench::render_binned("Fig. 7(b) VM rate vs memory GB", vm_mem)
            << "\n";

  // (c)+(d) VM disk capacity and count.
  const auto vm_disk = analysis::capacity_binned_rates(
      db, failures, vm, disk_gb,
      stats::BinSpec::from_edges({1, 12, 24, 48, 8192}));
  const auto vm_disks = analysis::capacity_binned_rates(
      db, failures, vm, disk_count,
      stats::BinSpec::from_edges({1, 2, 3, 4, 5, 6, 7}));
  std::cout << bench::render_binned("Fig. 7(c) VM rate vs disk capacity GB",
                                    vm_disk)
            << "\n"
            << bench::render_binned("Fig. 7(d) VM rate vs number of disks",
                                    vm_disks)
            << "\n";

  // Trend scores (Kendall-style, +1 = strictly increasing across bins).
  const auto trend = [](const analysis::BinnedRates& rates) {
    std::vector<double> populated;
    for (std::size_t b = 0; b < rates.population.size(); ++b) {
      if (rates.population[b] > 0) populated.push_back(rates.overall_rate[b]);
    }
    return stats::monotonic_trend(populated);
  };
  std::cout << "trend scores: VM disks "
            << format_double(trend(vm_disks), 2) << ", VM vCPUs "
            << format_double(trend(vm_cpu), 2) << ", VM disk capacity "
            << format_double(trend(vm_disk), 2) << "\n\n";

  paperref::Comparison cmp("Fig. 7 -- impact of resource capacity");
  cmp.add("PM CPU factor (max/min rate)", paperref::kPmCpuFactor,
          pm_cpu.max_min_rate_factor(), 1);
  cmp.add("VM CPU factor", paperref::kVmCpuFactor,
          vm_cpu.max_min_rate_factor(), 1);
  cmp.add("PM memory factor", paperref::kPmMemFactor,
          pm_mem.max_min_rate_factor(), 1);
  cmp.add("VM memory factor", paperref::kVmMemFactor,
          vm_mem.max_min_rate_factor(), 1);
  cmp.add("VM disk-count factor", paperref::kVmDiskCountFactor,
          vm_disks.max_min_rate_factor(), 1);
  cmp.add("VM rate at 8 GB disks", paperref::kVmDiskCapLowRate,
          vm_disk.overall_rate[0], 5);
  cmp.add("VM rate at >=32 GB disks", paperref::kVmDiskCapHighRate,
          vm_disk.overall_rate[3], 5);

  // Shape checks mirroring the Section V-A prose.
  const auto& pmc = pm_cpu.overall_rate;
  cmp.check("PM rate rises with CPUs up to 24, then drops at 32/64",
            pmc[5] > pmc[0] && pmc[5] > pmc[1] && pmc[5] > pmc[6] &&
                pmc[5] > pmc[7]);
  cmp.check("VM rate rises ~2.5x from 1 to 8 vCPUs",
            vm_cpu.overall_rate[3] > 1.5 * vm_cpu.overall_rate[0]);
  const auto& pmm = pm_mem.overall_rate;
  cmp.check("PM memory shows a bathtub: high at <=4 GB and at >=128 GB",
            pmm[0] > pmm[1] && pmm[4] > pmm[1] && pmm[3] > pmm[1]);
  const auto& vmm = vm_mem.overall_rate;
  cmp.check("VM memory dips in the 4-8 GB band and rises to 32 GB",
            vmm[1] < vmm[0] && vmm[3] > vmm[1]);
  // The small-disk bins hold only ~200 VMs each (15% of VMs sit below
  // 32 GB, as in the paper), so adjacent bins are noisy; the check compares
  // the ends of the rise and the plateau.
  const auto& vdc = vm_disk.overall_rate;
  cmp.check("VM disk-capacity rate rises below 32 GB, then plateaus",
            vdc[0] < 0.5 * vdc[3] && vdc[1] < vdc[3] &&
                vdc[2] < 1.3 * vdc[3] && vdc[3] < 0.008);
  const auto& vdn = vm_disks.overall_rate;
  cmp.check("VM rate increases monotonically with the number of disks",
            vdn[0] < vdn[1] && vdn[1] < vdn[2] && vdn[2] <= vdn[5] * 1.2);
  cmp.check("disk count is the strongest VM capacity factor (~10x)",
            vm_disks.max_min_rate_factor() >
                    vm_cpu.max_min_rate_factor() &&
                vm_disks.max_min_rate_factor() >
                    vm_mem.max_min_rate_factor());
  return bench::finish(cmp);
}
