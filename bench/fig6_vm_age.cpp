// Reproduces Fig. 6: failures vs VM age. The paper finds the age CDF close
// to the diagonal (no bathtub) with a weak positive trend in the PDF, over
// the ~75% of VMs whose creation date is observable.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/age.h"
#include "src/analysis/report.h"
#include "src/stats/ecdf.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();

  const auto result = analysis::analyze_vm_age(db, pipeline.failures());

  analysis::TextTable curve({"age percentile", "age (days)", "uniform ref"});
  if (!result.failure_age_days.empty()) {
    const stats::Ecdf cdf(result.failure_age_days);
    const double max_age = cdf.sorted_values().back();
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      curve.add_row({format_double(100.0 * p, 0) + "%",
                     format_double(cdf.quantile(p), 1),
                     format_double(p * max_age, 1)});
    }
  }
  std::cout << "Fig. 6 (failure count vs VM age; CDF vs the diagonal)\n"
            << curve.to_string() << "\n";

  analysis::TextTable pdf({"age bin (30d)", "normalized failure count"});
  for (std::size_t b = 0; b < result.binned_pdf.size(); ++b) {
    pdf.add_row({std::to_string(b), format_double(result.binned_pdf[b], 2)});
  }
  std::cout << pdf.to_string() << "\n";

  paperref::Comparison cmp("Fig. 6 -- VM age vs failures");
  cmp.add("observable VM fraction", paperref::kVmObservableAgeShare,
          result.observable_fraction, 3);
  cmp.add("KS distance of age CDF to uniform", 0.05,
          result.ks_distance_to_uniform, 3);
  cmp.add("PDF trend slope (weakly positive)", 0.01,
          result.pdf_trend_slope, 4);

  cmp.check("~75% of VMs have observable creation dates",
            std::abs(result.observable_fraction -
                     paperref::kVmObservableAgeShare) < 0.10);
  cmp.check("age CDF is close to the diagonal (no bathtub)",
            result.ks_distance_to_uniform < 0.25);
  cmp.check("failures show a weak positive trend with age (slope >= 0)",
            result.pdf_trend_slope > -0.005);
  cmp.check("age sample is non-trivial",
            result.failure_age_days.size() > 100);
  return bench::finish(cmp);
}
