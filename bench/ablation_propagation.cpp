// Ablation: switch off spatial incident expansion and show that Table VI's
// multi-server share vanishes — the measured spatial dependency is produced
// by the propagation mechanism (boxes, power domains, app groups).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/report.h"
#include "src/analysis/spatial.h"
#include "src/sim/scenario.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto baseline_config = sim::SimulationConfig::paper_defaults();
  const auto ablated_config =
      sim::apply_ablation(baseline_config, sim::Ablation::kNoPropagation);
  const auto& baseline = bench::simulated(baseline_config);
  const auto& ablated = bench::simulated(ablated_config);

  analysis::TextTable table(
      {"variant", "1 server", ">=2 servers", "max incident", "VM dep",
       "PM dep"});
  std::array<analysis::SpatialAnalysis, 2> results;
  const auto add = [&](const trace::TraceDatabase& db,
                       const std::string& name, int variant) {
    const analysis::AnalysisPipeline pipeline(db);
    results[static_cast<std::size_t>(variant)] =
        analysis::analyze_spatial(db, pipeline.class_lookup());
    const auto& r = results[static_cast<std::size_t>(variant)];
    table.add_row({name, format_double(100.0 * r.all.one, 1) + "%",
                   format_double(100.0 * r.all.two_or_more, 1) + "%",
                   std::to_string(r.max_servers_in_incident),
                   format_double(100.0 * r.vm_only.dependency_fraction(), 1) +
                       "%",
                   format_double(100.0 * r.pm_only.dependency_fraction(), 1) +
                       "%"});
  };
  add(baseline, "baseline", 0);
  add(ablated, "no-propagation", 1);
  std::cout << "Ablation: spatial propagation vs Table VI\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Ablation -- propagation drives spatial "
                           "dependency");
  cmp.add("baseline >=2-server share", paperref::kTable6All.two_or_more,
          results[0].all.two_or_more, 3);
  cmp.add("ablated >=2-server share", 0.0, results[1].all.two_or_more, 3);
  cmp.check("baseline shows the paper's multi-server incidents",
            results[0].all.two_or_more > 0.08);
  cmp.check("ablated incidents are all singletons",
            results[1].all.two_or_more == 0.0 &&
                results[1].max_servers_in_incident == 1);
  cmp.check("baseline VM dependency exceeds PM dependency",
            results[0].vm_only.dependency_fraction() >
                results[0].pm_only.dependency_fraction());
  return bench::finish(cmp);
}
