// Reproduces Fig. 1: the distribution of crash tickets across the failure
// classes (hardware, network, power, reboot, software) per subsystem, using
// the k-means classifier exactly as the paper does, plus the "other" shares
// quoted in Section III-A.
#include <array>
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/report.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& pipeline = bench::shared_pipeline();

  // Predicted-class counts per subsystem.
  std::array<std::array<std::size_t, trace::kFailureClassCount>,
             trace::kSubsystemCount>
      counts{};
  std::array<std::size_t, trace::kSubsystemCount> totals{};
  for (const trace::Ticket* t : pipeline.failures()) {
    ++counts[t->subsystem][static_cast<std::size_t>(pipeline.class_of(*t))];
    ++totals[t->subsystem];
  }

  analysis::TextTable table({"class", "Sys I", "Sys II", "Sys III", "Sys IV",
                             "Sys V", "All"});
  std::array<std::size_t, trace::kFailureClassCount> all_counts{};
  std::size_t all_total = 0;
  for (trace::Subsystem s = 0; s < trace::kSubsystemCount; ++s) {
    for (std::size_t c = 0; c < trace::kFailureClassCount; ++c) {
      all_counts[c] += counts[s][c];
    }
    all_total += totals[s];
  }
  for (trace::FailureClass c : trace::kAllFailureClasses) {
    std::vector<std::string> row = {std::string(trace::to_string(c))};
    for (trace::Subsystem s = 0; s < trace::kSubsystemCount; ++s) {
      const double share =
          totals[s] ? 100.0 * counts[s][static_cast<std::size_t>(c)] /
                          totals[s]
                    : 0.0;
      row.push_back(format_double(share, 1) + "%");
    }
    row.push_back(format_double(100.0 *
                                    all_counts[static_cast<std::size_t>(c)] /
                                    all_total,
                                1) +
                  "%");
    table.add_row(std::move(row));
  }
  std::cout << "Fig. 1 (class shares of crash tickets, k-means predicted)\n"
            << table.to_string() << "\n";

  const auto share = [&](trace::Subsystem s, trace::FailureClass c) {
    return totals[s] ? static_cast<double>(
                           counts[s][static_cast<std::size_t>(c)]) /
                           totals[s]
                     : 0.0;
  };
  const auto all_share = [&](trace::FailureClass c) {
    return static_cast<double>(all_counts[static_cast<std::size_t>(c)]) /
           all_total;
  };

  paperref::Comparison cmp("Fig. 1 -- ticket distribution across classes");
  cmp.add("classifier accuracy", paperref::kClassificationAccuracy,
          pipeline.classification().accuracy, 3);
  cmp.add("'other' share overall", paperref::kOtherShareOverall,
          all_share(trace::FailureClass::kOther), 3);
  for (trace::Subsystem s = 0; s < trace::kSubsystemCount; ++s) {
    cmp.add(std::string(trace::subsystem_name(s)) + " 'other' share",
            paperref::kOtherShare[s], share(s, trace::FailureClass::kOther),
            3);
  }
  cmp.add("software+reboot share of all crash tickets",
          paperref::kSoftwareRebootShare,
          all_share(trace::FailureClass::kSoftware) +
              all_share(trace::FailureClass::kReboot),
          3);

  cmp.check("classifier accuracy at or above the paper's 87% - 5pp",
            pipeline.classification().accuracy >
                paperref::kClassificationAccuracy - 0.05);
  cmp.check("software and reboot dominate the classified tickets",
            all_share(trace::FailureClass::kSoftware) +
                    all_share(trace::FailureClass::kReboot) >
                all_share(trace::FailureClass::kHardware) +
                    all_share(trace::FailureClass::kNetwork) +
                    all_share(trace::FailureClass::kPower));
  cmp.check("Sys V is power-outage heavy (~29%)",
            share(4, trace::FailureClass::kPower) > 0.15);
  cmp.check("Sys III shows (almost) no power failures",
            share(2, trace::FailureClass::kPower) < 0.03);
  cmp.check("hardware+network prominent in Sys I (~26%+13% prose)",
            share(0, trace::FailureClass::kHardware) +
                    share(0, trace::FailureClass::kNetwork) >
                0.12);
  return bench::finish(cmp);
}
