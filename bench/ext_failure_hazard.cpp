// Extension: non-parametric hazard rates of inter-failure times. The
// paper's finding that failures are "not memoryless" (recurrence 35-42x
// random, Gamma shape < 1 fits) predicts a strongly *decreasing* hazard
// rate; an exponential/memoryless process would show a flat one. This bench
// estimates the Nelson-Aalen hazard over the per-server inter-failure gaps
// and verifies the prediction.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/burstiness.h"
#include "src/analysis/interfailure.h"
#include "src/analysis/report.h"
#include "src/stats/hazard_estimate.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  const std::vector<double> edges = {0.0, 1.0, 7.0, 30.0, 90.0, 365.0};
  analysis::TextTable table({"gap range [days]", "PM hazard [1/day]",
                             "VM hazard [1/day]"});
  std::array<std::vector<double>, 2> gaps;
  std::array<std::vector<double>, 2> rates;
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    gaps[static_cast<std::size_t>(t)] = analysis::per_server_interfailure_days(
        db, failures, {static_cast<trace::MachineType>(t), std::nullopt});
    rates[static_cast<std::size_t>(t)] =
        stats::binned_hazard_rate(gaps[static_cast<std::size_t>(t)], edges);
  }
  for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
    table.add_row({"[" + format_double(edges[b], 0) + ", " +
                       format_double(edges[b + 1], 0) + ")",
                   format_double(rates[0][b], 4),
                   format_double(rates[1][b], 4)});
  }
  std::cout << "Extension: Nelson-Aalen hazard of inter-failure times\n"
            << table.to_string() << "\n";

  const double pm_factor = stats::hazard_decrease_factor(gaps[0], edges);
  const double vm_factor = stats::hazard_decrease_factor(gaps[1], edges);
  const double pm_dispersion = analysis::dispersion_index(
      db, failures, {trace::MachineType::kPhysical, std::nullopt},
      analysis::Granularity::kDaily);
  const double vm_dispersion = analysis::dispersion_index(
      db, failures, {trace::MachineType::kVirtual, std::nullopt},
      analysis::Granularity::kDaily);

  paperref::Comparison cmp(
      "Extension -- decreasing hazard confirms non-memorylessness");
  cmp.add("PM hazard decrease factor (first/last bin)", 30.0, pm_factor, 1);
  cmp.add("VM hazard decrease factor", 30.0, vm_factor, 1);
  cmp.add("PM daily dispersion index (Poisson = 1)", 2.0, pm_dispersion, 2);
  cmp.add("VM daily dispersion index (Poisson = 1)", 2.0, vm_dispersion, 2);
  cmp.check("PM hazard decreases by more than 10x across the gap range",
            pm_factor > 10.0);
  cmp.check("VM hazard decreases by more than 10x across the gap range",
            vm_factor > 10.0);
  cmp.check("daily failure counts are super-Poissonian (dispersion > 1.3)",
            pm_dispersion > 1.3 && vm_dispersion > 1.3);
  // The final bin is excluded: gaps close to the one-year observation span
  // are right-window artifacts (the at-risk set collapses near the maximum
  // observable gap, inflating the Nelson-Aalen increments).
  cmp.check("hazard decreases monotonically up to the 90-day bin (both "
            "types)",
            [&] {
              for (int t = 0; t < 2; ++t) {
                const auto& r = rates[static_cast<std::size_t>(t)];
                for (std::size_t b = 1; b + 1 < r.size(); ++b) {
                  if (r[b] <= 0.0) continue;  // beyond data
                  if (r[b] > r[b - 1] * 1.05) return false;
                }
              }
              return true;
            }());
  return bench::finish(cmp);
}
