// Reproduces Fig. 10: the impact of the VM on/off frequency (measured from
// the 15-min power data of the two-month tracking window, extrapolated to
// the year) on weekly VM failure rates. The paper finds an increasing trend
// up to ~2 cycles/month and no clear trend beyond.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/management.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  const auto result = analysis::onoff_binned_rates(db, failures);
  std::cout << bench::render_binned(
                   "Fig. 10 (VM weekly failure rate vs on/off per month)",
                   result)
            << "\n";

  std::size_t total = 0;
  for (std::size_t n : result.population) total += n;
  std::cout << "population shares: ";
  for (std::size_t b = 0; b < result.population.size(); ++b) {
    std::cout << result.spec.label(b) << "="
              << format_double(100.0 * result.population[b] / total, 1)
              << "% ";
  }
  std::cout << "\n\n";

  const auto& rates = result.overall_rate;
  const double at_most_once =
      static_cast<double>(result.population[0] + result.population[1]) /
      total;

  paperref::Comparison cmp("Fig. 10 -- impact of VM on/off frequency");
  cmp.add("share of VMs cycling at most once/month",
          paperref::kOnOffAtMostOncePerMonth, at_most_once, 2);
  cmp.add("rate with no cycling", 0.002, rates[0], 5);
  cmp.add("rate around 2 cycles/month", 0.0035, rates[2], 5);

  // The paper reports a rise from 0.002 to 0.0035 over 0 to ~2 cycles and
  // fluctuation without trend beyond; the measured-frequency bins mix
  // nominal rates (two-month Poisson sampling), so the check compares the
  // no-cycling bin against the 0-2 cycle band as a whole.
  cmp.check("rate increases from 0 to ~2 cycles/month",
            rates[0] < rates[1] && rates[0] < rates[2] &&
                rates[0] < 0.8 * std::max(rates[1], rates[2]));
  cmp.check("no strong deterioration at high frequencies (within 1.5x of "
            "the 2/month rate)",
            rates[rates.size() - 1] < 1.5 * rates[2] &&
                rates[rates.size() - 1] > rates[0] * 0.8);
  cmp.check("majority of VMs cycle at most once per month",
            at_most_once > 0.5);
  return bench::finish(cmp);
}
