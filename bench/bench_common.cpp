#include "bench/bench_common.h"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/analysis/artifact_cache.h"
#include "src/analysis/report.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace fa::bench {

namespace {

bool g_verbose = false;
std::string g_metrics_path;
std::string g_trace_path;

// Applies a --threads value, exiting with a diagnostic when it is not a
// number (silently treating "abc" as 0 would fan out to every core).
void set_threads_or_die(std::string_view value) {
  const std::string text(value);
  char* end = nullptr;
  const unsigned long n = std::strtoul(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    std::cerr << "invalid --threads value '" << text
              << "' (expected a non-negative integer)\n";
    std::exit(2);
  }
  ThreadPool::set_default_thread_count(static_cast<std::size_t>(n));
}

void export_observability_at_exit() {
  obs::export_registry_files(g_metrics_path, g_trace_path);
}

}  // namespace

void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--no-cache") {
      analysis::ArtifactCache::global().set_enabled(false);
    } else if (arg == "--no-obs") {
      obs::set_enabled(false);
    } else if (arg == "--verbose") {
      g_verbose = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      set_threads_or_die(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      set_threads_or_die(arg.substr(10));
    } else if (arg == "--metrics" && i + 1 < argc) {
      g_metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      g_metrics_path = arg.substr(10);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      g_trace_path = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      g_trace_path = arg.substr(12);
    }
  }
  if (!g_metrics_path.empty() || !g_trace_path.empty()) {
    // Touch the (leaked) registry before registering the handler so it
    // exists whenever the handler runs; atexit order is then irrelevant.
    obs::MetricsRegistry::global();
    std::atexit(export_observability_at_exit);
  }
}

const trace::TraceDatabase& simulated(const sim::SimulationConfig& config) {
  // Pin every database handed out here for the life of the process: bench
  // binaries hold plain references, which must survive a cache clear.
  static std::mutex mutex;
  static std::vector<std::shared_ptr<const trace::TraceDatabase>> pinned;
  auto db = analysis::ArtifactCache::global().database(config);
  std::lock_guard<std::mutex> lock(mutex);
  pinned.push_back(std::move(db));
  return *pinned.back();
}

const trace::TraceDatabase& shared_db() {
  static const trace::TraceDatabase& db =
      simulated(sim::SimulationConfig::paper_defaults());
  return db;
}

const analysis::AnalysisPipeline& shared_pipeline() {
  static const std::shared_ptr<const analysis::AnalysisPipeline> pipeline =
      analysis::ArtifactCache::global().pipeline(
          sim::SimulationConfig::paper_defaults());
  return *pipeline;
}

std::string render_binned(const std::string& title,
                          const analysis::BinnedRates& rates,
                          std::size_t min_population) {
  analysis::TextTable table(
      {"bin", "population", "failures", "weekly rate", "p25", "p75"});
  for (std::size_t b = 0; b < rates.population.size(); ++b) {
    if (rates.population[b] < min_population) continue;
    const auto& summary = rates.weekly_summary[b];
    table.add_row({rates.spec.label(b), std::to_string(rates.population[b]),
                   std::to_string(rates.failure_count[b]),
                   format_double(summary.mean, 5),
                   format_double(summary.p25, 5),
                   format_double(summary.p75, 5)});
  }
  return title + "\n" + table.to_string();
}

int finish(const paperref::Comparison& comparison) {
  std::cout << comparison.render();
  const auto& cache = analysis::ArtifactCache::global();
  if (g_verbose || !cache.enabled()) {
    const auto stats = cache.stats();
    std::cout << "artifact cache" << (cache.enabled() ? "" : " (disabled)")
              << ": database hits=" << stats.database.hits
              << " misses=" << stats.database.misses
              << " builds=" << stats.database.builds
              << "; pipeline hits=" << stats.pipeline.hits
              << " misses=" << stats.pipeline.misses
              << " builds=" << stats.pipeline.builds << "\n";
  }
  std::cout << std::flush;
  return 0;
}

}  // namespace fa::bench
