#include "bench/bench_common.h"

#include <iostream>

#include "src/analysis/report.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

namespace fa::bench {

const trace::TraceDatabase& shared_db() {
  static const trace::TraceDatabase db =
      sim::simulate(sim::SimulationConfig::paper_defaults());
  return db;
}

const analysis::AnalysisPipeline& shared_pipeline() {
  static const analysis::AnalysisPipeline pipeline(shared_db());
  return pipeline;
}

std::string render_binned(const std::string& title,
                          const analysis::BinnedRates& rates,
                          std::size_t min_population) {
  analysis::TextTable table(
      {"bin", "population", "failures", "weekly rate", "p25", "p75"});
  for (std::size_t b = 0; b < rates.population.size(); ++b) {
    if (rates.population[b] < min_population) continue;
    const auto& summary = rates.weekly_summary[b];
    table.add_row({rates.spec.label(b), std::to_string(rates.population[b]),
                   std::to_string(rates.failure_count[b]),
                   format_double(summary.mean, 5),
                   format_double(summary.p25, 5),
                   format_double(summary.p75, 5)});
  }
  return title + "\n" + table.to_string();
}

int finish(const paperref::Comparison& comparison) {
  std::cout << comparison.render() << std::flush;
  return 0;
}

}  // namespace fa::bench
