#include "bench/bench_common.h"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/analysis/artifact_cache.h"
#include "src/analysis/report.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace fa::bench {

void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--no-cache") {
      analysis::ArtifactCache::global().set_enabled(false);
    } else if (arg == "--threads" && i + 1 < argc) {
      ThreadPool::set_default_thread_count(
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg.rfind("--threads=", 0) == 0) {
      ThreadPool::set_default_thread_count(static_cast<std::size_t>(
          std::strtoul(arg.substr(10).data(), nullptr, 10)));
    }
  }
}

const trace::TraceDatabase& simulated(const sim::SimulationConfig& config) {
  // Pin every database handed out here for the life of the process: bench
  // binaries hold plain references, which must survive a cache clear.
  static std::mutex mutex;
  static std::vector<std::shared_ptr<const trace::TraceDatabase>> pinned;
  auto db = analysis::ArtifactCache::global().database(config);
  std::lock_guard<std::mutex> lock(mutex);
  pinned.push_back(std::move(db));
  return *pinned.back();
}

const trace::TraceDatabase& shared_db() {
  static const trace::TraceDatabase& db =
      simulated(sim::SimulationConfig::paper_defaults());
  return db;
}

const analysis::AnalysisPipeline& shared_pipeline() {
  static const std::shared_ptr<const analysis::AnalysisPipeline> pipeline =
      analysis::ArtifactCache::global().pipeline(
          sim::SimulationConfig::paper_defaults());
  return *pipeline;
}

std::string render_binned(const std::string& title,
                          const analysis::BinnedRates& rates,
                          std::size_t min_population) {
  analysis::TextTable table(
      {"bin", "population", "failures", "weekly rate", "p25", "p75"});
  for (std::size_t b = 0; b < rates.population.size(); ++b) {
    if (rates.population[b] < min_population) continue;
    const auto& summary = rates.weekly_summary[b];
    table.add_row({rates.spec.label(b), std::to_string(rates.population[b]),
                   std::to_string(rates.failure_count[b]),
                   format_double(summary.mean, 5),
                   format_double(summary.p25, 5),
                   format_double(summary.p75, 5)});
  }
  return title + "\n" + table.to_string();
}

int finish(const paperref::Comparison& comparison) {
  std::cout << comparison.render() << std::flush;
  return 0;
}

}  // namespace fa::bench
