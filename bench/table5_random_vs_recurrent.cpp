// Reproduces Table V: weekly random failure probability vs recurrent
// failure probability within a week, and their ratio, per machine type and
// subsystem. The paper's headline: recurrence exceeds random by ~35x (PM)
// and ~42x (VM).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/report.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  std::array<std::array<double, 7>, 2> random{}, recurrent{};  // [type][All+5]
  analysis::TextTable table({"type", "scope", "random", "recurrent",
                             "ratio"});
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const auto type = static_cast<trace::MachineType>(t);
    for (int s = -1; s < trace::kSubsystemCount; ++s) {
      analysis::Scope scope{type, std::nullopt};
      std::string label = "All";
      if (s >= 0) {
        scope.subsystem = static_cast<trace::Subsystem>(s);
        label = std::string(trace::subsystem_name(
            static_cast<trace::Subsystem>(s)));
        if (db.server_count(type, static_cast<trace::Subsystem>(s)) == 0) {
          continue;
        }
      }
      const double rnd = analysis::random_failure_probability(
          db, failures, scope, analysis::Granularity::kWeekly);
      const double rec = analysis::recurrent_probability(
          db, failures, scope, kMinutesPerWeek);
      random[static_cast<std::size_t>(t)][static_cast<std::size_t>(s + 1)] =
          rnd;
      recurrent[static_cast<std::size_t>(t)][static_cast<std::size_t>(s + 1)] =
          rec;
      table.add_row({std::string(trace::to_string(type)), label,
                     format_double(rnd, 4), format_double(rec, 3),
                     rnd > 0 ? format_double(rec / rnd, 1) + "x" : "n.a."});
    }
  }
  std::cout << "Table V (weekly random vs recurrent failures)\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Table V -- random vs recurrent probabilities");
  cmp.add("PM All random", paperref::kTable5Pm[0].random, random[0][0], 4);
  cmp.add("PM All recurrent", paperref::kTable5Pm[0].recurrent,
          recurrent[0][0], 3);
  cmp.add("PM All ratio", paperref::kTable5Pm[0].ratio,
          recurrent[0][0] / random[0][0], 1);
  cmp.add("VM All random", paperref::kTable5Vm[0].random, random[1][0], 4);
  cmp.add("VM All recurrent", paperref::kTable5Vm[0].recurrent,
          recurrent[1][0], 3);
  cmp.add("VM All ratio", paperref::kTable5Vm[0].ratio,
          recurrent[1][0] / random[1][0], 1);

  const double pm_ratio = recurrent[0][0] / random[0][0];
  const double vm_ratio = recurrent[1][0] / random[1][0];
  cmp.check("failures are not memoryless: PM ratio above 10x",
            pm_ratio > 10.0);
  cmp.check("failures are not memoryless: VM ratio above 10x",
            vm_ratio > 10.0);
  cmp.check("VM recurrence intensity (ratio) exceeds PM",
            vm_ratio > pm_ratio);
  cmp.check("absolute recurrent probability higher for PM than VM",
            recurrent[0][0] > recurrent[1][0]);
  cmp.check("PM ratio within the paper's order of magnitude (15x-80x)",
            pm_ratio > 15.0 && pm_ratio < 80.0);
  cmp.check("Sys II VMs have zero random failure probability",
            random[1][2] == 0.0);
  return bench::finish(cmp);
}
