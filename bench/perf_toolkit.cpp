// Performance toolkit. Default mode times the pipeline stages (simulate,
// classify) serial vs parallel and cache-cold vs cache-warm, breaks the
// classify stage into vectorize/kmeans sub-stages timed dense vs sparse
// (with an assignments-identical cross-check), times trace save/load CSV
// vs columnar (with a record-identity and out-of-core-equivalence check),
// checks that the parallel trace is identical to the serial one, times the
// vectorized stats kernels against their scalar references (`simd` block),
// sweeps the stages over 1/2/4/8 threads with an Amdahl serial-fraction
// fit (`thread_scaling` block; meaningless on a 1-core host, which sets
// `single_core_warning` and warns on stderr), and writes the results to
// BENCH_perf.json (machine-readable; path override:
// --json PATH; fleet size: --scale F, default 0.3). --stream S instead
// runs the out-of-core path end to end — streaming simulate -> columnar
// file -> chunk-at-a-time summary at scale S (which may exceed 1) — and
// reports peak RSS alongside the timings (default JSON: BENCH_stream.json).
// --metrics PATH / --trace-out PATH write the observability registry's
// JSON snapshot and Chrome trace after the stage report; --no-obs turns
// recording off. The google-benchmark microbenchmarks of the underlying
// kernels (fitting, ECDF, k-means, extraction) run with --micro, which
// accepts the usual --benchmark_* flags.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/artifact_cache.h"
#include "src/analysis/classification.h"
#include "src/analysis/out_of_core.h"
#include "src/detect/serve.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/recurrence.h"
#include "src/sim/simulator.h"
#include "src/trace/columnar_io.h"
#include "src/trace/csv_io.h"
#include "src/trace/trace_writer.h"
#include "src/stats/ecdf.h"
#include "src/stats/fitting.h"
#include "src/stats/kmeans.h"
#include "src/stats/simd.h"
#include "src/text/features.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace {

using namespace fa;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// A cheap structural checksum of a trace: enough to certify that two runs
// produced the same event sequence.
std::uint64_t trace_checksum(const trace::TraceDatabase& db) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(db.tickets().size());
  for (const auto& t : db.tickets()) {
    mix(static_cast<std::uint64_t>(t.server.value));
    mix(static_cast<std::uint64_t>(t.opened));
    mix(static_cast<std::uint64_t>(t.closed));
    mix(t.is_crash);
  }
  return h;
}

struct StageTiming {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
};

struct SubStageTiming {
  std::string name;
  double dense_ms = 0.0;
  double sparse_ms = 0.0;
};

// ---- simd block: dispatched kernels vs their scalar references ----

struct KernelTiming {
  std::string name;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  double speedup() const { return simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0; }
};

template <typename F>
double time_kernel_ms(int iters, F&& f) {
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) benchmark::DoNotOptimize(f());
  return ms_since(t0);
}

// Times each stats kernel over an L2-resident buffer, scalar reference vs
// the dispatched entry point, in one binary (both are always compiled in).
// The equivalence tests pin that the results agree; this block pins that
// the vector path is actually faster.
std::vector<KernelTiming> run_simd_report(std::size_t n, int iters) {
  Rng rng(17);
  std::vector<double> a(n), b(n), cdf(n);
  for (double& x : a) x = rng.uniform(0.1, 10.0);
  for (double& x : b) x = rng.uniform(0.1, 10.0);
  // Sorted pseudo-CDF values for the KS scan.
  for (std::size_t i = 0; i < n; ++i) {
    cdf[i] = (static_cast<double>(i) + 0.3) / static_cast<double>(n);
  }
  // A sparse row hitting every fourth dense coordinate.
  const std::size_t nnz = n / 4;
  std::vector<double> values(nnz);
  std::vector<std::uint32_t> indices(nnz);
  for (std::size_t e = 0; e < nnz; ++e) {
    values[e] = rng.uniform(0.1, 10.0);
    indices[e] = static_cast<std::uint32_t>(4 * e);
  }
  const double mu = stats::simd::scalar::sum(a) / static_cast<double>(n);

  namespace sd = stats::simd;
  std::vector<KernelTiming> kernels;
  const auto time_pair = [&](const char* name, auto&& scalar_fn,
                             auto&& simd_fn) {
    KernelTiming k;
    k.name = name;
    k.scalar_ms = time_kernel_ms(iters, scalar_fn);
    k.simd_ms = time_kernel_ms(iters, simd_fn);
    kernels.push_back(std::move(k));
  };
  time_pair("sum", [&] { return sd::scalar::sum(a); },
            [&] { return sd::sum(a); });
  time_pair("sum_sq", [&] { return sd::scalar::sum_sq(a); },
            [&] { return sd::sum_sq(a); });
  time_pair("sum_sq_dev", [&] { return sd::scalar::sum_sq_dev(a, mu); },
            [&] { return sd::sum_sq_dev(a, mu); });
  time_pair("dot", [&] { return sd::scalar::dot(a, b); },
            [&] { return sd::dot(a, b); });
  time_pair("squared_distance",
            [&] { return sd::scalar::squared_distance(a, b); },
            [&] { return sd::squared_distance(a, b); });
  time_pair("sparse_dot",
            [&] {
              return sd::scalar::sparse_dot(values.data(), indices.data(), nnz,
                                            b.data());
            },
            [&] {
              return sd::sparse_dot(values.data(), indices.data(), nnz,
                                    b.data());
            });
  time_pair("ks_max_deviation",
            [&] { return sd::scalar::ks_max_deviation(cdf.data(), n); },
            [&] { return sd::ks_max_deviation(cdf.data(), n); });
  return kernels;
}

// ---- thread_scaling block: stage sweep over 1/2/4/8 threads ----

inline constexpr std::array<int, 4> kScalingThreads = {1, 2, 4, 8};

struct ScalingStage {
  std::string name;
  std::array<double, kScalingThreads.size()> ms{};
  double serial_fraction = 0.0;
};

int run_stage_report(double scale, const std::string& json_path) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
  const std::size_t hw = ThreadPool::hardware_threads();
  const bool single_core = hw <= 1;
  if (single_core) {
    std::fprintf(stderr,
                 "warning: only 1 hardware core is available; parallel "
                 "speedups and the thread-scaling sweep are not meaningful "
                 "on this host\n");
  }
  std::vector<StageTiming> stages;

  // simulate: serial vs parallel, with an identity check on the output.
  ThreadPool::set_default_thread_count(1);
  auto t0 = Clock::now();
  const auto serial_db = sim::simulate(config);
  const double simulate_serial = ms_since(t0);
  ThreadPool::set_default_thread_count(0);  // hardware concurrency
  t0 = Clock::now();
  const auto parallel_db = sim::simulate(config);
  const double simulate_parallel = ms_since(t0);
  const bool identical =
      trace_checksum(serial_db) == trace_checksum(parallel_db);
  stages.push_back({"simulate", simulate_serial, simulate_parallel});

  // classify (the analysis pipeline: extraction + k-means restarts).
  ThreadPool::set_default_thread_count(1);
  t0 = Clock::now();
  const analysis::AnalysisPipeline serial_pipeline(serial_db);
  const double classify_serial = ms_since(t0);
  ThreadPool::set_default_thread_count(0);
  t0 = Clock::now();
  const analysis::AnalysisPipeline parallel_pipeline(parallel_db);
  const double classify_parallel = ms_since(t0);
  stages.push_back({"classify", classify_serial, classify_parallel});

  // classify sub-stages, dense vs sparse, on the crash-extraction shape:
  // TF-IDF over every ticket description, then anchored 24-cluster k-means.
  // The dense path is the reference implementation; the sparse path is what
  // production classification runs, and its assignments must match.
  ThreadPool::set_default_thread_count(0);
  std::vector<SubStageTiming> substages;
  bool sparse_matches_dense = false;
  stats::IterationStats sparse_stats;
  {
    std::vector<std::string> corpus;
    corpus.reserve(parallel_db.tickets().size());
    for (const auto& t : parallel_db.tickets()) corpus.push_back(t.description);
    text::VectorizerOptions vec_options;
    vec_options.min_document_frequency = 3;
    const auto vectorizer = text::Vectorizer::fit(corpus, vec_options);
    t0 = Clock::now();
    const auto dense_features = vectorizer.transform_all(corpus);
    const double vectorize_dense = ms_since(t0);
    t0 = Clock::now();
    const auto sparse_features = vectorizer.transform_all_sparse(corpus);
    const double vectorize_sparse = ms_since(t0);
    substages.push_back({"vectorize", vectorize_dense, vectorize_sparse});

    stats::KMeansOptions km;
    km.k = 24;
    km.restarts = 3;
    km.anchors.push_back(dense_features.front());
    Rng dense_rng(13);
    t0 = Clock::now();
    const auto dense_run = stats::kmeans(dense_features, km, dense_rng);
    const double kmeans_dense = ms_since(t0);
    Rng sparse_rng(13);
    t0 = Clock::now();
    const auto sparse_run = stats::kmeans(sparse_features, km, sparse_rng);
    const double kmeans_sparse = ms_since(t0);
    substages.push_back({"kmeans", kmeans_dense, kmeans_sparse});
    sparse_matches_dense = dense_run.assignment == sparse_run.assignment;
    sparse_stats = sparse_run.stats;
  }

  // Thread-scaling sweep: the two stages at 1/2/4/8 threads, with a
  // least-squares Amdahl fit (stats::amdahl_serial_fraction) per stage.
  // Oversubscribing a small host is intentional — the curve flattening out
  // past the core count is exactly what the serial-fraction fit reports.
  std::vector<ScalingStage> scaling = {{"simulate"}, {"classify"}};
  for (std::size_t ti = 0; ti < kScalingThreads.size(); ++ti) {
    ThreadPool::set_default_thread_count(
        static_cast<std::size_t>(kScalingThreads[ti]));
    t0 = Clock::now();
    const auto db = sim::simulate(config);
    scaling[0].ms[ti] = ms_since(t0);
    t0 = Clock::now();
    const analysis::AnalysisPipeline pipeline(db);
    scaling[1].ms[ti] = ms_since(t0);
  }
  ThreadPool::set_default_thread_count(0);
  for (ScalingStage& s : scaling) {
    s.serial_fraction = stats::amdahl_serial_fraction(
        kScalingThreads, std::span<const double>(s.ms));
  }

  // SIMD kernels: scalar reference vs the dispatched vector path.
  const std::size_t simd_elements = std::size_t{1} << 14;
  const auto simd_kernels = run_simd_report(simd_elements, 2000);

  // simulate+classify through the artifact cache: cold miss vs warm hit.
  auto& cache = analysis::ArtifactCache::global();
  cache.clear();
  t0 = Clock::now();
  const auto cold = analysis::cached_context(config);
  const double cache_cold = ms_since(t0);
  t0 = Clock::now();
  const auto warm = analysis::cached_context(config);
  const double cache_warm = ms_since(t0);
  const bool cache_shared = cold.db.get() == warm.db.get() &&
                            cold.pipeline.get() == warm.pipeline.get();

  // Trace IO: save/load the same database as CSV and as the chunked
  // columnar format, cross-checking record identity and that the
  // out-of-core chunk summary matches the in-memory one.
  namespace fs = std::filesystem;
  const fs::path io_dir = "bench_io_tmp";
  const fs::path csv_dir = io_dir / "csv";
  const fs::path fac_path = io_dir / "trace.fac";
  fs::remove_all(io_dir);
  fs::create_directories(csv_dir);
  t0 = Clock::now();
  trace::save_database(parallel_db, csv_dir.string());
  const double csv_save = ms_since(t0);
  std::uint64_t csv_bytes = 0;
  for (const auto& entry : fs::directory_iterator(csv_dir)) {
    csv_bytes += entry.file_size();
  }
  t0 = Clock::now();
  const auto csv_loaded = trace::load_database(csv_dir.string());
  const double csv_load = ms_since(t0);
  t0 = Clock::now();
  trace::save_columnar(parallel_db, fac_path.string());
  const double col_save = ms_since(t0);
  const std::uint64_t col_bytes = fs::file_size(fac_path);
  t0 = Clock::now();
  const auto col_loaded = trace::load_columnar(fac_path.string());
  const double col_load = ms_since(t0);
  const std::uint64_t reference_checksum = trace_checksum(parallel_db);
  const bool io_identical =
      trace_checksum(csv_loaded) == reference_checksum &&
      trace_checksum(col_loaded) == reference_checksum;
  const bool out_of_core_matches =
      analysis::summarize_columnar(fac_path.string()) ==
      analysis::summarize_database(parallel_db);
  const double load_speedup = col_load > 0.0 ? csv_load / col_load : 0.0;
  fs::remove_all(io_dir);

  // Online detection scored against simulator ground truth: replay a
  // hazard-shifted event stream (rate x4 from stream day 180) through the
  // streaming detector and score the alerts event-level. The fleet is
  // pinned to the calibrated scale-0.5/seed-1 scenario rather than
  // inheriting --scale: below ~0.25 the sparse strata miss the detector's
  // arming floor and the scores stop being about detection quality. The
  // timing measures the full path (simulate -> emit -> detect -> score);
  // throughput is stream events per second of that wall time.
  constexpr double kDetectScale = 0.5;
  detect::TenantSpec detect_spec;
  detect_spec.name = "bench";
  detect_spec.config = sim::SimulationConfig::paper_defaults().scaled(kDetectScale);
  detect_spec.config.seed = 1;
  const TimePoint detect_shift_at = ticket_window().begin + from_days(180.0);
  detect_spec.scenario.shifts.push_back({detect_shift_at, 4.0});
  t0 = Clock::now();
  const detect::TenantResult detect_result = detect::serve_tenant(detect_spec);
  const double detect_ms = ms_since(t0);
  const double detect_events_per_sec =
      detect_ms > 0.0 ? 1000.0 * static_cast<double>(detect_result.report.events) /
                            detect_ms
                      : 0.0;
  const bool detect_ok = detect_result.report.events > 0;

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.2f,\n", scale);
  std::fprintf(out, "  \"hardware_concurrency\": %zu,\n", hw);
  std::fprintf(out, "  \"single_core_warning\": %s,\n",
               single_core ? "true" : "false");
  std::fprintf(out, "  \"parallel_identical_to_serial\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(out, "  \"stages\": [\n");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageTiming& s = stages[i];
    const double speedup =
        s.parallel_ms > 0.0 ? s.serial_ms / s.parallel_ms : 0.0;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"speedup\": %.3f}%s\n",
                 s.name.c_str(), s.serial_ms, s.parallel_ms, speedup,
                 i + 1 < stages.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"classify_substages\": [\n");
  for (std::size_t i = 0; i < substages.size(); ++i) {
    const SubStageTiming& s = substages[i];
    const double speedup = s.sparse_ms > 0.0 ? s.dense_ms / s.sparse_ms : 0.0;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"dense_ms\": %.3f, "
                 "\"sparse_ms\": %.3f, \"speedup\": %.3f}%s\n",
                 s.name.c_str(), s.dense_ms, s.sparse_ms, speedup,
                 i + 1 < substages.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"kmeans_prune\": {\n");
  std::fprintf(out, "    \"distances_computed\": %llu,\n",
               static_cast<unsigned long long>(sparse_stats.distances_computed));
  std::fprintf(out, "    \"distances_pruned\": %llu,\n",
               static_cast<unsigned long long>(sparse_stats.distances_pruned));
  std::fprintf(out, "    \"prune_ratio\": %.4f,\n", sparse_stats.prune_ratio());
  std::fprintf(out, "    \"iterations\": %d\n",
               sparse_stats.total_iterations());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sparse_matches_dense\": %s,\n",
               sparse_matches_dense ? "true" : "false");
  std::fprintf(out, "  \"thread_scaling\": {\n");
  std::fprintf(out, "    \"threads\": [");
  for (std::size_t i = 0; i < kScalingThreads.size(); ++i) {
    std::fprintf(out, "%d%s", kScalingThreads[i],
                 i + 1 < kScalingThreads.size() ? ", " : "");
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "    \"stages\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingStage& s = scaling[i];
    std::fprintf(out, "      {\"name\": \"%s\", \"ms\": [", s.name.c_str());
    for (std::size_t t = 0; t < s.ms.size(); ++t) {
      std::fprintf(out, "%.3f%s", s.ms[t], t + 1 < s.ms.size() ? ", " : "");
    }
    std::fprintf(out, "], \"speedup\": [");
    for (std::size_t t = 0; t < s.ms.size(); ++t) {
      std::fprintf(out, "%.3f%s", s.ms[t] > 0.0 ? s.ms[0] / s.ms[t] : 0.0,
                   t + 1 < s.ms.size() ? ", " : "");
    }
    std::fprintf(out, "], \"serial_fraction\": %.4f}%s\n", s.serial_fraction,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"simd\": {\n");
  std::fprintf(out, "    \"dispatch\": \"%.*s\",\n",
               static_cast<int>(stats::simd::dispatch_name().size()),
               stats::simd::dispatch_name().data());
  std::fprintf(out, "    \"elements\": %zu,\n", simd_elements);
  std::fprintf(out, "    \"kernels\": [\n");
  for (std::size_t i = 0; i < simd_kernels.size(); ++i) {
    const KernelTiming& k = simd_kernels[i];
    std::fprintf(out,
                 "      {\"name\": \"%s\", \"scalar_ms\": %.3f, "
                 "\"simd_ms\": %.3f, \"speedup\": %.3f}%s\n",
                 k.name.c_str(), k.scalar_ms, k.simd_ms, k.speedup(),
                 i + 1 < simd_kernels.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"io\": {\n");
  std::fprintf(out, "    \"csv_bytes\": %llu,\n",
               static_cast<unsigned long long>(csv_bytes));
  std::fprintf(out, "    \"columnar_bytes\": %llu,\n",
               static_cast<unsigned long long>(col_bytes));
  std::fprintf(out, "    \"csv_save_ms\": %.3f,\n", csv_save);
  std::fprintf(out, "    \"columnar_save_ms\": %.3f,\n", col_save);
  std::fprintf(out, "    \"csv_load_ms\": %.3f,\n", csv_load);
  std::fprintf(out, "    \"columnar_load_ms\": %.3f,\n", col_load);
  std::fprintf(out, "    \"load_speedup\": %.2f,\n", load_speedup);
  std::fprintf(out, "    \"roundtrip_identical\": %s,\n",
               io_identical ? "true" : "false");
  std::fprintf(out, "    \"out_of_core_matches\": %s\n",
               out_of_core_matches ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"detect\": {\n");
  std::fprintf(out, "    \"scale\": %.2f,\n", kDetectScale);
  // Guards for tools/bench_compare.py: the detect block is also extracted
  // standalone (BENCH_detect.json), so it must carry its own comparability
  // context rather than relying on the top-level fields.
  std::fprintf(out, "    \"hardware_concurrency\": %zu,\n", hw);
  std::fprintf(out, "    \"single_core_warning\": %s,\n",
               single_core ? "true" : "false");
  std::fprintf(out, "    \"shift_day\": 180,\n");
  std::fprintf(out, "    \"shift_factor\": 4.0,\n");
  std::fprintf(out, "    \"events\": %llu,\n",
               static_cast<unsigned long long>(detect_result.report.events));
  std::fprintf(out, "    \"crash_tickets\": %llu,\n",
               static_cast<unsigned long long>(
                   detect_result.report.crash_tickets));
  std::fprintf(out, "    \"alerts\": %zu,\n",
               detect_result.report.alerts.size());
  std::fprintf(out, "    \"precision\": %.4f,\n",
               detect_result.score.precision());
  std::fprintf(out, "    \"recall\": %.4f,\n", detect_result.score.recall());
  std::fprintf(out, "    \"median_latency_days\": %.2f,\n",
               to_days(detect_result.score.median_latency()));
  std::fprintf(out, "    \"pipeline_ms\": %.3f,\n", detect_ms);
  std::fprintf(out, "    \"events_per_sec\": %.0f\n", detect_events_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"cache\": {\n");
  std::fprintf(out, "    \"cold_ms\": %.3f,\n", cache_cold);
  std::fprintf(out, "    \"warm_ms\": %.3f,\n", cache_warm);
  std::fprintf(out, "    \"speedup\": %.1f,\n",
               cache_warm > 0.0 ? cache_cold / cache_warm : 0.0);
  std::fprintf(out, "    \"shared_objects\": %s,\n",
               cache_shared ? "true" : "false");
  std::fprintf(out, "    \"hits\": %zu,\n", cache.hits());
  std::fprintf(out, "    \"misses\": %zu\n", cache.misses());
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("simulate: serial %.1f ms, parallel %.1f ms (identical: %s)\n",
              simulate_serial, simulate_parallel, identical ? "yes" : "NO");
  std::printf("classify: serial %.1f ms, parallel %.1f ms\n", classify_serial,
              classify_parallel);
  for (const SubStageTiming& s : substages) {
    std::printf("  %-9s dense %.1f ms, sparse %.1f ms (%.1fx)\n",
                s.name.c_str(), s.dense_ms, s.sparse_ms,
                s.sparse_ms > 0.0 ? s.dense_ms / s.sparse_ms : 0.0);
  }
  std::printf("  sparse assignments match dense: %s\n",
              sparse_matches_dense ? "yes" : "NO");
  std::printf(
      "  kmeans prune ratio: %.1f%% (%llu of %llu distance evals skipped)\n",
      100.0 * sparse_stats.prune_ratio(),
      static_cast<unsigned long long>(sparse_stats.distances_pruned),
      static_cast<unsigned long long>(sparse_stats.distances_attempted()));
  for (const ScalingStage& s : scaling) {
    std::printf(
        "scaling:  %-9s 1/2/4/8 threads: %.1f / %.1f / %.1f / %.1f ms "
        "(serial fraction %.2f)\n",
        s.name.c_str(), s.ms[0], s.ms[1], s.ms[2], s.ms[3],
        s.serial_fraction);
  }
  std::printf("simd:     dispatch %.*s\n",
              static_cast<int>(stats::simd::dispatch_name().size()),
              stats::simd::dispatch_name().data());
  for (const KernelTiming& k : simd_kernels) {
    std::printf("  %-17s scalar %.1f ms, simd %.1f ms (%.1fx)\n",
                k.name.c_str(), k.scalar_ms, k.simd_ms, k.speedup());
  }
  std::printf("cache:    cold %.1f ms, warm %.3f ms (shared: %s)\n",
              cache_cold, cache_warm, cache_shared ? "yes" : "NO");
  std::printf(
      "io:       save csv %.1f ms / columnar %.1f ms, load csv %.1f ms / "
      "columnar %.1f ms (%.1fx)\n",
      csv_save, col_save, csv_load, col_load, load_speedup);
  std::printf("          %llu B csv vs %llu B columnar; identical: %s, "
              "out-of-core matches: %s\n",
              static_cast<unsigned long long>(csv_bytes),
              static_cast<unsigned long long>(col_bytes),
              io_identical ? "yes" : "NO",
              out_of_core_matches ? "yes" : "NO");
  std::printf(
      "detect:   %llu events in %.1f ms (%.0f events/s), %zu alerts, "
      "precision %.2f, recall %.2f, median latency %.1f d\n",
      static_cast<unsigned long long>(detect_result.report.events), detect_ms,
      detect_events_per_sec, detect_result.report.alerts.size(),
      detect_result.score.precision(), detect_result.score.recall(),
      to_days(detect_result.score.median_latency()));
  std::printf("wrote %s\n", json_path.c_str());
  return identical && cache_shared && sparse_matches_dense && io_identical &&
                 out_of_core_matches && detect_ok
             ? 0
             : 1;
}

// Peak resident set in kilobytes (Linux ru_maxrss unit).
long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// The out-of-core path end to end: stream the simulator into a columnar
// file (no database is ever materialized), then summarize it
// chunk-at-a-time. Peak RSS stays bounded by chunk size, so `scale` may
// exceed the paper fleet by an order of magnitude.
int run_stream_report(double scale, const std::string& json_path) {
  namespace fs = std::filesystem;
  const auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
  const fs::path fac_path = "bench_stream.fac";
  const long rss_start_kb = peak_rss_kb();

  auto t0 = Clock::now();
  trace::ColumnarTraceWriter writer(fac_path.string());
  sim::simulate_to(config, writer);
  const double generate_ms = ms_since(t0);
  const long rss_generate_kb = peak_rss_kb();
  const std::uint64_t servers = writer.server_count();
  const std::uint64_t tickets = writer.ticket_count();
  const std::uint64_t file_bytes = fs::file_size(fac_path);

  t0 = Clock::now();
  const auto summary = analysis::summarize_columnar(fac_path.string());
  const double analyze_ms = ms_since(t0);
  const long rss_analyze_kb = peak_rss_kb();
  fs::remove(fac_path);

  const bool counts_match =
      summary.servers == servers && summary.tickets == tickets;
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.2f,\n", scale);
  std::fprintf(out, "  \"servers\": %llu,\n",
               static_cast<unsigned long long>(servers));
  std::fprintf(out, "  \"tickets\": %llu,\n",
               static_cast<unsigned long long>(tickets));
  std::fprintf(out, "  \"crash_tickets\": %llu,\n",
               static_cast<unsigned long long>(summary.crash_tickets));
  std::fprintf(out, "  \"file_bytes\": %llu,\n",
               static_cast<unsigned long long>(file_bytes));
  std::fprintf(out, "  \"generate_ms\": %.3f,\n", generate_ms);
  std::fprintf(out, "  \"analyze_ms\": %.3f,\n", analyze_ms);
  std::fprintf(out, "  \"rss_start_kb\": %ld,\n", rss_start_kb);
  std::fprintf(out, "  \"rss_after_generate_kb\": %ld,\n", rss_generate_kb);
  std::fprintf(out, "  \"rss_after_analyze_kb\": %ld,\n", rss_analyze_kb);
  std::fprintf(out, "  \"counts_match\": %s\n",
               counts_match ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("stream scale %.2f: %llu servers, %llu tickets, %llu B file\n",
              scale, static_cast<unsigned long long>(servers),
              static_cast<unsigned long long>(tickets),
              static_cast<unsigned long long>(file_bytes));
  std::printf("  generate %.1f ms, analyze %.1f ms\n", generate_ms,
              analyze_ms);
  std::printf("  peak RSS: start %ld KB, generate %ld KB, analyze %ld KB\n",
              rss_start_kb, rss_generate_kb, rss_analyze_kb);
  std::printf("  summary counts match writer tallies: %s\n",
              counts_match ? "yes" : "NO");
  std::printf("wrote %s\n", json_path.c_str());
  return counts_match ? 0 : 1;
}

std::vector<double> gamma_sample(std::size_t n) {
  Rng rng(1);
  const stats::GammaDist dist(0.6, 40.0);
  std::vector<double> xs(n);
  for (double& x : xs) x = dist.sample(rng);
  return xs;
}

void BM_SimulateScaled(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
  for (auto _ : state) {
    const auto db = sim::simulate(config);
    benchmark::DoNotOptimize(db.tickets().size());
  }
  state.SetLabel("scale=" + std::to_string(scale));
}
BENCHMARK(BM_SimulateScaled)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_FitGamma(benchmark::State& state) {
  const auto xs = gamma_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_gamma(xs).shape());
  }
}
BENCHMARK(BM_FitGamma)->Arg(1000)->Arg(10000);

void BM_FitCandidates(benchmark::State& state) {
  const auto xs = gamma_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_candidates(xs).front().aic);
  }
}
BENCHMARK(BM_FitCandidates)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_EcdfBuildAndQuery(benchmark::State& state) {
  const auto xs = gamma_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const stats::Ecdf cdf(xs);
    benchmark::DoNotOptimize(cdf.quantile(0.95));
  }
}
BENCHMARK(BM_EcdfBuildAndQuery)->Arg(1000)->Arg(100000);

void BM_KMeansTfIdf(benchmark::State& state) {
  // Cluster synthetic ticket-like documents end to end.
  Rng rng(3);
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.05);
  const auto db = sim::simulate(config);
  std::vector<std::string> docs;
  for (const auto& t : db.tickets()) {
    if (t.is_crash) docs.push_back(t.description + " " + t.resolution);
  }
  const auto vectorizer = text::Vectorizer::fit(docs, {});
  const auto features = vectorizer.transform_all(docs);
  stats::KMeansOptions options;
  options.k = 12;
  options.restarts = 2;
  for (auto _ : state) {
    Rng local(7);
    benchmark::DoNotOptimize(
        stats::kmeans(features, options, local).inertia);
  }
  state.SetLabel(std::to_string(docs.size()) + " docs, dim=" +
                 std::to_string(vectorizer.dimension()));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * docs.size()));
}
BENCHMARK(BM_KMeansTfIdf)->Unit(benchmark::kMillisecond);

void BM_ClassificationPipeline(benchmark::State& state) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.1);
  const auto db = sim::simulate(config);
  const auto tickets = analysis::extract_crash_tickets(db);
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(
        analysis::classify_tickets(tickets, {}, rng).accuracy);
  }
  state.SetLabel(std::to_string(tickets.size()) + " crash tickets");
}
BENCHMARK(BM_ClassificationPipeline)->Unit(benchmark::kMillisecond);

void BM_CrashExtraction(benchmark::State& state) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.2);
  const auto db = sim::simulate(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_crash_tickets(db).size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * db.tickets().size()));
}
BENCHMARK(BM_CrashExtraction)->Unit(benchmark::kMillisecond);

void BM_RecurrenceAnalysis(benchmark::State& state) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.5);
  const auto db = sim::simulate(config);
  const auto failures = db.crash_tickets();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::recurrent_probability(
        db, failures, {}, kMinutesPerWeek));
  }
}
BENCHMARK(BM_RecurrenceAnalysis);

}  // namespace

int main(int argc, char** argv) {
  bool micro = false;
  double scale = 0.3;
  double stream_scale = 0.0;
  std::string json_path;
  std::string metrics_path, trace_path;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--micro") {
      micro = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--stream" && i + 1 < argc) {
      stream_scale = std::atof(argv[++i]);
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else if (arg == "--no-obs") {
      fa::obs::set_enabled(false);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (stream_scale > 0.0) {
    if (json_path.empty()) json_path = "BENCH_stream.json";
    const int rc = run_stream_report(stream_scale, json_path);
    if (!fa::obs::export_registry_files(metrics_path, trace_path)) return 1;
    return rc;
  }
  if (!micro) {
    if (json_path.empty()) json_path = "BENCH_perf.json";
    const int rc = run_stage_report(scale, json_path);
    if (!fa::obs::export_registry_files(metrics_path, trace_path)) return 1;
    if (!metrics_path.empty()) std::printf("wrote %s\n", metrics_path.c_str());
    if (!trace_path.empty()) std::printf("wrote %s\n", trace_path.c_str());
    return rc;
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
