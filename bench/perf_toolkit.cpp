// Google-benchmark microbenchmarks of the toolkit itself: simulation
// throughput, distribution fitting, ECDF construction, k-means, and the
// end-to-end classification pipeline.
#include <benchmark/benchmark.h>

#include "src/analysis/classification.h"
#include "src/analysis/recurrence.h"
#include "src/sim/simulator.h"
#include "src/stats/ecdf.h"
#include "src/stats/fitting.h"
#include "src/stats/kmeans.h"
#include "src/text/features.h"
#include "src/util/rng.h"

namespace {

using namespace fa;

std::vector<double> gamma_sample(std::size_t n) {
  Rng rng(1);
  const stats::GammaDist dist(0.6, 40.0);
  std::vector<double> xs(n);
  for (double& x : xs) x = dist.sample(rng);
  return xs;
}

void BM_SimulateScaled(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
  for (auto _ : state) {
    const auto db = sim::simulate(config);
    benchmark::DoNotOptimize(db.tickets().size());
  }
  state.SetLabel("scale=" + std::to_string(scale));
}
BENCHMARK(BM_SimulateScaled)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_FitGamma(benchmark::State& state) {
  const auto xs = gamma_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_gamma(xs).shape());
  }
}
BENCHMARK(BM_FitGamma)->Arg(1000)->Arg(10000);

void BM_FitCandidates(benchmark::State& state) {
  const auto xs = gamma_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_candidates(xs).front().aic);
  }
}
BENCHMARK(BM_FitCandidates)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_EcdfBuildAndQuery(benchmark::State& state) {
  const auto xs = gamma_sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const stats::Ecdf cdf(xs);
    benchmark::DoNotOptimize(cdf.quantile(0.95));
  }
}
BENCHMARK(BM_EcdfBuildAndQuery)->Arg(1000)->Arg(100000);

void BM_KMeansTfIdf(benchmark::State& state) {
  // Cluster synthetic ticket-like documents end to end.
  Rng rng(3);
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.05);
  const auto db = sim::simulate(config);
  std::vector<std::string> docs;
  for (const auto& t : db.tickets()) {
    if (t.is_crash) docs.push_back(t.description + " " + t.resolution);
  }
  const auto vectorizer = text::Vectorizer::fit(docs, {});
  const auto features = vectorizer.transform_all(docs);
  stats::KMeansOptions options;
  options.k = 12;
  options.restarts = 2;
  for (auto _ : state) {
    Rng local(7);
    benchmark::DoNotOptimize(
        stats::kmeans(features, options, local).inertia);
  }
  state.SetLabel(std::to_string(docs.size()) + " docs, dim=" +
                 std::to_string(vectorizer.dimension()));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * docs.size()));
}
BENCHMARK(BM_KMeansTfIdf)->Unit(benchmark::kMillisecond);

void BM_ClassificationPipeline(benchmark::State& state) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.1);
  const auto db = sim::simulate(config);
  const auto tickets = analysis::extract_crash_tickets(db);
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(
        analysis::classify_tickets(tickets, {}, rng).accuracy);
  }
  state.SetLabel(std::to_string(tickets.size()) + " crash tickets");
}
BENCHMARK(BM_ClassificationPipeline)->Unit(benchmark::kMillisecond);

void BM_CrashExtraction(benchmark::State& state) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.2);
  const auto db = sim::simulate(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_crash_tickets(db).size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * db.tickets().size()));
}
BENCHMARK(BM_CrashExtraction)->Unit(benchmark::kMillisecond);

void BM_RecurrenceAnalysis(benchmark::State& state) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.5);
  const auto db = sim::simulate(config);
  const auto failures = db.crash_tickets();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::recurrent_probability(
        db, failures, {}, kMinutesPerWeek));
  }
}
BENCHMARK(BM_RecurrenceAnalysis);

}  // namespace

BENCHMARK_MAIN();
