// Reproduces Fig. 5: recurrent failure probabilities within a day, a week
// and a month, for PMs and VMs.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/report.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  analysis::TextTable table({"type", "within day", "within week",
                             "within month"});
  std::array<std::array<double, 3>, 2> probs{};
  const Duration windows[3] = {kMinutesPerDay, kMinutesPerWeek,
                               kMinutesPerMonth};
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                std::nullopt};
    for (int w = 0; w < 3; ++w) {
      probs[static_cast<std::size_t>(t)][static_cast<std::size_t>(w)] =
          analysis::recurrent_probability(db, failures, scope, windows[w]);
    }
    table.add_row(
        {std::string(trace::to_string(static_cast<trace::MachineType>(t))),
         format_double(probs[static_cast<std::size_t>(t)][0], 3),
         format_double(probs[static_cast<std::size_t>(t)][1], 3),
         format_double(probs[static_cast<std::size_t>(t)][2], 3)});
  }
  std::cout << "Fig. 5 (recurrent failure probabilities)\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Fig. 5 -- recurrent failure probabilities");
  cmp.add("PM within day (figure approx)", paperref::kRecurrentDayPm,
          probs[0][0], 3);
  cmp.add("PM within week (Table V)", paperref::kRecurrentWeekPm,
          probs[0][1], 3);
  cmp.add("PM within month (figure approx)", paperref::kRecurrentMonthPm,
          probs[0][2], 3);
  cmp.add("VM within day (figure approx)", paperref::kRecurrentDayVm,
          probs[1][0], 3);
  cmp.add("VM within week (Table V)", paperref::kRecurrentWeekVm,
          probs[1][1], 3);
  cmp.add("VM within month (figure approx)", paperref::kRecurrentMonthVm,
          probs[1][2], 3);

  cmp.check("VM recurrent probabilities below PM in every window",
            probs[1][0] < probs[0][0] && probs[1][1] < probs[0][1] &&
                probs[1][2] < probs[0][2]);
  cmp.check("probabilities grow with the window",
            probs[0][0] < probs[0][1] && probs[0][1] < probs[0][2] &&
                probs[1][0] < probs[1][1] && probs[1][1] < probs[1][2]);
  cmp.check("growth is sub-linear: weekly << 7x daily",
            probs[0][1] < 4.0 * probs[0][0] &&
                probs[1][1] < 4.0 * probs[1][0]);
  cmp.check("PM weekly recurrence within 30% of the paper's 0.22",
            std::abs(probs[0][1] - paperref::kRecurrentWeekPm) <
                0.3 * paperref::kRecurrentWeekPm);
  cmp.check("VM weekly recurrence within 30% of the paper's 0.16",
            std::abs(probs[1][1] - paperref::kRecurrentWeekVm) <
                0.3 * paperref::kRecurrentWeekVm);
  return bench::finish(cmp);
}
