// Reproduces Fig. 8: weekly failure rates vs resource usage — CPU and
// memory utilization for both machine types, and disk utilization / network
// traffic for VMs (the dataset has no PM disk/network usage, as in the
// paper).
#include <iostream>

#include "bench/bench_common.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  const analysis::Scope pm{trace::MachineType::kPhysical, std::nullopt};
  const analysis::Scope vm{trace::MachineType::kVirtual, std::nullopt};

  const analysis::UsageAttribute cpu = [](const trace::WeeklyUsage& u) {
    return std::optional<double>(u.cpu_util);
  };
  const analysis::UsageAttribute mem = [](const trace::WeeklyUsage& u) {
    return std::optional<double>(u.mem_util);
  };
  const analysis::UsageAttribute disk = [](const trace::WeeklyUsage& u) {
    return u.disk_util;
  };
  const analysis::UsageAttribute net = [](const trace::WeeklyUsage& u) {
    return u.net_kbps;
  };

  const auto util_bins =
      stats::BinSpec::from_edges({0, 10, 20, 30, 50, 70, 100});
  const auto net_bins =
      stats::BinSpec::from_edges({0, 2, 8, 64, 512, 2048, 10000});

  const auto pm_cpu = analysis::usage_binned_rates(db, failures, pm, cpu,
                                                   util_bins);
  const auto vm_cpu = analysis::usage_binned_rates(db, failures, vm, cpu,
                                                   util_bins);
  const auto pm_mem = analysis::usage_binned_rates(db, failures, pm, mem,
                                                   util_bins);
  const auto vm_mem = analysis::usage_binned_rates(db, failures, vm, mem,
                                                   util_bins);
  const auto vm_disk = analysis::usage_binned_rates(db, failures, vm, disk,
                                                    util_bins);
  const auto vm_net = analysis::usage_binned_rates(db, failures, vm, net,
                                                   net_bins);

  std::cout << bench::render_binned("Fig. 8(a) PM rate vs CPU util %",
                                    pm_cpu, 100)
            << "\n"
            << bench::render_binned("Fig. 8(a) VM rate vs CPU util %",
                                    vm_cpu, 100)
            << "\n"
            << bench::render_binned("Fig. 8(b) PM rate vs memory util %",
                                    pm_mem, 100)
            << "\n"
            << bench::render_binned("Fig. 8(b) VM rate vs memory util %",
                                    vm_mem, 100)
            << "\n"
            << bench::render_binned("Fig. 8(c) VM rate vs disk util %",
                                    vm_disk, 100)
            << "\n"
            << bench::render_binned("Fig. 8(d) VM rate vs network kbps",
                                    vm_net, 100)
            << "\n";

  paperref::Comparison cmp("Fig. 8 -- impact of resource usage");
  cmp.add("VM CPU-util factor (max/min)", 10.0,
          vm_cpu.max_min_rate_factor(), 1);
  cmp.add("PM mem-util factor", 4.0, pm_mem.max_min_rate_factor(), 1);
  cmp.add("VM disk-util low rate", 0.001, vm_disk.overall_rate[0], 5);
  cmp.add("VM disk-util high rate", 0.003,
          vm_disk.overall_rate[vm_disk.overall_rate.size() - 1], 5);

  const auto& vc = vm_cpu.overall_rate;
  cmp.check("VM rate increases with CPU utilization over 0-30%",
            vc[0] < vc[1] && vc[1] < vc[2]);
  const auto& pc = pm_cpu.overall_rate;
  cmp.check("PM rate decreases with CPU utilization over 0-30%",
            pc[0] > pc[1] && pc[1] > pc[2]);
  const auto& pmm = pm_mem.overall_rate;
  cmp.check("PM memory-util follows an inverted bathtub (peak mid-range)",
            pmm[2] > pmm[0] && pmm[2] > pmm[5]);
  const auto& vmm = vm_mem.overall_rate;
  cmp.check("VM memory-util follows an inverted bathtub",
            vmm[1] > vmm[0] && vmm[2] > vmm[5]);
  const auto& vd = vm_disk.overall_rate;
  cmp.check("VM rate increases mildly with disk utilization",
            vd[0] < vd[4] && vd[5] > vd[0]);
  // The sub-2-kbps bin holds a few hundred server-weeks only; the trend is
  // judged on the populated bins, as in the paper (45% of VMs at 2-64 kbps).
  const auto& vn = vm_net.overall_rate;
  cmp.check("VM network: rate peaks in the 8-64 kbps band and declines "
            "toward high volumes",
            vn[2] > 1.4 * vn[1] && vn[2] > 1.4 * vn[3] &&
                vn[5] < 0.6 * vn[2]);
  cmp.check("memory utilization dominates PM usage factors",
            pm_mem.max_min_rate_factor() > 1.5);
  return bench::finish(cmp);
}
