// Reproduces Table IV: mean and median repair times in hours per failure
// class, including the paper's observations that hardware/network repairs
// take longest and software repairs have the lowest variability.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/repair_times.h"
#include "src/analysis/report.h"
#include "src/stats/descriptive.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();
  const auto class_of = pipeline.class_lookup();

  analysis::TextTable table({"metric", "HW", "Net", "Power", "Reboot", "SW"});
  std::array<double, 5> means{}, medians{}, cvs{};
  std::vector<std::string> mean_row = {"mean"}, median_row = {"median"},
                           cv_row = {"coeff. of variation"};
  for (std::size_t c = 0; c < 5; ++c) {
    const auto sample = analysis::repair_hours(
        db, pipeline.failures(), {}, static_cast<trace::FailureClass>(c),
        class_of);
    if (sample.size() >= 2) {
      means[c] = stats::mean(sample);
      medians[c] = stats::median(sample);
      cvs[c] = stats::coefficient_of_variation(sample);
    }
    mean_row.push_back(format_double(means[c], 2));
    median_row.push_back(format_double(medians[c], 2));
    cv_row.push_back(format_double(cvs[c], 2));
  }
  table.add_row(std::move(mean_row));
  table.add_row(std::move(median_row));
  table.add_row(std::move(cv_row));
  std::cout << "Table IV (repair hours per class, k-means predicted)\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Table IV -- repair times by class");
  const char* names[] = {"HW", "Net", "Power", "Reboot", "SW"};
  for (std::size_t c = 0; c < 5; ++c) {
    cmp.add(std::string("mean ") + names[c], paperref::kTable4[c].mean,
            means[c], 2);
    cmp.add(std::string("median ") + names[c], paperref::kTable4[c].median,
            medians[c], 2);
  }

  const auto hw = static_cast<std::size_t>(trace::FailureClass::kHardware);
  const auto net = static_cast<std::size_t>(trace::FailureClass::kNetwork);
  const auto power = static_cast<std::size_t>(trace::FailureClass::kPower);
  const auto reboot = static_cast<std::size_t>(trace::FailureClass::kReboot);
  const auto sw = static_cast<std::size_t>(trace::FailureClass::kSoftware);

  cmp.check("means far exceed medians (high repair-time variability)",
            means[hw] > 2.0 * medians[hw] && means[net] > 2.0 * medians[net]);
  cmp.check("power repairs are the fastest (critical severity)",
            medians[power] < medians[hw] && medians[power] < medians[net] &&
                medians[power] < medians[sw]);
  cmp.check("reboots are the second-fastest repairs",
            medians[reboot] < medians[hw] && medians[reboot] < medians[sw]);
  cmp.check("hardware and network repairs take longest on average",
            means[hw] > means[power] && means[hw] > means[reboot] &&
                means[net] > means[power]);
  cmp.check("software repairs have the lowest coefficient of variation",
            cvs[sw] < cvs[hw] && cvs[sw] < cvs[net] && cvs[sw] < cvs[power]);
  return bench::finish(cmp);
}
