// Reproduces Table III: mean/median inter-failure times per failure class,
// from the datacenter operator's view (gaps between any two failures of a
// class) and from the single-server view (gaps per server, pooled).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/interfailure.h"
#include "src/analysis/report.h"
#include "src/stats/descriptive.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();
  const auto class_of = pipeline.class_lookup();

  analysis::TextTable table(
      {"view", "metric", "HW", "Net", "Power", "Reboot", "SW", "Other"});
  std::array<double, trace::kFailureClassCount> op_mean{}, op_median{},
      sv_mean{}, sv_median{};
  for (trace::FailureClass c : trace::kAllFailureClasses) {
    const auto idx = static_cast<std::size_t>(c);
    const auto op = analysis::operator_interfailure_days(pipeline.failures(),
                                                         c, class_of);
    const auto sv = analysis::per_server_interfailure_days(
        db, pipeline.failures(), {}, c, class_of);
    if (!op.empty()) {
      op_mean[idx] = stats::mean(op);
      op_median[idx] = stats::median(op);
    }
    if (!sv.empty()) {
      sv_mean[idx] = stats::mean(sv);
      sv_median[idx] = stats::median(sv);
    }
  }
  const auto add_rows = [&](const std::string& view,
                            const std::array<double, 6>& means,
                            const std::array<double, 6>& medians) {
    std::vector<std::string> mean_row = {view, "average"};
    std::vector<std::string> median_row = {view, "median"};
    for (std::size_t c = 0; c < trace::kFailureClassCount; ++c) {
      mean_row.push_back(format_double(means[c], 2));
      median_row.push_back(format_double(medians[c], 2));
    }
    table.add_row(std::move(mean_row));
    table.add_row(std::move(median_row));
  };
  add_rows("operator", op_mean, op_median);
  add_rows("single server", sv_mean, sv_median);
  std::cout << "Table III (inter-failure times in days, by class)\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Table III -- inter-failure times by root cause");
  const char* names[] = {"HW", "Net", "Power", "Reboot", "SW", "Other"};
  for (std::size_t c = 0; c < 6; ++c) {
    cmp.add(std::string("operator mean ") + names[c],
            paperref::kTable3Operator[c].mean, op_mean[c], 2);
    cmp.add(std::string("server mean ") + names[c],
            paperref::kTable3SingleServer[c].mean, sv_mean[c], 2);
  }

  bool operator_shorter = true;
  for (std::size_t c = 0; c < trace::kFailureClassCount; ++c) {
    if (op_mean[c] > 0 && sv_mean[c] > 0) {
      operator_shorter &= op_mean[c] < sv_mean[c];
    }
  }
  cmp.check("operator-view gaps are much shorter than per-server gaps",
            operator_shorter);
  const auto sw = static_cast<std::size_t>(trace::FailureClass::kSoftware);
  const auto hw = static_cast<std::size_t>(trace::FailureClass::kHardware);
  const auto net = static_cast<std::size_t>(trace::FailureClass::kNetwork);
  cmp.check("software has the shortest inter-failure times among real "
            "classes (operator view)",
            op_mean[sw] < op_mean[hw] && op_mean[sw] < op_mean[net]);
  // Per-server same-class gap *orderings* between the infrastructure
  // classes swing with seed noise (network has ~50 incidents, so only a
  // handful of same-server pairs exist -- the paper faces the same sparsity).
  // The robust Table III property is the magnitude: same-class re-failures
  // of one server take weeks to months, not days.
  const auto power = static_cast<std::size_t>(trace::FailureClass::kPower);
  const auto reboot = static_cast<std::size_t>(trace::FailureClass::kReboot);
  cmp.check("per-server same-class gaps are tens of days for every class "
            "(paper: 22-66 days)",
            sv_mean[hw] > 14.0 && sv_mean[net] > 14.0 &&
                sv_mean[power] > 14.0 && sv_mean[reboot] > 14.0 &&
                sv_mean[sw] > 14.0);
  cmp.check("per-server software gaps within the paper's order of magnitude",
            sv_mean[sw] > paperref::kTable3SingleServer[sw].mean / 2.0 &&
                sv_mean[sw] < paperref::kTable3SingleServer[sw].mean * 3.0);
  return bench::finish(cmp);
}
