// Reproduces Table VII: mean and maximum number of servers involved in
// failure incidents of each class (power incidents are the widest:
// mean 2.7, max 21).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/report.h"
#include "src/analysis/spatial.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();
  const auto result = analysis::analyze_spatial(db, pipeline.class_lookup());

  analysis::TextTable table({"metric", "HW", "Net", "Power", "Reboot", "SW",
                             "Other"});
  std::vector<std::string> mean_row = {"mean"}, max_row = {"max"},
                           n_row = {"incidents"};
  for (std::size_t c = 0; c < trace::kFailureClassCount; ++c) {
    mean_row.push_back(format_double(result.by_class[c].mean, 2));
    max_row.push_back(std::to_string(result.by_class[c].max));
    n_row.push_back(std::to_string(result.by_class[c].incidents));
  }
  table.add_row(std::move(mean_row));
  table.add_row(std::move(max_row));
  table.add_row(std::move(n_row));
  std::cout << "Table VII (servers per incident by class)\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Table VII -- incident sizes by class");
  const char* names[] = {"HW", "Net", "Power", "Reboot", "SW"};
  for (std::size_t c = 0; c < 5; ++c) {
    cmp.add(std::string("mean ") + names[c], paperref::kTable7[c].mean,
            result.by_class[c].mean, 2);
    cmp.add(std::string("max ") + names[c], paperref::kTable7[c].max,
            result.by_class[c].max, 0);
  }
  cmp.add("mean other", paperref::kTable7Other.mean,
          result.by_class[5].mean, 2);
  cmp.add("max other", paperref::kTable7Other.max, result.by_class[5].max,
          0);

  const auto power = static_cast<std::size_t>(trace::FailureClass::kPower);
  const auto sw = static_cast<std::size_t>(trace::FailureClass::kSoftware);
  const auto reboot = static_cast<std::size_t>(trace::FailureClass::kReboot);
  const auto hw = static_cast<std::size_t>(trace::FailureClass::kHardware);
  cmp.check("power incidents affect the most servers on average",
            result.by_class[power].mean > result.by_class[sw].mean &&
                result.by_class[power].mean > result.by_class[hw].mean &&
                result.by_class[power].mean > result.by_class[reboot].mean);
  cmp.check("software is the second-widest real class",
            result.by_class[sw].mean > result.by_class[reboot].mean &&
                result.by_class[sw].mean > result.by_class[hw].mean);
  cmp.check("reboot incidents are among the narrowest (paper: 1.1 vs "
            "hardware 1.2)",
            result.by_class[reboot].mean <= result.by_class[hw].mean + 0.10);
  cmp.check("power incidents stay local (max ~21 servers, not datacenter "
            "scale)",
            result.by_class[power].max >= 8 &&
                result.by_class[power].max <= 30);
  cmp.check("per-class means within 0.6 of the paper's values",
            [&] {
              for (std::size_t c = 0; c < 5; ++c) {
                if (result.by_class[c].incidents == 0) continue;
                if (std::abs(result.by_class[c].mean -
                             paperref::kTable7[c].mean) > 0.6) {
                  return false;
                }
              }
              return true;
            }());
  return bench::finish(cmp);
}
