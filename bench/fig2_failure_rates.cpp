// Reproduces Fig. 2: mean weekly failure rates with 25th/75th percentile
// whiskers, for PMs and VMs, over the whole population and per subsystem.
#include <iostream>
#include <optional>

#include "bench/bench_common.h"
#include "src/analysis/failure_rates.h"
#include "src/analysis/report.h"
#include "src/stats/bootstrap.h"
#include "src/stats/descriptive.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  analysis::TextTable table({"scope", "type", "mean weekly rate", "p25",
                             "p75"});
  std::array<double, trace::kMachineTypeCount> all_mean{};
  std::array<std::array<double, trace::kMachineTypeCount>,
             trace::kSubsystemCount>
      sys_mean{};
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const auto type = static_cast<trace::MachineType>(t);
    const auto all = analysis::failure_rate_summary(
        db, failures, {type, std::nullopt}, analysis::Granularity::kWeekly);
    all_mean[static_cast<std::size_t>(t)] = all.mean;
    table.add_row({"All", std::string(trace::to_string(type)),
                   format_double(all.mean, 5), format_double(all.p25, 5),
                   format_double(all.p75, 5)});
    for (trace::Subsystem s = 0; s < trace::kSubsystemCount; ++s) {
      if (db.server_count(type, s) == 0) continue;
      const auto summary = analysis::failure_rate_summary(
          db, failures, {type, s}, analysis::Granularity::kWeekly);
      sys_mean[s][static_cast<std::size_t>(t)] = summary.mean;
      table.add_row({std::string(trace::subsystem_name(s)),
                     std::string(trace::to_string(type)),
                     format_double(summary.mean, 5),
                     format_double(summary.p25, 5),
                     format_double(summary.p75, 5)});
    }
  }
  std::cout << "Fig. 2 (weekly failure rates over one year)\n"
            << table.to_string() << "\n";

  // Bootstrap 95% confidence intervals over the weekly series (weeks
  // resampled), quantifying the sampling uncertainty of the "All" bars.
  {
    Rng rng(17);
    analysis::TextTable ci_table({"type", "mean weekly rate", "95% CI"});
    for (int t = 0; t < trace::kMachineTypeCount; ++t) {
      const auto series = analysis::failure_rate_series(
          db, failures,
          {static_cast<trace::MachineType>(t), std::nullopt},
          analysis::Granularity::kWeekly);
      const auto ci = stats::bootstrap_ci(
          series, [](std::span<const double> xs) { return stats::mean(xs); },
          rng);
      ci_table.add_row(
          {std::string(trace::to_string(static_cast<trace::MachineType>(t))),
           format_double(ci.point, 5),
           "[" + format_double(ci.lo, 5) + ", " + format_double(ci.hi, 5) +
               "]"});
    }
    std::cout << ci_table.to_string() << "\n";
  }

  const double pm_all = all_mean[0];
  const double vm_all = all_mean[1];
  paperref::Comparison cmp("Fig. 2 -- weekly failure rates");
  cmp.add("PM all (paper figure approx)", paperref::kWeeklyRatePmAll, pm_all,
          5);
  cmp.add("VM all (paper figure approx)", paperref::kWeeklyRateVmAll, vm_all,
          5);
  cmp.add("PM/VM ratio", paperref::kWeeklyRatePmAll /
                             paperref::kWeeklyRateVmAll,
          pm_all / vm_all, 2);

  cmp.check("PMs fail more often than VMs overall (the headline finding)",
            pm_all > vm_all);
  cmp.check("PM rate higher by very roughly 40% (band 1.1x-2.2x)",
            pm_all / vm_all > 1.1 && pm_all / vm_all < 2.2);
  cmp.check("Sys IV is the exception where VMs out-fail PMs",
            sys_mean[3][1] > sys_mean[3][0]);
  cmp.check("PM rate exceeds VM rate in every other subsystem with VMs",
            sys_mean[0][0] > sys_mean[0][1] &&
                sys_mean[2][0] > sys_mean[2][1] &&
                sys_mean[4][0] > sys_mean[4][1]);
  return bench::finish(cmp);
}
