// Shared infrastructure for the experiment-reproduction binaries: one
// full-scale simulated trace and one analysis pipeline, both built once per
// process, plus helpers for rendering binned results.
#pragma once

#include <string>

#include "src/analysis/capacity_usage.h"
#include "src/analysis/pipeline.h"
#include "src/paper/comparison.h"
#include "src/paper/reference.h"
#include "src/trace/database.h"

namespace fa::bench {

// The paper-scale trace (5129 PMs, 4292 VMs, one year). Deterministic.
const trace::TraceDatabase& shared_db();

// Crash extraction + classification over shared_db().
const analysis::AnalysisPipeline& shared_pipeline();

// Renders a BinnedRates result as a table: bin label, population, mean
// weekly rate with p25/p75 (the paper's bar-and-whisker panels).
std::string render_binned(const std::string& title,
                          const analysis::BinnedRates& rates,
                          std::size_t min_population = 1);

// Prints the comparison and returns the process exit code (always 0: a
// CHECK verdict is a documented deviation, not a harness failure).
int finish(const paperref::Comparison& comparison);

}  // namespace fa::bench
