// Shared infrastructure for the experiment-reproduction binaries: one
// full-scale simulated trace and one analysis pipeline, both obtained from
// the process-wide artifact cache (so every binary — and every variant
// config inside one binary — pays for each distinct simulation exactly
// once), plus helpers for rendering binned results.
#pragma once

#include <string>

#include "src/analysis/capacity_usage.h"
#include "src/analysis/pipeline.h"
#include "src/paper/comparison.h"
#include "src/paper/reference.h"
#include "src/sim/config.h"
#include "src/trace/database.h"

namespace fa::bench {

// Parses the shared bench flags and applies them process-wide:
//   --threads N        worker threads for parallel_for (0 = all cores);
//                      a non-numeric value is reported and exits with 2
//   --no-cache         disable the artifact cache (every lookup rebuilds)
//   --no-obs           turn off metric/span recording at runtime
//   --metrics PATH     write the metrics JSON snapshot at exit
//   --trace-out PATH   write the Chrome trace-event JSON at exit
//   --verbose          print artifact-cache statistics in finish()
// (--metrics/--trace-out also accept --flag=PATH.) Unrecognized arguments
// are ignored so binaries can add their own.
void init(int argc, char** argv);

// Memoized simulate(config) via the global artifact cache. Ablation and
// scenario binaries use this so their paper_defaults() baseline shares the
// exact database object behind shared_db(). The reference stays valid for
// the life of the process.
const trace::TraceDatabase& simulated(const sim::SimulationConfig& config);

// The paper-scale trace (5129 PMs, 4292 VMs, one year). Deterministic.
const trace::TraceDatabase& shared_db();

// Crash extraction + classification over shared_db().
const analysis::AnalysisPipeline& shared_pipeline();

// Renders a BinnedRates result as a table: bin label, population, mean
// weekly rate with p25/p75 (the paper's bar-and-whisker panels).
std::string render_binned(const std::string& title,
                          const analysis::BinnedRates& rates,
                          std::size_t min_population = 1);

// Prints the comparison and returns the process exit code (always 0: a
// CHECK verdict is a documented deviation, not a harness failure).
int finish(const paperref::Comparison& comparison);

}  // namespace fa::bench
