// Ablation: switch off the aftershock (self-excitation) process and show
// that Table V's recurrent-vs-random ratio collapses — i.e. the measured
// non-memorylessness is driven by the recurrence mechanism, not by hazard
// heterogeneity or the analysis pipeline.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/report.h"
#include "src/sim/scenario.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto baseline_config = sim::SimulationConfig::paper_defaults();
  const auto ablated_config =
      sim::apply_ablation(baseline_config, sim::Ablation::kNoAftershocks);
  const auto& baseline = bench::simulated(baseline_config);
  const auto& ablated = bench::simulated(ablated_config);

  analysis::TextTable table({"variant", "type", "random", "recurrent",
                             "ratio"});
  std::array<std::array<double, 2>, 2> ratios{};  // [variant][type]
  const auto add = [&](const trace::TraceDatabase& db,
                       const std::string& name, int variant) {
    const auto failures = db.crash_tickets();
    for (int t = 0; t < trace::kMachineTypeCount; ++t) {
      const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                  std::nullopt};
      const double random = analysis::random_failure_probability(
          db, failures, scope, analysis::Granularity::kWeekly);
      const double recurrent = analysis::recurrent_probability(
          db, failures, scope, kMinutesPerWeek);
      const double ratio = random > 0 ? recurrent / random : 0.0;
      ratios[static_cast<std::size_t>(variant)][static_cast<std::size_t>(t)] =
          ratio;
      table.add_row({name,
                     std::string(trace::to_string(
                         static_cast<trace::MachineType>(t))),
                     format_double(random, 4), format_double(recurrent, 3),
                     format_double(ratio, 1) + "x"});
    }
  };
  add(baseline, "baseline", 0);
  add(ablated, "no-aftershocks", 1);
  std::cout << "Ablation: recurrence mechanism vs Table V ratios\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Ablation -- aftershocks drive recurrence");
  cmp.add("baseline PM ratio", paperref::kTable5Pm[0].ratio, ratios[0][0], 1);
  cmp.add("ablated PM ratio", 1.0, ratios[1][0], 1);
  cmp.add("baseline VM ratio", paperref::kTable5Vm[0].ratio, ratios[0][1], 1);
  cmp.add("ablated VM ratio", 1.0, ratios[1][1], 1);
  cmp.check("baseline ratios are tens of x (Table V)",
            ratios[0][0] > 15.0 && ratios[0][1] > 15.0);
  // A small residual VM recurrence survives without aftershocks: box
  // siblings can be co-hit by several independent incidents of their host.
  cmp.check("ablated ratios collapse several-fold",
            ratios[1][0] < 0.30 * ratios[0][0] &&
                ratios[1][1] < 0.35 * ratios[0][1]);
  return bench::finish(cmp);
}
