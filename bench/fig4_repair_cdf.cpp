// Reproduces Fig. 4: the CDF of repair times for PMs and VMs, with the
// LogNormal fit the paper selects by log-likelihood (PM mean 38.5 h,
// VM mean 19.6 h).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/repair_times.h"
#include "src/analysis/report.h"
#include "src/stats/descriptive.h"
#include "src/stats/ecdf.h"
#include "src/stats/fitting.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();

  std::array<std::vector<double>, 2> hours;
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    hours[static_cast<std::size_t>(t)] = analysis::repair_hours(
        db, pipeline.failures(),
        {static_cast<trace::MachineType>(t), std::nullopt});
  }

  analysis::TextTable curve({"percentile", "PM hours", "VM hours"});
  const stats::Ecdf pm_cdf(hours[0]);
  const stats::Ecdf vm_cdf(hours[1]);
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    curve.add_row({format_double(100.0 * p, 0) + "%",
                   format_double(pm_cdf.quantile(p), 2),
                   format_double(vm_cdf.quantile(p), 2)});
  }
  std::cout << "Fig. 4 (repair time distribution, hours)\n"
            << curve.to_string() << "\n";

  analysis::TextTable fits({"type", "family", "parameters", "logL", "KS"});
  std::array<std::string, 2> best_family;
  std::array<bool, 2> lognormal_competitive{};
  std::array<double, 2> means{};
  for (int t = 0; t < 2; ++t) {
    auto& sample = hours[static_cast<std::size_t>(t)];
    means[static_cast<std::size_t>(t)] = stats::mean(sample);
    const auto candidates = stats::fit_candidates(sample);
    best_family[static_cast<std::size_t>(t)] = candidates.front().dist->name();
    for (const auto& fit : candidates) {
      // "Competitive": within 0.2% log-likelihood of the winner, i.e.
      // statistically indistinguishable on this sample size.
      if (fit.dist->name() == "lognormal" &&
          fit.log_likelihood >
              candidates.front().log_likelihood * 1.002) {
        lognormal_competitive[static_cast<std::size_t>(t)] = true;
      }
      fits.add_row({t == 0 ? "PM" : "VM", fit.dist->name(),
                    fit.dist->describe(),
                    format_double(fit.log_likelihood, 1),
                    format_double(fit.ks_statistic, 4)});
    }
  }
  std::cout << fits.to_string() << "\n";

  // Reboot share of VM failures (the paper's explanation for short VM
  // repairs). We read the paper's "roughly 35%" as a share of the
  // *attributable* (non-"other") VM failures, since over half of all
  // tickets carry no usable class.
  std::size_t vm_classified = 0, vm_reboots = 0;
  for (const trace::Ticket* t : pipeline.failures()) {
    if (db.server(t->server).type != trace::MachineType::kVirtual) continue;
    const auto cls = pipeline.class_of(*t);
    if (cls == trace::FailureClass::kOther) continue;
    ++vm_classified;
    vm_reboots += cls == trace::FailureClass::kReboot;
  }
  const double reboot_share =
      vm_classified ? static_cast<double>(vm_reboots) / vm_classified : 0.0;

  paperref::Comparison cmp("Fig. 4 -- repair times and LogNormal fit");
  cmp.add("PM mean repair hours", paperref::kRepairMeanPmHours, means[0], 1);
  cmp.add("VM mean repair hours", paperref::kRepairMeanVmHours, means[1], 1);
  cmp.add_text("PM best-fit family", "lognormal", best_family[0]);
  cmp.add_text("VM best-fit family", "lognormal", best_family[1]);
  cmp.add("reboot share of classified VM failures", paperref::kVmRebootShare,
          reboot_share, 3);

  cmp.check("PM repairs take distinctly longer than VM repairs "
            "(paper: ~2x; band >= 1.2x)",
            means[0] > 1.2 * means[1]);
  cmp.check("LogNormal is the (statistically) best fit for PM repair times",
            best_family[0] == "lognormal" || lognormal_competitive[0]);
  cmp.check("LogNormal is the (statistically) best fit for VM repair times",
            best_family[1] == "lognormal" || lognormal_competitive[1]);
  cmp.check("PM mean within 2x of the paper's 38.5 h",
            means[0] > paperref::kRepairMeanPmHours / 2.0 &&
                means[0] < paperref::kRepairMeanPmHours * 2.0);
  cmp.check("unexpected reboots are a large share of VM failures (~35%)",
            reboot_share > 0.20);
  return bench::finish(cmp);
}
