// Reproduces Table II: dataset statistics — PM/VM populations, total problem
// tickets, crash-ticket share of all tickets, and the PM/VM split of crash
// tickets, per subsystem.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/report.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();

  analysis::TextTable table({"", "Sys I", "Sys II", "Sys III", "Sys IV",
                             "Sys V"});
  std::array<std::size_t, trace::kSubsystemCount> pm_crash{}, vm_crash{};
  for (const trace::Ticket* t : pipeline.failures()) {
    const auto type = db.server(t->server).type;
    (type == trace::MachineType::kPhysical ? pm_crash : vm_crash)
        [t->subsystem]++;
  }

  const auto row = [&](const std::string& label, auto value_fn) {
    std::vector<std::string> cells = {label};
    for (trace::Subsystem s = 0; s < trace::kSubsystemCount; ++s) {
      cells.push_back(value_fn(s));
    }
    table.add_row(std::move(cells));
  };

  row("PMs", [&](trace::Subsystem s) {
    return std::to_string(db.server_count(trace::MachineType::kPhysical, s));
  });
  row("VMs", [&](trace::Subsystem s) {
    return std::to_string(db.server_count(trace::MachineType::kVirtual, s));
  });
  row("All tickets", [&](trace::Subsystem s) {
    return std::to_string(db.ticket_count(s));
  });
  row("% crash tickets", [&](trace::Subsystem s) {
    const double crash =
        static_cast<double>(pm_crash[s] + vm_crash[s]);
    return format_double(100.0 * crash / db.ticket_count(s), 2) + "%";
  });
  row("% crash (PMs)", [&](trace::Subsystem s) {
    const double crash = static_cast<double>(pm_crash[s] + vm_crash[s]);
    if (crash == 0) return std::string("n.a.");
    return format_double(100.0 * pm_crash[s] / crash, 0) + "%";
  });
  row("% crash (VMs)", [&](trace::Subsystem s) {
    const double crash = static_cast<double>(pm_crash[s] + vm_crash[s]);
    if (crash == 0) return std::string("n.a.");
    return format_double(100.0 * vm_crash[s] / crash, 0) + "%";
  });
  std::cout << "Table II (measured on the simulated trace)\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Table II -- dataset statistics");
  std::size_t crash_total = pipeline.failures().size();
  cmp.add("total PMs", paperref::kTotalPms,
          static_cast<double>(db.server_count(trace::MachineType::kPhysical)),
          0);
  cmp.add("total VMs", paperref::kTotalVms,
          static_cast<double>(db.server_count(trace::MachineType::kVirtual)),
          0);
  cmp.add("total crash tickets", paperref::kTotalCrashTickets,
          static_cast<double>(crash_total), 0);
  for (trace::Subsystem s = 0; s < trace::kSubsystemCount; ++s) {
    cmp.add(std::string(trace::subsystem_name(s)) + " crash fraction",
            paperref::kTable2[s].crash_ticket_fraction,
            static_cast<double>(pm_crash[s] + vm_crash[s]) /
                static_cast<double>(db.ticket_count(s)));
  }

  cmp.check("populations match Table II exactly",
            db.server_count(trace::MachineType::kPhysical) ==
                    static_cast<std::size_t>(paperref::kTotalPms) &&
                db.server_count(trace::MachineType::kVirtual) ==
                    static_cast<std::size_t>(paperref::kTotalVms));
  cmp.check("crash total within 15% of paper",
            std::abs(static_cast<double>(crash_total) -
                     paperref::kTotalCrashTickets) <
                0.15 * paperref::kTotalCrashTickets);
  cmp.check("Sys II VMs produce no crash tickets", vm_crash[1] == 0);
  cmp.check("PMs hold the crash-ticket majority overall",
            [&] {
              std::size_t pm = 0, vm = 0;
              for (trace::Subsystem s = 0; s < trace::kSubsystemCount; ++s) {
                pm += pm_crash[s];
                vm += vm_crash[s];
              }
              return pm > vm;
            }());
  return bench::finish(cmp);
}
