// Extension: follow-on failure class transitions. The paper's related-work
// section highlights (citing El-Sayed & Schroeder, DSN'13) that failure
// classes are strongly correlated — power problems induce follow-on
// failures "of any kind". This bench measures the same-server weekly
// class-transition matrix on our trace and checks the structure the
// generator encodes (software recurs as software; infrastructure classes
// seldom recur as themselves).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/report.h"
#include "src/analysis/transitions.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();

  const auto result = analysis::analyze_transitions(
      db, pipeline.failures(), pipeline.class_lookup(), kMinutesPerWeek);

  analysis::TextTable table({"from \\ to", "HW", "Net", "Power", "Reboot",
                             "SW", "Other", "P(follow-up)"});
  for (trace::FailureClass from : trace::kAllFailureClasses) {
    const auto i = static_cast<std::size_t>(from);
    std::vector<std::string> row = {std::string(trace::to_string(from))};
    for (std::size_t j = 0; j < trace::kFailureClassCount; ++j) {
      row.push_back(format_double(result.probability[i][j], 2));
    }
    row.push_back(format_double(result.followup_probability[i], 3));
    table.add_row(std::move(row));
  }
  std::cout << "Extension: same-server class transitions within a week\n"
            << table.to_string() << "\n";

  const double sw_self =
      result.self_transition(trace::FailureClass::kSoftware);
  const double hw_self =
      result.self_transition(trace::FailureClass::kHardware);
  const double power_follow = result.followup_probability[static_cast<
      std::size_t>(trace::FailureClass::kPower)];

  paperref::Comparison cmp(
      "Extension -- class-transition structure of follow-on failures");
  cmp.add("software self-transition", 0.5, sw_self, 2);
  cmp.add("hardware self-transition", 0.1, hw_self, 2);
  cmp.add("P(follow-up | power failure)", paperref::kRecurrentWeekPm,
          power_follow, 3);
  cmp.check("software problems recur as software far more than hardware "
            "recurs as hardware",
            sw_self > hw_self + 0.1);
  cmp.check("power failures induce follow-on failures of any kind "
            "(no dominant destination class)",
            [&] {
              const auto i =
                  static_cast<std::size_t>(trace::FailureClass::kPower);
              for (std::size_t j = 0; j < trace::kFailureClassCount; ++j) {
                if (result.probability[i][j] > 0.75) return false;
              }
              return power_follow > 0.05;
            }());
  cmp.check("every class's follow-up probability is below the all-class "
            "weekly recurrence ceiling",
            [&] {
              for (double p : result.followup_probability) {
                if (p > 0.6) return false;
              }
              return true;
            }());
  return bench::finish(cmp);
}
