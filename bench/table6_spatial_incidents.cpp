// Reproduces Table VI: the percentage of failure incidents involving zero,
// one, and two-or-more servers, overall and per machine-type view, plus the
// paper's derived dependency fractions (VMs ~26%, PMs ~16%).
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/report.h"
#include "src/analysis/spatial.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& pipeline = bench::shared_pipeline();

  const auto result = analysis::analyze_spatial(db, pipeline.class_lookup());

  analysis::TextTable table({"view", "0", "1", ">=2", "dependency"});
  const auto add = [&](const std::string& view,
                       const analysis::IncidentTypeBreakdown& b) {
    table.add_row({view, format_double(100.0 * b.zero, 0) + "%",
                   format_double(100.0 * b.one, 0) + "%",
                   format_double(100.0 * b.two_or_more, 0) + "%",
                   format_double(100.0 * b.dependency_fraction(), 0) + "%"});
  };
  add("PM and VM", result.all);
  add("PM only", result.pm_only);
  add("VM only", result.vm_only);
  std::cout << "Table VI (" << result.incident_count
            << " incidents; max servers in one incident: "
            << result.max_servers_in_incident << ")\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Table VI -- spatial dependency of failures");
  cmp.add("incidents with one server", paperref::kTable6All.one,
          result.all.one, 3);
  cmp.add("incidents with >=2 servers", paperref::kTable6All.two_or_more,
          result.all.two_or_more, 3);
  cmp.add("VM dependency fraction", paperref::kVmDependencyFraction,
          result.vm_only.dependency_fraction(), 3);
  cmp.add("PM dependency fraction", paperref::kPmDependencyFraction,
          result.pm_only.dependency_fraction(), 3);
  cmp.add("max servers in one incident", paperref::kTable7Other.max,
          result.max_servers_in_incident, 0);

  cmp.check("~78/22 split: most incidents affect a single server",
            result.all.one > 0.65 && result.all.two_or_more < 0.35);
  cmp.check("VMs show stronger spatial dependency than PMs",
            result.vm_only.dependency_fraction() >
                result.pm_only.dependency_fraction());
  cmp.check("largest incident within 2x of the paper's 34 servers",
            result.max_servers_in_incident >= 17 &&
                result.max_servers_in_incident <= 40);
  // Documented deviation: the paper's PM-only/VM-only zero rows imply more
  // VM-involving than PM-involving incidents, which contradicts its own
  // Table II crash split; our trace follows Table II (see EXPERIMENTS.md).
  cmp.check("incidents never involve zero servers overall",
            result.all.zero == 0.0);
  return bench::finish(cmp);
}
