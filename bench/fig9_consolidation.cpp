// Reproduces Fig. 9: the impact of the VM consolidation level (co-located
// VMs per hosting box, averaged monthly) on weekly VM failure rates — the
// paper's finding that failure rates *decrease* with consolidation.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/management.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto& db = bench::shared_db();
  const auto& failures = bench::shared_pipeline().failures();

  const auto result = analysis::consolidation_binned_rates(db, failures);
  std::cout << bench::render_binned(
                   "Fig. 9 (VM weekly failure rate vs consolidation level)",
                   result)
            << "\n";

  // Population shares across levels (paper: 0.6% at level 1, ~30% and ~32%
  // at 16 and 32).
  std::size_t total = 0;
  for (std::size_t n : result.population) total += n;
  std::cout << "population shares: ";
  for (std::size_t b = 0; b < result.population.size(); ++b) {
    std::cout << result.spec.label(b) << "="
              << format_double(100.0 * result.population[b] / total, 1)
              << "% ";
  }
  std::cout << "\n\n";

  paperref::Comparison cmp("Fig. 9 -- impact of VM consolidation");
  const auto& rates = result.overall_rate;
  const std::size_t last = rates.size() - 1;
  // Statistically meaningful bins only: the level-1 bin holds ~0.6% of VMs
  // (a few dozen machines), exactly as in the paper's population.
  constexpr std::size_t kMinPopulation = 100;
  std::size_t first_solid = 0;
  while (first_solid < last && result.population[first_solid] < kMinPopulation)
    ++first_solid;

  cmp.add("rate at low consolidation", 0.006, rates[first_solid], 5);
  cmp.add("rate at highest consolidation", 0.002, rates[last], 5);
  cmp.add("share of VMs at level >= 9", 0.60,
          static_cast<double>(result.population[last] +
                              result.population[last - 1]) /
              total,
          2);

  bool non_increasing = true;
  for (std::size_t b = first_solid + 1; b < rates.size(); ++b) {
    if (result.population[b] < kMinPopulation ||
        result.population[b - 1] < kMinPopulation) {
      continue;
    }
    non_increasing &= rates[b] <= rates[b - 1] * 1.15;  // small noise band
  }
  cmp.check("failure rate decreases with consolidation level",
            non_increasing);
  cmp.check("high-consolidation VMs fail well below low-consolidation ones "
            "(paper: ~3x; band >= 1.5x)",
            rates[first_solid] > 1.5 * rates[last]);
  cmp.check("population increases with consolidation (Fig. 9 prose)",
            result.population[0] < result.population[last]);
  return bench::finish(cmp);
}
