// Ablation: flatten all hazard multiplier curves and show that the
// capacity/usage factors of Figs. 7-10 collapse toward 1x — the analysis
// recovers the generator's covariate structure rather than inventing it.
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/management.h"
#include "src/analysis/report.h"
#include "src/sim/scenario.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  fa::bench::init(argc, argv);
  using namespace fa;
  const auto baseline_config = sim::SimulationConfig::paper_defaults();
  const auto ablated_config =
      sim::apply_ablation(baseline_config, sim::Ablation::kFlatCovariates);
  const auto& baseline = bench::simulated(baseline_config);
  const auto& ablated = bench::simulated(ablated_config);

  const analysis::CapacityAttribute disks = [](const trace::ServerRecord& s) {
    return s.disk_count ? std::optional<double>(*s.disk_count) : std::nullopt;
  };
  const analysis::CapacityAttribute cpu = [](const trace::ServerRecord& s) {
    return std::optional<double>(s.cpu_count);
  };
  const analysis::Scope vm{trace::MachineType::kVirtual, std::nullopt};
  const analysis::Scope pm{trace::MachineType::kPhysical, std::nullopt};

  analysis::TextTable table({"factor", "baseline", "flat-covariates"});
  const auto factor_pair = [&](const trace::TraceDatabase& base_db,
                               const trace::TraceDatabase& flat_db,
                               const analysis::Scope& scope,
                               const analysis::CapacityAttribute& attr,
                               std::vector<double> edges) {
    const auto base_rates = analysis::capacity_binned_rates(
        base_db, base_db.crash_tickets(), scope, attr,
        stats::BinSpec::from_edges(edges));
    const auto flat_rates = analysis::capacity_binned_rates(
        flat_db, flat_db.crash_tickets(), scope, attr,
        stats::BinSpec::from_edges(std::move(edges)));
    return std::pair<double, double>{base_rates.max_min_rate_factor(),
                                     flat_rates.max_min_rate_factor()};
  };

  const auto disk_factors =
      factor_pair(baseline, ablated, vm, disks, {1, 2, 3, 4, 5, 6, 7});
  table.add_row({"VM disk count (paper ~10x)",
                 format_double(disk_factors.first, 1) + "x",
                 format_double(disk_factors.second, 1) + "x"});
  const auto cpu_factors =
      factor_pair(baseline, ablated, pm, cpu,
                  {1, 2, 3, 6, 12, 20, 28, 48, 128});
  table.add_row({"PM CPU count (paper ~5.5x)",
                 format_double(cpu_factors.first, 1) + "x",
                 format_double(cpu_factors.second, 1) + "x"});

  // Consolidation factor (Fig. 9).
  const auto base_consol = analysis::consolidation_binned_rates(
      baseline, baseline.crash_tickets());
  const auto flat_consol =
      analysis::consolidation_binned_rates(ablated, ablated.crash_tickets());
  table.add_row({"VM consolidation (paper ~3x)",
                 format_double(base_consol.max_min_rate_factor(), 1) + "x",
                 format_double(flat_consol.max_min_rate_factor(), 1) + "x"});

  std::cout << "Ablation: covariate curves vs Figs. 7/9 factors\n"
            << table.to_string() << "\n";

  paperref::Comparison cmp("Ablation -- curves drive covariate factors");
  cmp.add("baseline disk-count factor", paperref::kVmDiskCountFactor,
          disk_factors.first, 1);
  cmp.add("ablated disk-count factor", 1.0, disk_factors.second, 1);
  cmp.check("baseline shows strong covariate factors",
            disk_factors.first > 4.0 && cpu_factors.first > 3.0);
  cmp.check("ablated factors collapse toward 1x (within sampling noise)",
            disk_factors.second < 0.4 * disk_factors.first &&
                cpu_factors.second < 0.5 * cpu_factors.first);
  return bench::finish(cmp);
}
