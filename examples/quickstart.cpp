// Quickstart: simulate a datacenter trace, run the analysis pipeline, and
// print the headline failure statistics of the paper.
//
//   $ ./examples/quickstart [scale]
//
// `scale` in (0, 1] shrinks the simulated fleet (default 1.0 = the paper's
// ~10K machines; use e.g. 0.1 for a fast demo).
#include <cstdlib>
#include <iostream>

#include "src/analysis/failure_rates.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/report.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace fa;

  double scale = 1.0;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::cerr << "usage: quickstart [scale in (0,1]]\n";
    return 1;
  }

  std::cout << "Simulating five datacenter subsystems (scale=" << scale
            << ")...\n";
  auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
  const trace::TraceDatabase db = sim::simulate(config);

  std::cout << "  servers: " << db.servers().size()
            << "  (PM=" << db.server_count(trace::MachineType::kPhysical)
            << ", VM=" << db.server_count(trace::MachineType::kVirtual)
            << ")\n";
  std::cout << "  tickets: " << db.tickets().size() << "\n";

  std::cout << "Extracting crash tickets and classifying by root cause...\n";
  const analysis::AnalysisPipeline pipeline(db);
  std::cout << "  crash tickets: " << pipeline.failures().size()
            << ", classifier accuracy vs ground truth: "
            << format_double(100.0 * pipeline.classification().accuracy, 1)
            << "%\n\n";

  analysis::TextTable table(
      {"scope", "weekly failure rate", "p25", "p75", "random weekly",
       "recurrent weekly", "ratio"});
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const auto type = static_cast<trace::MachineType>(t);
    const analysis::Scope scope{type, std::nullopt};
    const auto summary = analysis::failure_rate_summary(
        db, pipeline.failures(), scope, analysis::Granularity::kWeekly);
    const double random = analysis::random_failure_probability(
        db, pipeline.failures(), scope, analysis::Granularity::kWeekly);
    const double recurrent = analysis::recurrent_probability(
        db, pipeline.failures(), scope, kMinutesPerWeek);
    table.add_row({std::string(trace::to_string(type)),
                   format_double(summary.mean, 5),
                   format_double(summary.p25, 5),
                   format_double(summary.p75, 5), format_double(random, 5),
                   format_double(recurrent, 3),
                   random > 0 ? format_double(recurrent / random, 1) + "x"
                              : "n.a."});
  }
  std::cout << table.to_string();
  std::cout << "\nKey finding reproduced: PMs fail more often than VMs, but "
               "both show\nrecurrent-failure probabilities orders of "
               "magnitude above random.\n";
  return 0;
}
