// What-if: the paper's Section IV-F suggestion — "periodically taking
// snapshots of existing VM images and creating new VM instances can reduce
// VM failures". This example quantifies it by re-running the calibrated
// simulation with the age-risk curve clamped at several refresh horizons.
//
//   $ ./examples/whatif_vm_refresh [scale]
#include <cstdlib>
#include <iostream>

#include "src/analysis/failure_rates.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/report.h"
#include "src/sim/scenario.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

namespace {

double vm_weekly_rate(const fa::trace::TraceDatabase& db) {
  const auto failures = db.crash_tickets();
  return fa::analysis::failure_rate_summary(
             db, failures,
             {fa::trace::MachineType::kVirtual, std::nullopt},
             fa::analysis::Granularity::kWeekly)
      .mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fa;
  double scale = 0.5;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::cerr << "usage: whatif_vm_refresh [scale in (0,1]]\n";
    return 1;
  }

  const auto base_config =
      sim::SimulationConfig::paper_defaults().scaled(scale);
  const double baseline = vm_weekly_rate(sim::simulate(base_config));

  analysis::TextTable table(
      {"policy", "VM weekly failure rate", "vs baseline"});
  table.add_row({"no refresh (baseline)", format_double(baseline, 5), "--"});
  for (double horizon : {540.0, 365.0, 180.0, 90.0}) {
    // The hazard change must be converted into an absolute volume change
    // (the simulator otherwise re-normalizes to the calibrated targets).
    const auto scenario = sim::rescale_vm_targets(
        sim::with_vm_refresh(base_config, horizon), base_config);
    const double rate = vm_weekly_rate(sim::simulate(scenario));
    table.add_row({"refresh every " + format_double(horizon, 0) + " days",
                   format_double(rate, 5),
                   format_double(100.0 * (rate / baseline - 1.0), 1) + "%"});
  }
  std::cout << "What-if: periodic VM re-instantiation (age-risk clamping)\n"
            << table.to_string() << "\n";
  std::cout
      << "Yearly refresh buys only a few percent (the Fig. 6 age trend is "
         "weak),\nbut aggressive quarterly refresh keeps every VM on the "
         "young, low-risk\nend of the age curve -- quantifying the paper's "
         "suggestion.\n";
  return 0;
}
