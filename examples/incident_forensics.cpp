// Incident forensics: persist a trace to CSV (the operational hand-off
// format), reload it, and drill into the widest failure incidents — the
// spatial-dependency investigation of Section IV-E as an operator would run
// it on real exports.
//
//   $ ./examples/incident_forensics [scale] [export_dir]
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "src/analysis/pipeline.h"
#include "src/analysis/report.h"
#include "src/analysis/spatial.h"
#include "src/sim/simulator.h"
#include "src/trace/csv_io.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace fa;
  double scale = 0.3;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::cerr << "usage: incident_forensics [scale in (0,1]] [export_dir]\n";
    return 1;
  }
  const std::string export_dir =
      argc > 2 ? argv[2]
               : (std::filesystem::temp_directory_path() / "fa_export")
                     .string();

  // 1. Simulate and export, as a datacenter would dump its databases.
  const auto original =
      sim::simulate(sim::SimulationConfig::paper_defaults().scaled(scale));
  trace::save_database(original, export_dir);
  std::cout << "Exported " << original.tickets().size() << " tickets and "
            << original.servers().size() << " server records to "
            << export_dir << "\n";

  // 2. Reload: everything downstream works on the CSV copy.
  const auto db = trace::load_database(export_dir);
  const analysis::AnalysisPipeline pipeline(db);

  const auto spatial = analysis::analyze_spatial(db, pipeline.class_lookup());
  std::cout << "\nIncident census: " << spatial.incident_count
            << " incidents, "
            << format_double(100.0 * spatial.all.two_or_more, 1)
            << "% affect >= 2 servers, widest incident touches "
            << spatial.max_servers_in_incident << " servers\n\n";

  // 3. Rank incidents by the number of distinct servers and dissect the top.
  auto incidents = db.incidents();
  const auto distinct_servers = [](const std::vector<const trace::Ticket*>&
                                       tickets) {
    std::vector<std::int32_t> ids;
    for (const trace::Ticket* t : tickets) ids.push_back(t->server.value);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids.size();
  };
  std::sort(incidents.begin(), incidents.end(),
            [&](const auto& a, const auto& b) {
              return distinct_servers(a) > distinct_servers(b);
            });

  for (std::size_t i = 0; i < std::min<std::size_t>(3, incidents.size());
       ++i) {
    const auto& tickets = incidents[i];
    const trace::Ticket* first = tickets.front();
    for (const trace::Ticket* t : tickets) {
      if (t->opened < first->opened) first = t;
    }
    std::cout << "--- incident #" << (i + 1) << ": "
              << distinct_servers(tickets) << " servers, "
              << tickets.size() << " tickets, class '"
              << trace::to_string(pipeline.class_of(*first)) << "', "
              << std::string(trace::subsystem_name(first->subsystem))
              << ", started " << format_time(first->opened) << " ---\n";
    analysis::TextTable timeline({"time", "server", "type", "repair [h]"});
    std::vector<const trace::Ticket*> ordered(tickets.begin(), tickets.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const trace::Ticket* a, const trace::Ticket* b) {
                return a->opened < b->opened;
              });
    for (std::size_t k = 0; k < std::min<std::size_t>(8, ordered.size());
         ++k) {
      const trace::Ticket* t = ordered[k];
      timeline.add_row(
          {format_time(t->opened), std::to_string(t->server.value),
           std::string(trace::to_string(db.server(t->server).type)),
           format_double(to_hours(t->repair_time()), 1)});
    }
    std::cout << timeline.to_string();
    if (ordered.size() > 8) {
      std::cout << "  ... " << (ordered.size() - 8) << " more tickets\n";
    }
    std::cout << "\n";
  }

  std::filesystem::remove_all(export_dir);
  return 0;
}
