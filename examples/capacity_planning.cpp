// Capacity planning: use the binned covariate analysis (Section V) to
// compare failure rates across configurations and print procurement advice —
// which PM sizes and VM shapes fail least, echoing the paper's conclusions
// ("a reliable PM should equip a moderate amount of memory and keep its
// utilization sufficiently high").
//
//   $ ./examples/capacity_planning [scale]
#include <cstdlib>
#include <iostream>

#include "src/analysis/capacity_usage.h"
#include "src/analysis/management.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/report.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

namespace {

void print_binned(const std::string& title,
                  const fa::analysis::BinnedRates& rates) {
  fa::analysis::TextTable table({"range", "servers", "weekly failure rate"});
  for (std::size_t b = 0; b < rates.population.size(); ++b) {
    if (rates.population[b] == 0) continue;
    table.add_row({rates.spec.label(b), std::to_string(rates.population[b]),
                   fa::format_double(rates.overall_rate[b], 5)});
  }
  std::cout << title << "\n" << table.to_string() << "\n";
}

std::string best_bin(const fa::analysis::BinnedRates& rates,
                     std::size_t min_population) {
  std::size_t best = rates.population.size();
  for (std::size_t b = 0; b < rates.population.size(); ++b) {
    if (rates.population[b] < min_population) continue;
    if (best == rates.population.size() ||
        rates.overall_rate[b] < rates.overall_rate[best]) {
      best = b;
    }
  }
  return best < rates.population.size() ? rates.spec.label(best) : "n.a.";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fa;
  double scale = 0.5;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::cerr << "usage: capacity_planning [scale in (0,1]]\n";
    return 1;
  }

  const auto db =
      sim::simulate(sim::SimulationConfig::paper_defaults().scaled(scale));
  const analysis::AnalysisPipeline pipeline(db);
  const auto& failures = pipeline.failures();

  const analysis::Scope pm{trace::MachineType::kPhysical, std::nullopt};
  const analysis::Scope vm{trace::MachineType::kVirtual, std::nullopt};

  const auto pm_mem = analysis::capacity_binned_rates(
      db, failures, pm,
      [](const trace::ServerRecord& s) {
        return std::optional<double>(s.memory_gb);
      },
      stats::BinSpec::from_edges({1, 6, 48, 96, 192, 512}));
  print_binned("PM weekly failure rate by memory size [GB]", pm_mem);

  const auto vm_disks = analysis::capacity_binned_rates(
      db, failures, vm,
      [](const trace::ServerRecord& s) {
        return s.disk_count ? std::optional<double>(*s.disk_count)
                            : std::nullopt;
      },
      stats::BinSpec::from_edges({1, 2, 3, 7}));
  print_binned("VM weekly failure rate by number of virtual disks",
               vm_disks);

  const auto consolidation =
      analysis::consolidation_binned_rates(db, failures);
  print_binned("VM weekly failure rate by consolidation level",
               consolidation);

  const auto pm_mem_util = analysis::usage_binned_rates(
      db, failures, pm,
      [](const trace::WeeklyUsage& u) {
        return std::optional<double>(u.mem_util);
      },
      stats::BinSpec::from_edges({0, 20, 40, 60, 70, 100}));
  print_binned("PM weekly failure rate by memory utilization [%]",
               pm_mem_util);

  std::cout << "Procurement advice derived from this trace:\n"
            << "  * most reliable PM memory band:      "
            << best_bin(pm_mem, 20) << " GB\n"
            << "  * most reliable VM disk count:       "
            << best_bin(vm_disks, 20) << " disk(s)\n"
            << "  * most reliable consolidation level: "
            << best_bin(consolidation, 50) << " VMs/box\n"
            << "  * PM memory utilization sweet spot:  "
            << best_bin(pm_mem_util, 20) << " %\n\n"
            << "These echo the paper: moderate PM memory with high "
               "utilization,\nfew virtual disks, and dense consolidation on "
               "high-end hosts.\n";
  return 0;
}
