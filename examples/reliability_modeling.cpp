// Reliability modelling: fit the statistical models the paper uses
// (Gamma inter-failure times, LogNormal repair times), derive MTBF / MTTR /
// availability per machine type, and print a survival curve — the
// fault-tolerance planning workflow Section IV motivates.
//
//   $ ./examples/reliability_modeling [scale]
#include <cstdlib>
#include <iostream>

#include "src/analysis/pipeline.h"
#include "src/analysis/reliability.h"
#include "src/analysis/report.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace fa;
  double scale = 0.5;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::cerr << "usage: reliability_modeling [scale in (0,1]]\n";
    return 1;
  }

  const auto db =
      sim::simulate(sim::SimulationConfig::paper_defaults().scaled(scale));
  const analysis::AnalysisPipeline pipeline(db);

  analysis::TextTable table({"metric", "PM", "VM"});
  std::array<analysis::ReliabilityReport, 2> reports;
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    reports[static_cast<std::size_t>(t)] = analysis::reliability_report(
        db, pipeline.failures(),
        {static_cast<trace::MachineType>(t), std::nullopt});
  }
  const auto row = [&](const std::string& name, auto fn) {
    table.add_row({name, fn(reports[0]), fn(reports[1])});
  };
  row("servers", [](const auto& r) { return std::to_string(r.servers); });
  row("failures", [](const auto& r) { return std::to_string(r.failures); });
  row("MTBF [days]",
      [](const auto& r) { return format_double(r.mtbf_days, 1); });
  row("MTTR [hours]",
      [](const auto& r) { return format_double(r.mttr_hours, 1); });
  row("failures / server-year",
      [](const auto& r) { return format_double(r.annualized_failure_rate, 3); });
  row("availability", [](const auto& r) {
    return format_double(100.0 * r.availability, 4) + "%";
  });
  row("inter-failure fit", [](const auto& r) {
    return r.interfailure_fit ? r.interfailure_fit->dist->describe()
                              : std::string("n.a.");
  });
  row("repair fit", [](const auto& r) {
    return r.repair_fit ? r.repair_fit->dist->describe()
                        : std::string("n.a.");
  });
  std::cout << "Reliability model (one simulated observation year)\n"
            << table.to_string() << "\n";

  analysis::TextTable survival(
      {"horizon [days]", "P(PM survives)", "P(VM survives)"});
  for (double days : {7.0, 30.0, 90.0, 180.0, 365.0}) {
    survival.add_row(
        {format_double(days, 0),
         format_double(analysis::survival_probability(reports[0], days), 3),
         format_double(analysis::survival_probability(reports[1], days), 3)});
  }
  std::cout << "Survival probabilities (Poisson approximation)\n"
            << survival.to_string() << "\n";

  std::cout << "Modeling note: inter-failure times are far from exponential\n"
               "(recurrent failures cluster), so per-window survival should\n"
               "be taken from the fitted "
            << (reports[0].interfailure_fit
                    ? reports[0].interfailure_fit->dist->name()
                    : "heavy-tailed")
            << " distribution when precision matters.\n";
  return 0;
}
