#include "src/inject/corruptor.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <vector>

#include "src/sim/seed_streams.h"
#include "src/trace/csv_io.h"
#include "src/util/csv.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::inject {
namespace {

using trace::DefectClass;
using sim::SeedStream;
using sim::stream_rng;

// Defect classes injected per tickets.csv row, in cumulative-draw order.
// The order is part of the determinism contract: reordering would reseat
// every row's defect under an unchanged seed.
constexpr std::array<DefectClass, 6> kTicketClasses = {
    DefectClass::kUnparseableField, DefectClass::kDuplicateId,
    DefectClass::kOutOfWindowTimestamp, DefectClass::kEndBeforeOpen,
    DefectClass::kOrphanReference, DefectClass::kUnknownEnum};

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "corrupt_database: cannot open " + path);
  return in;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "corrupt_database: cannot open " + path);
  return out;
}

void copy_verbatim(const std::string& in_dir, const std::string& out_dir,
                   const std::string& file, bool required = true) {
  const std::string src = in_dir + "/" + file;
  if (!required && !std::filesystem::exists(src)) return;
  require(std::filesystem::exists(src),
          "corrupt_database: missing " + src);
  std::filesystem::copy_file(src, out_dir + "/" + file,
                             std::filesystem::copy_options::overwrite_existing);
}

// The ticket observation window of the input export (meta.csv, or the
// paper's default), needed to place out-of-window shifts.
ObservationWindow read_ticket_window(const std::string& in_dir) {
  ObservationWindow window = ticket_window();
  const std::string path = in_dir + "/" + trace::kMetaFile;
  if (!std::filesystem::exists(path)) return window;
  auto in = open_in(path);
  CsvReader r(in);
  trace::expect_header(r, trace::meta_header(), path);
  std::vector<std::string> row;
  while (r.read_row(row)) {
    require(row.size() == 3, "corrupt_database: bad row in " + path);
    if (row[0] == "ticket") {
      window = {parse_int(row[1]), parse_int(row[2])};
    }
  }
  return window;
}

std::size_t count_data_rows(const std::string& path,
                            const std::vector<std::string>& header) {
  auto in = open_in(path);
  CsvReader r(in);
  trace::expect_header(r, header, path);
  std::vector<std::string> row;
  std::size_t n = 0;
  while (r.read_row(row)) ++n;
  return n;
}

// Picks a defect for one row: walks `classes` with their mix rates against
// a single uniform draw. Returns nullopt for "leave the row clean".
template <typename Classes>
std::optional<DefectClass> draw_defect(Rng& rng, const DefectMix& mix,
                                       const Classes& classes) {
  double total = 0.0;
  for (DefectClass cls : classes) total += mix.rate(cls);
  require(total <= 1.0,
          "corrupt_database: defect rates for one file exceed 1.0");
  const double u = rng.uniform();
  double acc = 0.0;
  for (DefectClass cls : classes) {
    acc += mix.rate(cls);
    if (u < acc) return cls;
  }
  return std::nullopt;
}

}  // namespace

DefectMix DefectMix::uniform(double rate) {
  DefectMix mix;
  for (DefectClass cls : trace::kAllDefectClasses) mix.set_rate(cls, rate);
  return mix;
}

double DefectMix::rate(DefectClass cls) const {
  switch (cls) {
    case DefectClass::kUnparseableField: return unparseable_field;
    case DefectClass::kNonFiniteNumeric: return non_finite_numeric;
    case DefectClass::kDuplicateId: return duplicate_id;
    case DefectClass::kOutOfWindowTimestamp: return out_of_window;
    case DefectClass::kEndBeforeOpen: return end_before_open;
    case DefectClass::kOrphanReference: return orphan_reference;
    case DefectClass::kTruncatedSeries: return truncated_series;
    case DefectClass::kUnknownEnum: return unknown_enum;
  }
  throw Error("DefectMix::rate: invalid DefectClass");
}

void DefectMix::set_rate(DefectClass cls, double rate) {
  switch (cls) {
    case DefectClass::kUnparseableField: unparseable_field = rate; return;
    case DefectClass::kNonFiniteNumeric: non_finite_numeric = rate; return;
    case DefectClass::kDuplicateId: duplicate_id = rate; return;
    case DefectClass::kOutOfWindowTimestamp: out_of_window = rate; return;
    case DefectClass::kEndBeforeOpen: end_before_open = rate; return;
    case DefectClass::kOrphanReference: orphan_reference = rate; return;
    case DefectClass::kTruncatedSeries: truncated_series = rate; return;
    case DefectClass::kUnknownEnum: unknown_enum = rate; return;
  }
  throw Error("DefectMix::set_rate: invalid DefectClass");
}

std::size_t InjectionReport::total() const {
  std::size_t n = 0;
  for (std::size_t c : injected) n += c;
  return n;
}

std::string InjectionReport::to_string() const {
  std::string out =
      "injection report: " + std::to_string(total()) + " defects\n";
  for (DefectClass cls : trace::kAllDefectClasses) {
    const std::size_t n = count(cls);
    if (n == 0) continue;
    out += "  " + std::string(trace::to_string(cls)) + ": " +
           std::to_string(n) + "\n";
  }
  return out;
}

std::string InjectionReport::counts_csv() const {
  std::string out = "class,count\n";
  for (DefectClass cls : trace::kAllDefectClasses) {
    out += std::string(trace::to_string(cls)) + "," +
           std::to_string(count(cls)) + "\n";
  }
  return out;
}

InjectionReport corrupt_database(const std::string& in_dir,
                                 const std::string& out_dir,
                                 std::uint64_t seed, const DefectMix& mix) {
  require(std::filesystem::weakly_canonical(in_dir) !=
              std::filesystem::weakly_canonical(out_dir),
          "corrupt_database: input and output directory must differ");
  std::filesystem::create_directories(out_dir);

  InjectionReport report;
  const auto inject = [&](DefectClass cls) {
    ++report.injected[static_cast<std::size_t>(cls)];
  };

  // Untargeted tables travel unchanged.
  copy_verbatim(in_dir, out_dir, trace::kMetaFile, /*required=*/false);
  copy_verbatim(in_dir, out_dir, trace::kServersFile);
  copy_verbatim(in_dir, out_dir, trace::kPowerEventsFile);
  copy_verbatim(in_dir, out_dir, trace::kSnapshotsFile);

  const ObservationWindow window = read_ticket_window(in_dir);
  const std::size_t n_servers = count_data_rows(
      in_dir + "/" + trace::kServersFile, trace::servers_header());

  // ---- tickets.csv: per-row defect draw ----
  {
    const std::string path = in_dir + "/" + trace::kTicketsFile;
    auto in = open_in(path);
    auto out = open_out(out_dir + "/" + trace::kTicketsFile);
    CsvReader r(in);
    CsvWriter w(out);
    trace::expect_header(r, trace::tickets_header(), path);
    w.write_row(trace::tickets_header());
    std::vector<std::string> row;
    std::size_t index = 0;
    while (r.read_row(row)) {
      ++index;
      require(row.size() == 10, "corrupt_database: bad row in " + path);
      Rng rng = stream_rng(seed, SeedStream::kInjectTicket, index);
      const auto defect = draw_defect(rng, mix, kTicketClasses);
      bool duplicate = false;
      if (defect) {
        switch (*defect) {
          case DefectClass::kUnparseableField:
            row[3] = "bo!gus";
            inject(*defect);
            break;
          case DefectClass::kDuplicateId:
            duplicate = true;
            inject(*defect);
            break;
          case DefectClass::kOutOfWindowTimestamp: {
            const TimePoint opened = parse_int(row[6]);
            const TimePoint closed = parse_int(row[7]);
            const Duration shift =
                (window.end - opened) +
                kMinutesPerDay * (1 + rng.uniform_int(0, 30));
            row[6] = std::to_string(opened + shift);
            row[7] = std::to_string(closed + shift);
            inject(*defect);
            break;
          }
          case DefectClass::kEndBeforeOpen: {
            const TimePoint opened = parse_int(row[6]);
            const TimePoint closed = parse_int(row[7]);
            if (closed > opened) {
              std::swap(row[6], row[7]);
            } else {
              row[7] = std::to_string(opened - kMinutesPerHour);
            }
            inject(*defect);
            break;
          }
          case DefectClass::kOrphanReference:
            // Only crash tickets carry a mandatory machine reference; a
            // non-crash row drawn here stays clean (the report counts what
            // was actually injected, not the nominal rate).
            if (row[4] == "1") {
              row[2] = std::to_string(n_servers + 1000 + index);
              inject(*defect);
            }
            break;
          case DefectClass::kUnknownEnum:
            row[5] = "gremlins";
            inject(*defect);
            break;
          case DefectClass::kNonFiniteNumeric:
          case DefectClass::kTruncatedSeries:
            break;  // not ticket-targeted; unreachable via kTicketClasses
        }
      }
      w.write_row(row);
      if (duplicate) w.write_row(row);
    }
  }

  // ---- weekly_usage.csv: series truncation + non-finite numerics ----
  {
    const std::string path = in_dir + "/" + trace::kWeeklyUsageFile;
    auto in = open_in(path);
    CsvReader r(in);
    trace::expect_header(r, trace::weekly_usage_header(), path);
    struct UsageRow {
      std::size_t index;  // original data-record index (RNG stream id)
      std::int64_t server;
      int week;
      std::vector<std::string> fields;
    };
    std::vector<UsageRow> rows;
    std::vector<std::string> row;
    std::size_t index = 0;
    while (r.read_row(row)) {
      ++index;
      require(row.size() == 6, "corrupt_database: bad row in " + path);
      rows.push_back({index, parse_int(row[0]),
                      static_cast<int>(parse_int(row[1])), row});
    }

    // Truncation plan: per server, decide from its own stream whether the
    // series loses its tail, and how many of its trailing weeks go.
    std::map<std::int64_t, std::vector<int>> weeks_by_server;
    for (const UsageRow& u : rows) {
      weeks_by_server[u.server].push_back(u.week);
    }
    std::map<std::int64_t, int> cutoff;  // keep weeks <= cutoff[server]
    for (auto& [server, weeks] : weeks_by_server) {
      std::sort(weeks.begin(), weeks.end());
      weeks.erase(std::unique(weeks.begin(), weeks.end()), weeks.end());
      if (weeks.size() < 2) continue;  // nothing to truncate from
      Rng rng = stream_rng(seed, SeedStream::kInjectSeries,
                           static_cast<std::uint64_t>(server));
      if (!rng.bernoulli(mix.truncated_series)) continue;
      // Drop between 1 and all-but-one trailing weeks.
      const auto dropped = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(weeks.size()) - 1));
      cutoff[server] = weeks[weeks.size() - dropped - 1];
      inject(DefectClass::kTruncatedSeries);
    }

    auto out = open_out(out_dir + "/" + trace::kWeeklyUsageFile);
    CsvWriter w(out);
    w.write_row(trace::weekly_usage_header());
    for (UsageRow& u : rows) {
      const auto cut = cutoff.find(u.server);
      if (cut != cutoff.end() && u.week > cut->second) continue;
      Rng rng = stream_rng(seed, SeedStream::kInjectUsage, u.index);
      if (rng.uniform() < mix.non_finite_numeric) {
        static const char* kNonFinite[] = {"nan", "inf", "-inf"};
        u.fields[2] = kNonFinite[rng.uniform_int(0, 2)];
        inject(DefectClass::kNonFiniteNumeric);
      }
      w.write_row(u.fields);
    }
  }

  return report;
}

}  // namespace fa::inject
