#include "src/inject/io_faults.h"

#include <algorithm>
#include <cstring>

#include "src/sim/seed_streams.h"

namespace fa::inject {

namespace {

using Kind = IoFaultEvent::Kind;

void record(IoFaultLog* log, std::uint64_t op, Kind kind, std::uint64_t offset,
            std::uint64_t detail) {
  if (log != nullptr) log->events.push_back({op, kind, offset, detail});
}

}  // namespace

const char* IoFaultEvent::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kShortWrite:
      return "short_write";
    case Kind::kTransientWrite:
      return "transient_write";
    case Kind::kTornWrite:
      return "torn_write";
    case Kind::kCrash:
      return "crash";
    case Kind::kTransientRead:
      return "transient_read";
    case Kind::kBitFlip:
      return "bit_flip";
  }
  return "unknown";
}

std::string IoFaultLog::to_csv() const {
  std::string out = "op,kind,offset,detail\n";
  for (const IoFaultEvent& e : events) {
    out += std::to_string(e.op);
    out += ',';
    out += IoFaultEvent::kind_name(e.kind);
    out += ',';
    out += std::to_string(e.offset);
    out += ',';
    out += std::to_string(e.detail);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultyFile

FaultyFile::FaultyFile(std::unique_ptr<io::WritableFile> base,
                       IoFaultConfig config, IoFaultLog* log)
    : base_(std::move(base)), config_(config), log_(log) {}

std::size_t FaultyFile::write_some(const void* src, std::size_t n) {
  if (n == 0) return 0;
  const std::uint64_t op = op_++;

  // A crash dominates everything: persist the exact pre-crash prefix, then
  // fail this and every later operation (the "process" is gone).
  if (crashed_) {
    record(log_, op, Kind::kCrash, offset_, 0);
    throw InjectedCrash(path(), offset_);
  }
  if (config_.crash_at_byte >= 0) {
    const auto crash_at = static_cast<std::uint64_t>(config_.crash_at_byte);
    if (offset_ + n >= crash_at) {
      const std::size_t keep =
          crash_at > offset_ ? static_cast<std::size_t>(crash_at - offset_)
                             : 0;
      std::size_t persisted = 0;
      const std::byte* p = static_cast<const std::byte*>(src);
      while (persisted < keep) {
        persisted += base_->write_some(p + persisted, keep - persisted);
      }
      base_->flush();
      offset_ += persisted;
      crashed_ = true;
      record(log_, op, Kind::kCrash, offset_, persisted);
      throw InjectedCrash(path(), offset_);
    }
  }

  Rng rng = sim::stream_rng(config_.seed, sim::SeedStream::kInjectIoWrite, op);

  if (config_.transient_write_rate > 0 &&
      transient_streak_ < config_.max_transient_streak &&
      rng.bernoulli(config_.transient_write_rate)) {
    ++transient_streak_;
    record(log_, op, Kind::kTransientWrite, offset_, 0);
    throw io::IoError(path(), offset_, "injected transient write error",
                      /*transient=*/true);
  }
  transient_streak_ = 0;

  if (config_.torn_write_rate > 0 && n >= 2 &&
      rng.bernoulli(config_.torn_write_rate)) {
    // A sub-range of the buffer reaches disk as zeros, but the write
    // reports full success: the silent-corruption case.
    const auto lo = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    const auto hi = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo) + 1,
                        static_cast<std::int64_t>(n) - 1));
    scratch_.assign(static_cast<const std::byte*>(src),
                    static_cast<const std::byte*>(src) + n);
    std::fill(scratch_.begin() + static_cast<std::ptrdiff_t>(lo),
              scratch_.begin() + static_cast<std::ptrdiff_t>(hi) + 1,
              std::byte{0});
    std::size_t persisted = 0;
    while (persisted < n) {
      persisted += base_->write_some(scratch_.data() + persisted,
                                     n - persisted);
    }
    record(log_, op, Kind::kTornWrite, offset_, hi - lo + 1);
    offset_ += n;
    return n;
  }

  std::size_t to_write = n;
  if (config_.short_write_rate > 0 && n >= 2 &&
      rng.bernoulli(config_.short_write_rate)) {
    to_write = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(n) - 1));
    record(log_, op, Kind::kShortWrite, offset_, to_write);
  }

  const std::size_t wrote = base_->write_some(src, to_write);
  offset_ += wrote;
  return wrote;
}

void FaultyFile::flush() {
  if (crashed_) throw InjectedCrash(path(), offset_);
  base_->flush();
}

void FaultyFile::close() {
  if (crashed_) return;  // the crashed process never gets to close()
  base_->close();
}

// ---------------------------------------------------------------------------
// FaultyReadFile

FaultyReadFile::FaultyReadFile(std::unique_ptr<io::ReadableFile> base,
                               IoFaultConfig config, IoFaultLog* log)
    : base_(std::move(base)), config_(config), log_(log) {}

std::size_t FaultyReadFile::read_some(std::uint64_t offset, void* dst,
                                      std::size_t n) {
  if (n == 0) return 0;
  const std::uint64_t op = op_++;
  Rng rng = sim::stream_rng(config_.seed, sim::SeedStream::kInjectIoRead, op);

  if (config_.transient_read_rate > 0 &&
      transient_streak_ < config_.max_transient_streak &&
      rng.bernoulli(config_.transient_read_rate)) {
    ++transient_streak_;
    record(log_, op, Kind::kTransientRead, offset, 0);
    throw io::IoError(path(), offset, "injected transient read error",
                      /*transient=*/true);
  }
  transient_streak_ = 0;

  const std::size_t got = base_->read_some(offset, dst, n);

  if (config_.bit_flip_rate > 0 && got >= config_.bit_flip_min_read &&
      rng.bernoulli(config_.bit_flip_rate)) {
    const auto bit = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(got) * 8 - 1));
    static_cast<std::uint8_t*>(dst)[bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    record(log_, op, Kind::kBitFlip, offset, bit);
  }
  return got;
}

}  // namespace fa::inject
