// Deterministic fault injection for trace CSV exports — the adversarial
// half of the sanitization subsystem (src/trace/sanitize.h). Takes a clean
// on-disk export and a seed, and rewrites it with a configurable rate/mix
// of the sanitizer's defect taxonomy. Every defect decision is drawn from a
// counter-based per-row RNG stream (sim/seed_streams.h), so the corrupted
// output is byte-identical across runs and thread counts for a fixed seed:
// `sanitize(corrupt(clean, seed))` is a reproducible experiment, and the
// sanitization report can be diffed 1:1 against the injection report.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "src/trace/sanitize.h"

namespace fa::inject {

// Per-row injection probabilities, by defect class. Ticket-level classes
// apply per tickets.csv row, non-finite numerics per weekly_usage.csv row,
// and series truncation per server with a monitoring series. Rates of the
// classes sharing a target file must sum to at most 1.
struct DefectMix {
  double unparseable_field = 0.0;   // tickets.csv: subsystem made gibberish
  double non_finite_numeric = 0.0;  // weekly_usage.csv: cpu_util -> nan/inf
  double duplicate_id = 0.0;        // tickets.csv: row duplicated, same id
  double out_of_window = 0.0;       // tickets.csv: shifted past window end
  double end_before_open = 0.0;     // tickets.csv: opened/closed inverted
  double orphan_reference = 0.0;    // tickets.csv: crash ticket -> bogus server
  double truncated_series = 0.0;    // weekly_usage.csv: series tail removed
  double unknown_enum = 0.0;        // tickets.csv: true_class made gibberish

  // Every class at the same rate.
  static DefectMix uniform(double rate);

  double rate(trace::DefectClass cls) const;
  void set_rate(trace::DefectClass cls, double rate);
};

struct InjectionReport {
  std::array<std::size_t, trace::kDefectClassCount> injected{};

  std::size_t count(trace::DefectClass cls) const {
    return injected[static_cast<std::size_t>(cls)];
  }
  std::size_t total() const;
  std::string to_string() const;
  // Same "class,count" format as SanitizationReport::counts_csv, so the
  // two reports can be compared with a plain diff.
  std::string counts_csv() const;
};

// Copies the export at `in_dir` into `out_dir` (created if missing; must
// differ from `in_dir`), injecting defects at the configured rates. The
// input must be a clean strict-loadable export; throws fa::Error otherwise.
InjectionReport corrupt_database(const std::string& in_dir,
                                 const std::string& out_dir,
                                 std::uint64_t seed, const DefectMix& mix);

}  // namespace fa::inject
