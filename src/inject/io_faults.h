// Deterministic I/O fault injection — the storage-level sibling of the
// data-level corruptor (src/inject/corruptor.h). Wraps the WritableFile /
// ReadableFile syscall surface (src/util/io.h) used by ColumnarWriter,
// ChunkReader and CsvWriter, and injects the failure modes the paper's
// machines actually exhibit mid-operation:
//
//   - short writes            (write(2) persisting fewer bytes than asked)
//   - transient errors        (EINTR/EAGAIN-style; succeed when retried)
//   - torn writes             (a sub-range of the buffer hits disk as
//                              zeros, but the call reports success —
//                              silent corruption, caught only by the
//                              downstream chunk checksums)
//   - crash at byte N         (exact prefix persists, then the process
//                              "loses power": every later op throws)
//   - transient read errors and read-side bit flips
//
// Every decision is drawn from a counter-based per-operation RNG stream
// (sim/seed_streams.h: kInjectIoWrite / kInjectIoRead indexed by the file's
// op counter), so a fault schedule is a pure function of (seed, op index):
// bit-identical across runs and at any --threads, exactly like the
// corruptor. The IoFaultLog records what fired, in op order, and renders to
// CSV for diffing between runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/io.h"

namespace fa::inject {

// Probabilities are per operation (one write_some / read_some call).
// crash_at_byte is a file offset: the first write that would cross it
// persists exactly up to that byte, then throws InjectedCrash forever.
struct IoFaultConfig {
  std::uint64_t seed = 1;

  double short_write_rate = 0.0;
  double transient_write_rate = 0.0;
  double torn_write_rate = 0.0;
  std::int64_t crash_at_byte = -1;  // < 0: never crash

  double transient_read_rate = 0.0;
  double bit_flip_rate = 0.0;
  // Bit flips only hit reads of at least this many bytes, so the small
  // header/footer probes a reader issues at open() are spared and the flip
  // lands in chunk payloads where checksums must catch it.
  std::size_t bit_flip_min_read = 64;

  // Cap on consecutive transient failures for one logical operation, so a
  // retry policy with max_attempts > streak always eventually succeeds.
  int max_transient_streak = 2;
};

// Thrown by FaultyFile when the crash offset is reached: simulated power
// loss. Permanent (non-transient), so retry policies do not mask it.
class InjectedCrash : public io::IoError {
 public:
  InjectedCrash(const std::string& path, std::uint64_t offset)
      : io::IoError(path, offset, "injected crash (simulated power loss)") {}
};

struct IoFaultEvent {
  enum class Kind : std::uint8_t {
    kShortWrite,
    kTransientWrite,
    kTornWrite,
    kCrash,
    kTransientRead,
    kBitFlip,
  };

  std::uint64_t op = 0;      // per-file operation index
  Kind kind = Kind::kShortWrite;
  std::uint64_t offset = 0;  // file offset the operation targeted
  std::uint64_t detail = 0;  // bytes persisted / zeroed / flipped bit index

  static const char* kind_name(Kind kind);
};

struct IoFaultLog {
  std::vector<IoFaultEvent> events;

  // "op,kind,offset,detail" rows; byte-identical for a fixed seed at any
  // thread count, so two runs' schedules can be compared with plain diff.
  std::string to_csv() const;
};

// WritableFile decorator scheduling faults from the kInjectIoWrite stream.
// The wrapped file sees only the bytes that "really" hit disk, so a crash
// leaves exactly the pre-crash prefix on disk.
class FaultyFile : public io::WritableFile {
 public:
  FaultyFile(std::unique_ptr<io::WritableFile> base, IoFaultConfig config,
             IoFaultLog* log = nullptr);

  std::size_t write_some(const void* src, std::size_t n) override;
  void flush() override;
  void close() override;
  const std::string& path() const override { return base_->path(); }

 private:
  std::unique_ptr<io::WritableFile> base_;
  IoFaultConfig config_;
  IoFaultLog* log_;
  std::uint64_t op_ = 0;
  std::uint64_t offset_ = 0;  // bytes durably persisted so far
  int transient_streak_ = 0;
  bool crashed_ = false;
  std::vector<std::byte> scratch_;  // torn-write staging buffer
};

// ReadableFile decorator: transient read errors and payload bit flips from
// the kInjectIoRead stream. Flips corrupt the bytes returned to the caller
// (the file itself is untouched), modeling media/DMA corruption that only
// checksum verification can catch.
class FaultyReadFile : public io::ReadableFile {
 public:
  FaultyReadFile(std::unique_ptr<io::ReadableFile> base, IoFaultConfig config,
                 IoFaultLog* log = nullptr);

  std::size_t read_some(std::uint64_t offset, void* dst,
                        std::size_t n) override;
  std::uint64_t size() const override { return base_->size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  std::unique_ptr<io::ReadableFile> base_;
  IoFaultConfig config_;
  IoFaultLog* log_;
  std::uint64_t op_ = 0;
  int transient_streak_ = 0;
};

}  // namespace fa::inject
