// Paper-vs-measured comparison formatting shared by the bench binaries:
// every experiment prints rows of (metric, paper value, measured value) plus
// a PASS/CHECK verdict on the qualitative "shape" criteria.
#pragma once

#include <string>
#include <vector>

namespace fa::paperref {

class Comparison {
 public:
  // `title` e.g. "Table V -- random vs recurrent failure probabilities".
  explicit Comparison(std::string title);

  void add(const std::string& metric, double paper, double measured,
           int precision = 4);
  void add_text(const std::string& metric, const std::string& paper,
                const std::string& measured);

  // Records a qualitative shape check ("PM rate > VM rate", ...).
  void check(const std::string& description, bool passed);

  // Renders the table, the checks, and the overall verdict.
  std::string render() const;
  bool all_checks_passed() const;
  int failed_checks() const;

 private:
  struct Row {
    std::string metric;
    std::string paper;
    std::string measured;
  };
  struct Check {
    std::string description;
    bool passed;
  };
  std::string title_;
  std::vector<Row> rows_;
  std::vector<Check> checks_;
};

}  // namespace fa::paperref
