#include "src/paper/comparison.h"

#include <algorithm>

#include "src/util/strings.h"

namespace fa::paperref {

Comparison::Comparison(std::string title) : title_(std::move(title)) {}

void Comparison::add(const std::string& metric, double paper, double measured,
                     int precision) {
  rows_.push_back({metric, format_double(paper, precision),
                   format_double(measured, precision)});
}

void Comparison::add_text(const std::string& metric, const std::string& paper,
                          const std::string& measured) {
  rows_.push_back({metric, paper, measured});
}

void Comparison::check(const std::string& description, bool passed) {
  checks_.push_back({description, passed});
}

bool Comparison::all_checks_passed() const {
  return failed_checks() == 0;
}

int Comparison::failed_checks() const {
  int failed = 0;
  for (const Check& c : checks_) failed += !c.passed;
  return failed;
}

std::string Comparison::render() const {
  std::string out = "== " + title_ + " ==\n";

  std::size_t w_metric = 6, w_paper = 5, w_measured = 8;
  for (const Row& r : rows_) {
    w_metric = std::max(w_metric, r.metric.size());
    w_paper = std::max(w_paper, r.paper.size());
    w_measured = std::max(w_measured, r.measured.size());
  }
  const auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  out += "  " + pad("metric", w_metric) + "  " + pad("paper", w_paper) +
         "  " + pad("measured", w_measured) + "\n";
  for (const Row& r : rows_) {
    out += "  " + pad(r.metric, w_metric) + "  " + pad(r.paper, w_paper) +
           "  " + pad(r.measured, w_measured) + "\n";
  }
  if (!checks_.empty()) {
    out += "  shape checks:\n";
    for (const Check& c : checks_) {
      out += std::string("    [") + (c.passed ? "PASS" : "CHECK") + "] " +
             c.description + "\n";
    }
    out += all_checks_passed()
               ? "  VERDICT: all shape criteria reproduced\n"
               : "  VERDICT: " + std::to_string(failed_checks()) +
                     " shape criteria deviate (see EXPERIMENTS.md)\n";
  }
  return out;
}

}  // namespace fa::paperref
