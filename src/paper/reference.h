// Every number the paper reports, as typed constants. Used by the simulator
// calibration tests and by the bench binaries to print paper-vs-measured
// comparisons. Values marked "approx" are read off figures rather than
// stated in text/tables.
#pragma once

#include <array>

#include "src/trace/types.h"

namespace fa::paperref {

// ---- Table II: dataset statistics ----
struct SystemStats {
  int pms;
  int vms;
  int all_tickets;
  double crash_ticket_fraction;  // of all tickets
  double crash_pm_share;         // of crash tickets
  double crash_vm_share;
};

inline constexpr std::array<SystemStats, trace::kSubsystemCount> kTable2 = {{
    {463, 1320, 7079, 0.069, 0.69, 0.31},
    {2025, 52, 27577, 0.0085, 1.00, 0.00},
    {1114, 1971, 50157, 0.02, 0.59, 0.41},
    {717, 313, 8382, 0.013, 0.63, 0.37},
    {810, 636, 25940, 0.033, 0.57, 0.43},
}};

inline constexpr int kTotalPms = 5129;
inline constexpr int kTotalVms = 4292;
inline constexpr int kTotalCrashTickets = 2759;

// ---- Fig. 1 / Section III-A: "other" (unclassifiable) ticket shares ----
inline constexpr double kOtherShareOverall = 0.53;
inline constexpr std::array<double, trace::kSubsystemCount> kOtherShare = {
    0.35, 0.68, 0.68, 0.61, 0.29};
// Share of all crash tickets attributed to software + reboot together.
inline constexpr double kSoftwareRebootShare = 0.31;
// k-means classification accuracy against manual labels.
inline constexpr double kClassificationAccuracy = 0.87;

// ---- Fig. 2: weekly failure rates (approx from figure) ----
inline constexpr double kWeeklyRatePmAll = 0.005;
inline constexpr double kWeeklyRateVmAll = 0.003;

// ---- Fig. 3: inter-failure times ----
// Both PM and VM inter-failure times are best fit by Gamma; VM mean is
// stated in the text.
inline constexpr double kVmInterfailureMeanDays = 37.22;
// Roughly 60% of failing VMs fail only once (Section IV-B).
inline constexpr double kVmSingleFailureShare = 0.60;

// ---- Table III: inter-failure times by class, days ----
// Order: hardware, network, power, reboot, software, other.
struct MeanMedian {
  double mean;
  double median;
};
inline constexpr std::array<MeanMedian, 6> kTable3Operator = {{
    {9.21, 3.61},
    {10.27, 5.22},
    {7.60, 1.00},
    {3.63, 0.51},
    {2.84, 0.32},
    {1.12, 0.24},
}};
inline constexpr std::array<MeanMedian, 6> kTable3SingleServer = {{
    {59.46, 39.85},
    {65.68, 45.22},
    {57.60, 10.03},
    {54.59, 26.94},
    {21.58, 8.00},
    {30.01, 8.99},
}};

// ---- Fig. 4: repair times (hours), LogNormal best fit ----
inline constexpr double kRepairMeanPmHours = 38.5;
inline constexpr double kRepairMeanVmHours = 19.6;
// ~35% of VM failures are unexpected reboots (explains the shorter repairs).
inline constexpr double kVmRebootShare = 0.35;

// ---- Table IV: repair times by class, hours (hw, net, power, reboot, sw) --
inline constexpr std::array<MeanMedian, 5> kTable4 = {{
    {80.10, 8.28},
    {67.60, 8.97},
    {12.17, 0.83},
    {18.03, 2.27},
    {30.00, 22.37},
}};

// ---- Fig. 5: recurrent failure probabilities (approx from figure) ----
inline constexpr double kRecurrentDayPm = 0.13;
inline constexpr double kRecurrentWeekPm = 0.22;   // also Table V
inline constexpr double kRecurrentMonthPm = 0.31;
inline constexpr double kRecurrentDayVm = 0.09;
inline constexpr double kRecurrentWeekVm = 0.16;   // also Table V
inline constexpr double kRecurrentMonthVm = 0.24;

// ---- Table V: weekly random vs recurrent probabilities ----
struct RandomRecurrent {
  double random;
  double recurrent;
  double ratio;  // as printed in the paper
};
// Index 0 = All, then Sys I..V.
inline constexpr std::array<RandomRecurrent, 6> kTable5Pm = {{
    {0.0062, 0.22, 35.5},
    {0.015, 0.16, 10.7},
    {0.0020, 0.09, 45.0},
    {0.0090, 0.33, 36.7},
    {0.0028, 0.07, 25.0},
    {0.0086, 0.19, 10.5},
}};
inline constexpr std::array<RandomRecurrent, 6> kTable5Vm = {{
    {0.0038, 0.16, 42.1},
    {0.0023, 0.11, 47.8},
    {0.0, 0.0, 0.0},
    {0.0030, 0.20, 66.7},
    {0.0032, 0.10, 31.3},
    {0.0094, 0.14, 16.7},
}};

// ---- Table VI: % incidents involving 0 / 1 / >= 2 servers ----
struct IncidentShare {
  double zero;
  double one;
  double two_or_more;
};
inline constexpr IncidentShare kTable6All = {0.0, 0.78, 0.22};
inline constexpr IncidentShare kTable6PmOnly = {0.62, 0.30, 0.08};
inline constexpr IncidentShare kTable6VmOnly = {0.32, 0.57, 0.11};
// Derived dependency fractions quoted in the text.
inline constexpr double kVmDependencyFraction = 0.26;  // 11/(57+11) approx
inline constexpr double kPmDependencyFraction = 0.16;  // 8/(30+8) approx

// ---- Table VII: servers per incident by class (hw, net, power, reboot, sw)
struct IncidentSize {
  double mean;
  int max;
};
inline constexpr std::array<IncidentSize, 5> kTable7 = {{
    {1.2, 10},
    {1.5, 9},
    {2.7, 21},
    {1.1, 15},
    {1.7, 10},
}};
inline constexpr IncidentSize kTable7Other = {1.46, 34};

// ---- Fig. 6: VM age ----
// ~75% of VMs have an observable creation date.
inline constexpr double kVmObservableAgeShare = 0.75;

// ---- Fig. 7: capacity impact factors (max/min average failure rate) ----
inline constexpr double kPmCpuFactor = 5.5;
inline constexpr double kVmCpuFactor = 2.5;
inline constexpr double kPmMemFactor = 5.0;
inline constexpr double kVmMemFactor = 3.0;
inline constexpr double kVmDiskCountFactor = 10.0;
// VM disk capacity: rate rises from 0.00029 (8 GB) to ~0.0025 (>= 32 GB).
inline constexpr double kVmDiskCapLowRate = 0.00029;
inline constexpr double kVmDiskCapHighRate = 0.0025;

// ---- Fig. 10: on/off population shares ----
inline constexpr double kOnOffAtMostOncePerMonth = 0.60;
inline constexpr double kOnOffEightPerMonth = 0.14;

}  // namespace fa::paperref
