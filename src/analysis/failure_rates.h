// Failure-rate computation (paper Sections III-B and IV-A).
//
// The failure rate of a bucket (day/week/month) is the number of failures in
// that bucket divided by the number of servers in scope; Fig. 2 reports the
// mean weekly rate with 25th/75th percentile whiskers.
#pragma once

#include <optional>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/trace/database.h"

namespace fa::analysis {

enum class Granularity { kDaily, kWeekly, kMonthly };

// Scope filter: machine type and/or subsystem (nullopt = all).
struct Scope {
  std::optional<trace::MachineType> type;
  std::optional<trace::Subsystem> subsystem;

  bool matches(const trace::ServerRecord& s) const {
    return (!type || s.type == *type) &&
           (!subsystem || s.subsystem == *subsystem);
  }
};

// Per-bucket failure rates over the observation year for the given scope.
// `failures` must be crash tickets; tickets on out-of-scope servers are
// skipped. Returns one rate per time bucket.
std::vector<double> failure_rate_series(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    Granularity granularity);

// Mean + percentile summary of the per-bucket rates (the Fig. 2 bars).
stats::Summary failure_rate_summary(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    Granularity granularity);

// Number of in-scope servers.
std::size_t scope_server_count(const trace::TraceDatabase& db,
                               const Scope& scope);

}  // namespace fa::analysis
