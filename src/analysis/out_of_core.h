// Chunk-at-a-time analysis over columnar trace files.
//
// The in-memory pipeline (pipeline.h) joins whole tables; this path streams
// a columnar file chunk by chunk, keeping O(one chunk + one byte per
// server) of state, so Table II-class populations and Fig. 2-class failure
// rates compute on fleets far larger than RAM. Results are checked against
// the in-memory counterpart in tests and bench/perf_toolkit.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "src/trace/columnar_io.h"
#include "src/trace/database.h"

namespace fa::analysis {

// Calls fn(view) for every chunk of `table`, in file order. With a
// non-null `report` the traversal is lenient: damaged chunks (checksum
// mismatch, truncation) are skipped and recorded instead of throwing.
void for_each_chunk(
    const trace::ChunkReader& reader, trace::columnar::Table table,
    const std::function<void(const trace::columnar::ChunkView&)>& fn,
    trace::DegradedReadReport* report = nullptr);

// Aggregates for one (machine type, subsystem) stratum.
struct ScopeSummary {
  std::uint64_t servers = 0;
  std::uint64_t crash_tickets = 0;  // opened within the ticket window
  // Fig. 2-style mean weekly failure rate: crash tickets in the window
  // divided by (servers x weeks). 0 when the stratum is empty.
  double mean_weekly_failure_rate = 0.0;

  bool operator==(const ScopeSummary&) const = default;
};

struct OutOfCoreSummary {
  std::uint64_t servers = 0;
  std::uint64_t tickets = 0;
  std::uint64_t crash_tickets = 0;
  std::uint64_t weekly_usage_rows = 0;
  std::uint64_t power_events = 0;
  std::uint64_t snapshots = 0;
  // Indexed [machine type][subsystem]: the Table II population layout.
  std::array<std::array<ScopeSummary, trace::kSubsystemCount>,
             trace::kMachineTypeCount>
      by_scope{};
  // Per machine type over all subsystems (the Fig. 2 "All" bars).
  std::array<ScopeSummary, trace::kMachineTypeCount> by_type{};

  bool operator==(const OutOfCoreSummary&) const = default;
};

// Streams `path` chunk-at-a-time: one pass over the server chunks builds a
// one-byte-per-server scope index, one pass over the ticket chunks counts
// crash tickets per stratum; monitoring-table volumes come straight from
// the footer. Peak memory is one chunk plus the scope index — independent
// of fleet size. With a non-null `report` the read degrades gracefully:
// damaged chunks are skipped (skipped server chunks keep their positional
// slots in the scope index, so later server ids stay aligned) and the
// summary covers only the rows actually read — check report->degraded()
// before treating the result as complete.
OutOfCoreSummary summarize_columnar(const std::string& path,
                                    bool use_mmap = true,
                                    trace::DegradedReadReport* report =
                                        nullptr);

// The same aggregates from a finalized in-memory database, for
// equivalence checks against the streaming path.
OutOfCoreSummary summarize_database(const trace::TraceDatabase& db);

}  // namespace fa::analysis
