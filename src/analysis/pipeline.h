// End-to-end analysis pipeline: crash extraction + ticket classification run
// once over a trace database, with the derived lookups every downstream
// analysis (and every bench binary) consumes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/classification.h"
#include "src/analysis/interfailure.h"
#include "src/trace/database.h"
#include "src/trace/sanitize.h"

namespace fa::analysis {

class AnalysisPipeline {
 public:
  // Runs crash extraction and classification; `seed` controls the k-means
  // restarts and the labeled-subset draw.
  explicit AnalysisPipeline(const trace::TraceDatabase& db,
                            std::uint64_t seed = 7,
                            ClassifierOptions options = {});

  const trace::TraceDatabase& db() const { return *db_; }
  // Extracted crash tickets (the paper's "server failures").
  const std::vector<const trace::Ticket*>& failures() const {
    return failures_;
  }
  const ClassificationResult& classification() const {
    return classification_;
  }

  // Predicted class of a crash ticket.
  trace::FailureClass class_of(const trace::Ticket& ticket) const;
  // The same, as a reusable lookup for the analysis APIs.
  ClassLookup class_lookup() const;

 private:
  const trace::TraceDatabase* db_;
  std::vector<const trace::Ticket*> failures_;
  ClassificationResult classification_;
  std::unordered_map<trace::TicketId, trace::FailureClass> predicted_;
};

// Result of the lenient (sanitizing) analysis entry point: the cleaned
// database, the pipeline run over it, and the sanitization accounting —
// in particular how many ticket rows never reached crash extraction /
// classification because they were quarantined or dropped by repair rules.
struct LenientAnalysisResult {
  std::shared_ptr<const trace::TraceDatabase> db;
  std::shared_ptr<const AnalysisPipeline> pipeline;
  trace::SanitizationReport report;
  // Ticket rows present in tickets.csv that were dropped before the
  // pipeline saw them (quarantines + dedup/orphan drops + cascades).
  std::size_t tickets_dropped = 0;
};

// Loads `directory` through trace::sanitize_database instead of the strict
// loader, then runs the standard pipeline on the repaired database. Strict
// loading stays the default everywhere else; call this for exports known
// (or suspected) to be dirty.
LenientAnalysisResult analyze_lenient(const std::string& directory,
                                      std::uint64_t seed = 7,
                                      ClassifierOptions options = {});

}  // namespace fa::analysis
