#include "src/analysis/recurrence.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/util/error.h"

namespace fa::analysis {

double recurrent_probability(const trace::TraceDatabase& db,
                             std::span<const trace::Ticket* const> failures,
                             const Scope& scope, Duration window) {
  require(window > 0, "recurrent_probability: window must be positive");
  std::unordered_map<trace::ServerId, std::vector<TimePoint>> by_server;
  for (const trace::Ticket* t : failures) {
    if (!scope.matches(db.server(t->server))) continue;
    by_server[t->server].push_back(t->opened);
  }
  const TimePoint end = db.window().end;
  std::size_t eligible = 0;
  std::size_t recurred = 0;
  for (auto& [id, times] : by_server) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] + window > end) break;  // censored
      ++eligible;
      if (i + 1 < times.size() && times[i + 1] - times[i] <= window) {
        ++recurred;
      }
    }
  }
  if (eligible == 0) return 0.0;
  return static_cast<double>(recurred) / static_cast<double>(eligible);
}

double random_failure_probability(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    Granularity granularity) {
  const std::size_t servers = scope_server_count(db, scope);
  if (servers == 0) return 0.0;
  const ObservationWindow& w = db.window();
  const int buckets = granularity == Granularity::kDaily ? w.day_count()
                      : granularity == Granularity::kWeekly
                          ? w.week_count()
                          : w.month_count();
  std::vector<std::unordered_set<trace::ServerId>> failing(
      static_cast<std::size_t>(buckets));
  for (const trace::Ticket* t : failures) {
    if (!scope.matches(db.server(t->server))) continue;
    const int b = granularity == Granularity::kDaily ? w.day_index(t->opened)
                  : granularity == Granularity::kWeekly
                      ? w.week_index(t->opened)
                      : w.month_index(t->opened);
    if (b >= 0) failing[static_cast<std::size_t>(b)].insert(t->server);
  }
  double total = 0.0;
  for (const auto& set : failing) {
    total += static_cast<double>(set.size()) / static_cast<double>(servers);
  }
  return total / static_cast<double>(buckets);
}

double recurrence_ratio(const trace::TraceDatabase& db,
                        std::span<const trace::Ticket* const> failures,
                        const Scope& scope) {
  const double random =
      random_failure_probability(db, failures, scope, Granularity::kWeekly);
  if (random <= 0.0) return 0.0;
  return recurrent_probability(db, failures, scope, kMinutesPerWeek) / random;
}

}  // namespace fa::analysis
