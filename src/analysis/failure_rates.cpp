#include "src/analysis/failure_rates.h"

#include "src/util/error.h"

namespace fa::analysis {
namespace {

int bucket_count(const ObservationWindow& w, Granularity g) {
  switch (g) {
    case Granularity::kDaily:
      return w.day_count();
    case Granularity::kWeekly:
      return w.week_count();
    case Granularity::kMonthly:
      return w.month_count();
  }
  throw Error("bucket_count: invalid granularity");
}

int bucket_index(const ObservationWindow& w, Granularity g, TimePoint t) {
  switch (g) {
    case Granularity::kDaily:
      return w.day_index(t);
    case Granularity::kWeekly:
      return w.week_index(t);
    case Granularity::kMonthly:
      return w.month_index(t);
  }
  throw Error("bucket_index: invalid granularity");
}

}  // namespace

std::size_t scope_server_count(const trace::TraceDatabase& db,
                               const Scope& scope) {
  std::size_t n = 0;
  for (const trace::ServerRecord& s : db.servers()) n += scope.matches(s);
  return n;
}

std::vector<double> failure_rate_series(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    Granularity granularity) {
  const ObservationWindow& w = db.window();
  const int buckets = bucket_count(w, granularity);
  std::vector<double> counts(static_cast<std::size_t>(buckets), 0.0);
  for (const trace::Ticket* t : failures) {
    require(t->is_crash, "failure_rate_series: non-crash ticket in failures");
    if (!scope.matches(db.server(t->server))) continue;
    const int b = bucket_index(w, granularity, t->opened);
    if (b >= 0) counts[static_cast<std::size_t>(b)] += 1.0;
  }
  const std::size_t servers = scope_server_count(db, scope);
  require(servers > 0, "failure_rate_series: empty scope");
  for (double& c : counts) c /= static_cast<double>(servers);
  return counts;
}

stats::Summary failure_rate_summary(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    Granularity granularity) {
  const auto series = failure_rate_series(db, failures, scope, granularity);
  return stats::summarize(series);
}

}  // namespace fa::analysis
