// Process-wide memoization of the two expensive pipeline artifacts:
//
//   simulate(config)            -> TraceDatabase      (minutes of CPU at paper
//                                                      scale, re-run by every
//                                                      bench binary before)
//   (db, seed, options)         -> AnalysisPipeline   (crash extraction +
//                                                      k-means classification)
//
// Keys are exact: the database key is SimulationConfig::fingerprint() (a
// bit-pattern hash over every field including the seed), the pipeline key
// combines the owning database's key with the classifier seed and options.
// Artifacts are returned as shared_ptr-to-const, so cached objects are
// immutable and safe to share across threads; cache lookups are serialized
// by a mutex, and artifact construction happens outside of it (concurrent
// misses on the same key build once — the losers adopt the winner's value).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/analysis/pipeline.h"
#include "src/sim/config.h"
#include "src/trace/database.h"

namespace fa::analysis {

class ArtifactCache {
 public:
  // The shared process-wide instance (what bench/tools use).
  static ArtifactCache& global();

  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  // simulate(config), memoized on config.fingerprint().
  std::shared_ptr<const trace::TraceDatabase> database(
      const sim::SimulationConfig& config);

  // AnalysisPipeline over database(config), memoized on
  // (config.fingerprint(), seed, options).
  std::shared_ptr<const AnalysisPipeline> pipeline(
      const sim::SimulationConfig& config, std::uint64_t seed = 7,
      const ClassifierOptions& options = {});

  // AnalysisPipeline over an already-built database that is not itself
  // cache-managed (e.g. loaded from CSV); memoized on the database's
  // address, which the returned pipeline keeps alive via shared ownership.
  std::shared_ptr<const AnalysisPipeline> pipeline(
      std::shared_ptr<const trace::TraceDatabase> db, std::uint64_t seed = 7,
      const ClassifierOptions& options = {});

  // When disabled, every call rebuilds (the --no-cache flag surface).
  void set_enabled(bool enabled);
  bool enabled() const;

  void clear();

  // Per-artifact-kind accounting. `builds` counts actual constructions;
  // it can exceed the number of cached entries when concurrent misses race
  // (losers build too, then adopt the winner's object).
  struct KindStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t builds = 0;
  };
  struct Stats {
    KindStats database;
    KindStats pipeline;
    std::size_t hits() const { return database.hits + pipeline.hits; }
    std::size_t misses() const { return database.misses + pipeline.misses; }
    std::size_t builds() const { return database.builds + pipeline.builds; }
  };
  Stats stats() const;

  // Observability for tests and perf tooling (totals across kinds).
  std::size_t hits() const;
  std::size_t misses() const;

 private:
  static std::uint64_t pipeline_key(std::uint64_t db_key, std::uint64_t seed,
                                    const ClassifierOptions& options);

  mutable std::mutex mutex_;
  bool enabled_ = true;
  Stats stats_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const trace::TraceDatabase>>
      databases_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const AnalysisPipeline>>
      pipelines_;
};

// A pipeline that shares ownership of the database it analyzes; used for
// the address-keyed overload and by callers that need both artifacts.
struct AnalysisContext {
  std::shared_ptr<const trace::TraceDatabase> db;
  std::shared_ptr<const AnalysisPipeline> pipeline;
};

// One-call helper: both artifacts for a config, via the global cache.
AnalysisContext cached_context(const sim::SimulationConfig& config,
                               std::uint64_t seed = 7,
                               const ClassifierOptions& options = {});

}  // namespace fa::analysis
