// Plain-text table rendering for the experiment reports printed by the
// bench binaries and examples.
#pragma once

#include <string>
#include <vector>

namespace fa::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Row length must match the header length.
  void add_row(std::vector<std::string> row);

  // Renders with column alignment and a header separator.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fa::analysis
