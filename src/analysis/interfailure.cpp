#include "src/analysis/interfailure.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/error.h"

namespace fa::analysis {
namespace {

// Failure timestamps grouped per in-scope server, each list sorted.
std::unordered_map<trace::ServerId, std::vector<TimePoint>> times_by_server(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    const trace::FailureClass* cls, const ClassLookup* class_of) {
  std::unordered_map<trace::ServerId, std::vector<TimePoint>> by_server;
  for (const trace::Ticket* t : failures) {
    require(t->is_crash, "interfailure: non-crash ticket");
    if (!scope.matches(db.server(t->server))) continue;
    if (cls != nullptr && (*class_of)(*t) != *cls) continue;
    by_server[t->server].push_back(t->opened);
  }
  for (auto& [id, times] : by_server) std::sort(times.begin(), times.end());
  return by_server;
}

std::vector<double> gaps_from(
    const std::unordered_map<trace::ServerId, std::vector<TimePoint>>&
        by_server) {
  std::vector<double> gaps;
  for (const auto& [id, times] : by_server) {
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(to_days(times[i] - times[i - 1]));
    }
  }
  std::sort(gaps.begin(), gaps.end());
  return gaps;
}

}  // namespace

std::vector<double> per_server_interfailure_days(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope) {
  return gaps_from(times_by_server(db, failures, scope, nullptr, nullptr));
}

std::vector<double> per_server_interfailure_days(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    trace::FailureClass cls, const ClassLookup& class_of) {
  return gaps_from(times_by_server(db, failures, scope, &cls, &class_of));
}

std::vector<double> operator_interfailure_days(
    std::span<const trace::Ticket* const> failures, trace::FailureClass cls,
    const ClassLookup& class_of) {
  std::vector<TimePoint> times;
  for (const trace::Ticket* t : failures) {
    if (class_of(*t) == cls) times.push_back(t->opened);
  }
  std::sort(times.begin(), times.end());
  std::vector<double> gaps;
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(to_days(times[i] - times[i - 1]));
  }
  return gaps;
}

FailureCensus failure_census(const trace::TraceDatabase& db,
                             std::span<const trace::Ticket* const> failures,
                             const Scope& scope) {
  FailureCensus census;
  census.servers = scope_server_count(db, scope);
  const auto by_server =
      times_by_server(db, failures, scope, nullptr, nullptr);
  census.failing_servers = by_server.size();
  for (const auto& [id, times] : by_server) {
    census.single_failure_servers += times.size() == 1;
  }
  return census;
}

}  // namespace fa::analysis
