// Binned covariate analysis (paper Section V, Figs. 7 and 8): weekly failure
// rates of servers bucketed by a resource-capacity attribute, or of
// server-weeks bucketed by a weekly resource-usage value.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/analysis/failure_rates.h"
#include "src/stats/descriptive.h"
#include "src/stats/histogram.h"
#include "src/trace/database.h"

namespace fa::analysis {

// Extracts the attribute from a server's configuration, or nullopt when the
// attribute is not recorded for this machine (e.g. PM disk data).
using CapacityAttribute =
    std::function<std::optional<double>(const trace::ServerRecord&)>;

// Extracts the usage value from a weekly monitoring row.
using UsageAttribute =
    std::function<std::optional<double>(const trace::WeeklyUsage&)>;

struct BinnedRates {
  stats::BinSpec spec;
  // One entry per bin.
  std::vector<std::size_t> population;      // servers (capacity) or
                                            // server-weeks (usage)
  std::vector<std::size_t> failure_count;   // failures landing in the bin
  std::vector<double> overall_rate;         // failures / (population-weeks)
  // Weekly rate summaries (the mean + p25/p75 bars of Figs. 7-8); bins with
  // no population have count == 0.
  std::vector<stats::Summary> weekly_summary;

  // Ratio of the largest to the smallest positive overall rate — the paper's
  // "factor of NX" impact statements. Returns 0 when fewer than two bins
  // have positive rates.
  double max_min_rate_factor() const;
};

// Failure rate vs. a static configuration attribute. Servers without the
// attribute are excluded from both numerator and denominator.
BinnedRates capacity_binned_rates(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    const CapacityAttribute& attribute, stats::BinSpec spec);

// Failure rate vs. a weekly usage value: each server-week lands in the bin
// of its recorded usage that week; failures are attributed to the bin of the
// (server, week) they occurred in.
BinnedRates usage_binned_rates(const trace::TraceDatabase& db,
                               std::span<const trace::Ticket* const> failures,
                               const Scope& scope,
                               const UsageAttribute& attribute,
                               stats::BinSpec spec);

}  // namespace fa::analysis
