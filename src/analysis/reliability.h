// Reliability metrics derived from the failure trace: MTBF, MTTR,
// annualized failure rates, steady-state availability, and the fitted
// distributions needed for reliability modelling (the paper's Section IV
// motivates exactly this use: "understanding the inter-failure times is
// crucial for reliability modeling and the design of fault-tolerant
// systems").
#pragma once

#include <optional>

#include "src/analysis/failure_rates.h"
#include "src/stats/fitting.h"
#include "src/trace/database.h"

namespace fa::analysis {

struct ReliabilityReport {
  std::size_t servers = 0;
  std::size_t failures = 0;

  // Exposure-based MTBF: total in-scope server-uptime divided by the number
  // of failures (well-defined even when most servers never fail).
  double mtbf_days = 0.0;
  // Mean per-server gap between consecutive failures (only servers with
  // >= 2 failures contribute); nullopt when no server failed twice.
  std::optional<double> mean_interfailure_days;
  // Mean repair (down) time.
  double mttr_hours = 0.0;
  // Failures per server-year.
  double annualized_failure_rate = 0.0;
  // Steady-state availability MTBF / (MTBF + MTTR).
  double availability = 0.0;

  // Best-fit distributions (by log-likelihood) for per-server inter-failure
  // days and repair hours; empty optionals when the samples are too small.
  std::optional<stats::FitResult> interfailure_fit;
  std::optional<stats::FitResult> repair_fit;
};

// Computes the full report for the in-scope machines. `failures` are crash
// tickets (e.g. AnalysisPipeline::failures()).
ReliabilityReport reliability_report(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope);

// P(a server survives `days` without failing), from the exposure-based
// failure rate under a Poisson approximation.
double survival_probability(const ReliabilityReport& report, double days);

}  // namespace fa::analysis
