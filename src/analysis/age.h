// VM age analysis (paper Section IV-F, Fig. 6).
//
// A VM's creation date is approximated by its first occurrence in the
// monitoring DB; VMs whose first record coincides with the DB start are
// left-censored and excluded (the paper keeps ~75% of VMs this way). The
// question is whether failures-vs-age follows a bathtub (they do not: the
// CDF is near-uniform with a weak positive trend).
#pragma once

#include <span>
#include <vector>

#include "src/trace/database.h"

namespace fa::analysis {

struct AgeAnalysis {
  // Share of the VM population with an observable (non-censored) age.
  double observable_fraction = 0.0;
  // Age in days at each failure of an observable VM.
  std::vector<double> failure_age_days;
  // KS distance between the age CDF and the uniform distribution on
  // [0, max age]: small distance = the paper's "close to diagonal".
  double ks_distance_to_uniform = 0.0;
  // Least-squares slope of binned failure counts vs. age (per 30-day bin,
  // counts normalized to mean 1); positive = failures increase with age.
  double pdf_trend_slope = 0.0;
  // Binned (30-day) failure counts, normalized to mean 1.
  std::vector<double> binned_pdf;
};

AgeAnalysis analyze_vm_age(const trace::TraceDatabase& db,
                           std::span<const trace::Ticket* const> failures);

}  // namespace fa::analysis
