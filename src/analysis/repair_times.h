// Repair-time analysis (paper Section IV-C, Fig. 4, Table IV): repair time
// is the difference between ticket issuing and closing time, in hours.
#pragma once

#include <span>
#include <vector>

#include "src/analysis/failure_rates.h"
#include "src/analysis/interfailure.h"
#include "src/trace/database.h"

namespace fa::analysis {

// Repair hours for in-scope crash tickets.
std::vector<double> repair_hours(const trace::TraceDatabase& db,
                                 std::span<const trace::Ticket* const> failures,
                                 const Scope& scope);

// Repair hours restricted to one (predicted) failure class.
std::vector<double> repair_hours(const trace::TraceDatabase& db,
                                 std::span<const trace::Ticket* const> failures,
                                 const Scope& scope, trace::FailureClass cls,
                                 const ClassLookup& class_of);

}  // namespace fa::analysis
