#include "src/analysis/management.h"

namespace fa::analysis {

std::optional<double> average_consolidation(const trace::TraceDatabase& db,
                                            trace::ServerId id) {
  const auto snapshots = db.snapshots_for(id);
  if (snapshots.empty()) return std::nullopt;
  double total = 0.0;
  for (const trace::MonthlySnapshot& s : snapshots) {
    total += static_cast<double>(s.consolidation);
  }
  return total / static_cast<double>(snapshots.size());
}

std::optional<double> measured_onoff_per_month(const trace::TraceDatabase& db,
                                               trace::ServerId id) {
  if (db.server(id).type != trace::MachineType::kVirtual) return std::nullopt;
  const ObservationWindow& window = db.onoff_tracking();
  std::size_t off_transitions = 0;
  for (const trace::PowerEvent& e : db.power_events_for(id)) {
    if (window.contains(e.at) && !e.powered_on) ++off_transitions;
  }
  const double months =
      static_cast<double>(window.length()) / kMinutesPerMonth;
  return static_cast<double>(off_transitions) / months;
}

std::optional<double> measured_onoff_from_series(
    const trace::TraceDatabase& db, trace::ServerId id) {
  if (db.server(id).type != trace::MachineType::kVirtual) return std::nullopt;
  const ObservationWindow& window = db.onoff_tracking();
  const auto series = db.power_series_for(id, window);
  std::size_t off_transitions = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    off_transitions += series[i - 1] && !series[i];
  }
  const double months =
      static_cast<double>(window.length()) / kMinutesPerMonth;
  return static_cast<double>(off_transitions) / months;
}

BinnedRates consolidation_binned_rates(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures) {
  // Power-of-two bins 1,2,3-4,5-8,9-16,17-32, like the Fig. 9 x-axis.
  auto spec = stats::BinSpec::from_edges({1, 2, 3, 5, 9, 17, 33});
  Scope scope{trace::MachineType::kVirtual, std::nullopt};
  return capacity_binned_rates(
      db, failures, scope,
      [&db](const trace::ServerRecord& s) {
        return average_consolidation(db, s.id);
      },
      std::move(spec));
}

BinnedRates onoff_binned_rates(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures) {
  // Bins: 0, ~1, ~2, ~4, and everything beyond (Poisson sampling of a
  // nominal 8/month rate over two months can measure well above 8).
  auto spec = stats::BinSpec::from_edges({0.0, 0.25, 1.25, 2.25, 4.5, 25.0});
  Scope scope{trace::MachineType::kVirtual, std::nullopt};
  return capacity_binned_rates(
      db, failures, scope,
      [&db](const trace::ServerRecord& s) {
        return measured_onoff_per_month(db, s.id);
      },
      std::move(spec));
}

}  // namespace fa::analysis
