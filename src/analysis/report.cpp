#include "src/analysis/report.h"

#include <algorithm>

#include "src/util/error.h"

namespace fa::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == headers_.size(),
          "TextTable::add_row: column count mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      line += i == 0 ? "| " : " | ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep = "|";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace fa::analysis
