// Spatial (in)dependency of failures (paper Section IV-E, Tables VI/VII):
// groups crash tickets by failure incident and studies how many distinct
// servers — and of which machine type — each incident affects.
#pragma once

#include <array>
#include <span>

#include "src/analysis/interfailure.h"
#include "src/trace/database.h"

namespace fa::analysis {

struct IncidentTypeBreakdown {
  // Fractions of incidents involving zero, exactly one, and >= 2 servers of
  // the given view (all servers / PMs only / VMs only) — Table VI rows.
  double zero = 0.0;
  double one = 0.0;
  double two_or_more = 0.0;

  // Paper's dependency metric: two_or_more / (one + two_or_more).
  double dependency_fraction() const;
};

struct ClassIncidentSize {
  double mean = 0.0;
  int max = 0;
  std::size_t incidents = 0;
};

struct SpatialAnalysis {
  std::size_t incident_count = 0;
  IncidentTypeBreakdown all;      // Table VI row "PM and VM"
  IncidentTypeBreakdown pm_only;  // Table VI row "PM only"
  IncidentTypeBreakdown vm_only;  // Table VI row "VM only"
  // Distinct-server counts per (predicted) class — Table VII. Indexed by
  // FailureClass (including kOther).
  std::array<ClassIncidentSize, trace::kFailureClassCount> by_class;
  int max_servers_in_incident = 0;
};

// Incident class = majority predicted class among the incident's tickets
// (ties broken toward the earliest ticket's class).
SpatialAnalysis analyze_spatial(const trace::TraceDatabase& db,
                                const ClassLookup& class_of);

}  // namespace fa::analysis
