#include "src/analysis/burstiness.h"

#include "src/stats/descriptive.h"
#include "src/util/error.h"

namespace fa::analysis {

double dispersion_index(const trace::TraceDatabase& db,
                        std::span<const trace::Ticket* const> failures,
                        const Scope& scope, Granularity granularity) {
  // Counts per bucket = rate series times the (constant) server count.
  const auto rates = failure_rate_series(db, failures, scope, granularity);
  const auto servers = static_cast<double>(scope_server_count(db, scope));
  std::vector<double> counts(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    counts[i] = rates[i] * servers;
  }
  const double mean = stats::mean(counts);
  require(mean > 0.0, "dispersion_index: no failures in scope");
  return stats::variance(counts) / mean;
}

}  // namespace fa::analysis
