#include "src/analysis/pipeline.h"

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/trace/csv_io.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::analysis {

AnalysisPipeline::AnalysisPipeline(const trace::TraceDatabase& db,
                                   std::uint64_t seed,
                                   ClassifierOptions options)
    : db_(&db) {
  obs::Span pipeline_span("analysis.pipeline");
  {
    obs::Span stage("analysis.extract_crash_tickets");
    failures_ = extract_crash_tickets(db);
  }
  obs::counter("fa.analysis.crash_tickets").add(failures_.size());
  require(!failures_.empty(), "AnalysisPipeline: no crash tickets in trace");
  Rng rng(seed);
  {
    obs::Span stage("analysis.classify_tickets");
    classification_ = classify_tickets(failures_, options, rng);
  }
  predicted_ = prediction_map(failures_, classification_);
}

trace::FailureClass AnalysisPipeline::class_of(
    const trace::Ticket& ticket) const {
  const auto it = predicted_.find(ticket.id);
  require(it != predicted_.end(),
          "AnalysisPipeline::class_of: ticket was not classified");
  return it->second;
}

ClassLookup AnalysisPipeline::class_lookup() const {
  return [this](const trace::Ticket& t) { return class_of(t); };
}

LenientAnalysisResult analyze_lenient(const std::string& directory,
                                      std::uint64_t seed,
                                      ClassifierOptions options) {
  LenientAnalysisResult result;
  auto sanitized = trace::sanitize_database(directory);
  result.tickets_dropped =
      sanitized.report.rows_dropped(trace::kTicketsFile);
  result.report = std::move(sanitized.report);
  result.db = std::make_shared<const trace::TraceDatabase>(
      std::move(sanitized.db));
  result.pipeline =
      std::make_shared<const AnalysisPipeline>(*result.db, seed, options);
  return result;
}

}  // namespace fa::analysis
