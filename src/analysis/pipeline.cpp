#include "src/analysis/pipeline.h"

#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::analysis {

AnalysisPipeline::AnalysisPipeline(const trace::TraceDatabase& db,
                                   std::uint64_t seed,
                                   ClassifierOptions options)
    : db_(&db) {
  failures_ = extract_crash_tickets(db);
  require(!failures_.empty(), "AnalysisPipeline: no crash tickets in trace");
  Rng rng(seed);
  classification_ = classify_tickets(failures_, options, rng);
  predicted_ = prediction_map(failures_, classification_);
}

trace::FailureClass AnalysisPipeline::class_of(
    const trace::Ticket& ticket) const {
  const auto it = predicted_.find(ticket.id);
  require(it != predicted_.end(),
          "AnalysisPipeline::class_of: ticket was not classified");
  return it->second;
}

ClassLookup AnalysisPipeline::class_lookup() const {
  return [this](const trace::Ticket& t) { return class_of(t); };
}

}  // namespace fa::analysis
