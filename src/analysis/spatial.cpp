#include "src/analysis/spatial.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/error.h"

namespace fa::analysis {

double IncidentTypeBreakdown::dependency_fraction() const {
  const double involved = one + two_or_more;
  return involved > 0.0 ? two_or_more / involved : 0.0;
}

SpatialAnalysis analyze_spatial(const trace::TraceDatabase& db,
                                const ClassLookup& class_of) {
  SpatialAnalysis result;
  const auto incidents = db.incidents();
  result.incident_count = incidents.size();
  require(result.incident_count > 0, "analyze_spatial: no incidents");

  std::array<std::size_t, 3> all_counts{};      // 0, 1, >=2 (index capped)
  std::array<std::size_t, 3> pm_counts{};
  std::array<std::size_t, 3> vm_counts{};
  std::array<double, trace::kFailureClassCount> size_sum{};

  for (const auto& tickets : incidents) {
    std::unordered_set<trace::ServerId> servers;
    std::size_t pm = 0;
    std::size_t vm = 0;
    // Majority class vote, earliest ticket wins ties.
    std::array<int, trace::kFailureClassCount> votes{};
    const trace::Ticket* earliest = tickets.front();
    for (const trace::Ticket* t : tickets) {
      if (t->opened < earliest->opened) earliest = t;
      ++votes[static_cast<std::size_t>(class_of(*t))];
      if (servers.insert(t->server).second) {
        (db.server(t->server).type == trace::MachineType::kPhysical ? pm
                                                                    : vm)++;
      }
    }
    auto cls = static_cast<std::size_t>(class_of(*earliest));
    for (std::size_t c = 0; c < votes.size(); ++c) {
      if (votes[c] > votes[cls]) cls = c;
    }

    const auto size = servers.size();
    ++all_counts[std::min<std::size_t>(size, 2)];
    ++pm_counts[std::min<std::size_t>(pm, 2)];
    ++vm_counts[std::min<std::size_t>(vm, 2)];
    result.max_servers_in_incident =
        std::max(result.max_servers_in_incident, static_cast<int>(size));

    ClassIncidentSize& entry = result.by_class[cls];
    ++entry.incidents;
    size_sum[cls] += static_cast<double>(size);
    entry.max = std::max(entry.max, static_cast<int>(size));
  }

  const auto to_breakdown = [&](const std::array<std::size_t, 3>& counts) {
    IncidentTypeBreakdown b;
    const auto n = static_cast<double>(result.incident_count);
    b.zero = static_cast<double>(counts[0]) / n;
    b.one = static_cast<double>(counts[1]) / n;
    b.two_or_more = static_cast<double>(counts[2]) / n;
    return b;
  };
  result.all = to_breakdown(all_counts);
  result.pm_only = to_breakdown(pm_counts);
  result.vm_only = to_breakdown(vm_counts);

  for (std::size_t c = 0; c < trace::kFailureClassCount; ++c) {
    if (result.by_class[c].incidents > 0) {
      result.by_class[c].mean =
          size_sum[c] / static_cast<double>(result.by_class[c].incidents);
    }
  }
  return result;
}

}  // namespace fa::analysis
