#include "src/analysis/out_of_core.h"

#include <vector>

#include "src/obs/span.h"
#include "src/util/error.h"

namespace fa::analysis {
namespace {

using trace::columnar::ChunkView;
using trace::columnar::Table;
namespace col = trace::columnar::col;

constexpr std::uint8_t kUnknownScope = 0xff;

std::uint8_t pack_scope(trace::MachineType type, trace::Subsystem sys) {
  return static_cast<std::uint8_t>(static_cast<int>(type) *
                                       trace::kSubsystemCount +
                                   sys);
}

void finish_rates(OutOfCoreSummary& summary, int weeks) {
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    ScopeSummary& type_total = summary.by_type[t];
    for (int s = 0; s < trace::kSubsystemCount; ++s) {
      ScopeSummary& scope = summary.by_scope[t][s];
      if (scope.servers > 0 && weeks > 0) {
        scope.mean_weekly_failure_rate =
            static_cast<double>(scope.crash_tickets) /
            (static_cast<double>(scope.servers) * weeks);
      }
      type_total.servers += scope.servers;
      type_total.crash_tickets += scope.crash_tickets;
    }
    if (type_total.servers > 0 && weeks > 0) {
      type_total.mean_weekly_failure_rate =
          static_cast<double>(type_total.crash_tickets) /
          (static_cast<double>(type_total.servers) * weeks);
    }
  }
}

}  // namespace

void for_each_chunk(
    const trace::ChunkReader& reader, Table table,
    const std::function<void(const ChunkView&)>& fn,
    trace::DegradedReadReport* report) {
  const std::size_t chunks = reader.chunk_count(table);
  for (std::size_t i = 0; i < chunks; ++i) {
    if (report == nullptr) {
      fn(reader.chunk(table, i));
      continue;
    }
    const auto view = reader.try_chunk(table, i, report);
    if (view) fn(*view);
  }
}

OutOfCoreSummary summarize_columnar(const std::string& path, bool use_mmap,
                                    trace::DegradedReadReport* report) {
  obs::Span span("analysis.out_of_core.summarize");
  trace::ChunkReader reader(path, use_mmap);
  OutOfCoreSummary summary;
  const ObservationWindow window = reader.window();
  const int weeks = window.week_count();

  // Pass 1 — servers: one packed (type, subsystem) byte per server. In
  // lenient mode a skipped server chunk must still occupy its positional
  // slots (ids are row positions), so it pads the index with unknown
  // scopes instead of shifting later servers.
  std::vector<std::uint8_t> scope_of;
  std::uint64_t server_rows_read = 0;
  scope_of.reserve(reader.row_count(Table::kServers));
  for (std::size_t i = 0; i < reader.chunk_count(Table::kServers); ++i) {
    std::optional<ChunkView> lenient;
    if (report != nullptr) {
      lenient = reader.try_chunk(Table::kServers, i, report);
      if (!lenient) {
        scope_of.resize(scope_of.size() +
                            reader.chunk_info(Table::kServers, i).rows,
                        kUnknownScope);
        continue;
      }
    }
    const ChunkView view =
        report != nullptr ? std::move(*lenient)
                          : reader.chunk(Table::kServers, i);
    const auto types = view.column(col::kServerType).u8_span();
    const auto systems = view.column(col::kServerSubsystem).u8_span();
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      const auto type = static_cast<trace::MachineType>(types[r]);
      const trace::Subsystem sys = systems[r];
      ++summary.by_scope[static_cast<int>(type)][sys].servers;
      scope_of.push_back(pack_scope(type, sys));
    }
    server_rows_read += view.rows();
  }
  summary.servers = server_rows_read;

  // Pass 2 — tickets: crash volumes per stratum, window-clipped.
  for_each_chunk(reader, Table::kTickets, [&](const ChunkView& view) {
    const auto& is_crash = view.column(col::kTicketIsCrash);
    const auto& opened = view.column(col::kTicketOpened);
    const auto& server = view.column(col::kTicketServer);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      ++summary.tickets;
      if (is_crash.int_at(r) == 0) continue;
      ++summary.crash_tickets;
      const TimePoint at = opened.int_at(r);
      if (at < window.begin || at >= window.end) continue;
      const std::int64_t sid = server.int_at(r);
      if (sid < 0 || static_cast<std::size_t>(sid) >= scope_of.size()) {
        continue;
      }
      const std::uint8_t packed = scope_of[static_cast<std::size_t>(sid)];
      if (packed == kUnknownScope) continue;
      ++summary.by_scope[packed / trace::kSubsystemCount]
                        [packed % trace::kSubsystemCount]
                            .crash_tickets;
    }
  }, report);

  // Monitoring-table volumes come straight from the footer.
  summary.weekly_usage_rows = reader.row_count(Table::kWeeklyUsage);
  summary.power_events = reader.row_count(Table::kPowerEvents);
  summary.snapshots = reader.row_count(Table::kSnapshots);

  finish_rates(summary, weeks);
  return summary;
}

OutOfCoreSummary summarize_database(const trace::TraceDatabase& db) {
  OutOfCoreSummary summary;
  const ObservationWindow window = db.window();
  const int weeks = window.week_count();

  summary.servers = db.servers().size();
  for (const trace::ServerRecord& s : db.servers()) {
    ++summary.by_scope[static_cast<int>(s.type)][s.subsystem].servers;
  }
  summary.tickets = db.tickets().size();
  for (const trace::Ticket& t : db.tickets()) {
    if (!t.is_crash) continue;
    ++summary.crash_tickets;
    if (t.opened < window.begin || t.opened >= window.end) continue;
    if (!t.server.valid()) continue;
    const trace::ServerRecord& s = db.server(t.server);
    ++summary.by_scope[static_cast<int>(s.type)][s.subsystem].crash_tickets;
  }
  for (const trace::ServerRecord& s : db.servers()) {
    summary.weekly_usage_rows += db.weekly_usage_for(s.id).size();
    summary.power_events += db.power_events_for(s.id).size();
    summary.snapshots += db.snapshots_for(s.id).size();
  }

  finish_rates(summary, weeks);
  return summary;
}

}  // namespace fa::analysis
