// Ticket classification (paper Section III-A).
//
// Step 1: identify crash tickets among all problem tickets (the paper mines
// tickets whose machines were "unresponsive or unreachable"; we match the
// same symptom lexicon against the description text).
// Step 2: k-means over TF-IDF vectors of description+resolution text groups
// crash tickets into clusters; clusters are named by majority vote of a
// manually-labeled subset, and accuracy is evaluated against the full ground
// truth (the paper reports 87%).
#pragma once

#include <array>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/stats/kmeans.h"
#include "src/trace/database.h"
#include "src/util/rng.h"

namespace fa::analysis {

// Crash-ticket identification by symptom lexicon; returns tickets whose
// description reports an unresponsive/unreachable machine.
std::vector<const trace::Ticket*> extract_crash_tickets(
    const trace::TraceDatabase& db);

// Alternative crash identification closer to the paper's step 1: k-means
// over the description text of *all* problem tickets, flagging clusters
// whose centroid loads on the unresponsive/unreachable symptom vocabulary.
// Purely unsupervised extraction is precision-focused but recall-limited —
// crash tickets scattered into background-dominated clusters are missed,
// which is exactly why the paper pairs clustering with manual labeling
// ("in a best-effort manner", 87% accuracy after manual checking). Metrics
// are evaluated against the is_crash ground truth.
struct CrashExtractionResult {
  std::vector<const trace::Ticket*> crash_tickets;
  double accuracy = 0.0;   // fraction of all tickets correctly sided
  double precision = 0.0;  // true crashes among flagged tickets
  double recall = 0.0;     // flagged among true crashes
};

CrashExtractionResult extract_crash_tickets_clustered(
    const trace::TraceDatabase& db, Rng& rng);

struct ClassifierOptions {
  // Clusters are over-provisioned relative to the six classes and mapped to
  // classes by majority vote: with "other" holding ~53% of the mass, k = 6
  // would merge the small hardware/network/power classes (network is only
  // ~3% of crash tickets and needs a generous cluster budget).
  int clusters = 32;
  // Fraction of tickets whose ground-truth label the "manual" pass provides;
  // used only to name clusters, mimicking the paper's manual verification.
  double labeled_fraction = 0.3;
  int kmeans_restarts = 6;
  int min_document_frequency = 2;
};

struct ClassificationResult {
  // Predicted class per input ticket (parallel to the input span).
  std::vector<trace::FailureClass> predicted;
  // Fraction of tickets whose prediction matches the ground truth.
  double accuracy = 0.0;
  // Confusion counts: confusion[truth][predicted].
  std::array<std::array<int, trace::kFailureClassCount>,
             trace::kFailureClassCount>
      confusion{};
  stats::KMeansResult clustering;
};

ClassificationResult classify_tickets(
    std::span<const trace::Ticket* const> tickets,
    const ClassifierOptions& options, Rng& rng);

// Convenience map from ticket id to predicted class.
std::unordered_map<trace::TicketId, trace::FailureClass> prediction_map(
    std::span<const trace::Ticket* const> tickets,
    const ClassificationResult& result);

}  // namespace fa::analysis
