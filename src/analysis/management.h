// VM-management analysis (paper Section VI, Figs. 9 and 10): the impact of
// consolidation level and on/off frequency on VM failure rates.
#pragma once

#include <optional>
#include <span>

#include "src/analysis/capacity_usage.h"
#include "src/trace/database.h"

namespace fa::analysis {

// Average monthly consolidation level of a VM over the observation year
// (mean of its monthly snapshots), or nullopt for PMs / VMs without
// snapshots.
std::optional<double> average_consolidation(const trace::TraceDatabase& db,
                                            trace::ServerId id);

// Average monthly on/off frequency measured from the power events inside
// the fine-grained tracking window (off-transition count / window months);
// nullopt for PMs. The paper extrapolates this two-month measurement to the
// whole year.
std::optional<double> measured_onoff_per_month(const trace::TraceDatabase& db,
                                               trace::ServerId id);

// The same measurement the way the paper actually performs it: screening
// the 15-minute monitoring samples for on->off transitions. Agrees with
// measured_onoff_per_month whenever no off period is shorter than one
// sampling interval.
std::optional<double> measured_onoff_from_series(
    const trace::TraceDatabase& db, trace::ServerId id);

// Weekly VM failure rates binned by average consolidation level (Fig. 9).
BinnedRates consolidation_binned_rates(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures);

// Weekly VM failure rates binned by measured on/off frequency (Fig. 10).
BinnedRates onoff_binned_rates(const trace::TraceDatabase& db,
                               std::span<const trace::Ticket* const> failures);

}  // namespace fa::analysis
