// Inter-failure time analysis (paper Section IV-B, Fig. 3, Table III).
//
// Two views: the single-server view (gaps between consecutive failures of
// the same machine; servers failing once contribute nothing) and the
// operator view (gaps between consecutive failures of a class anywhere in
// the datacenter).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/analysis/failure_rates.h"
#include "src/trace/database.h"

namespace fa::analysis {

// Maps a crash ticket to its (predicted) failure class.
using ClassLookup = std::function<trace::FailureClass(const trace::Ticket&)>;

// Gaps in days between consecutive failures of each in-scope server, pooled
// across servers.
std::vector<double> per_server_interfailure_days(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope);

// Same, restricted to failures of one class (Table III, bottom).
std::vector<double> per_server_interfailure_days(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    trace::FailureClass cls, const ClassLookup& class_of);

// Operator view: gaps between consecutive failures of `cls` across the whole
// population (Table III, top).
std::vector<double> operator_interfailure_days(
    std::span<const trace::Ticket* const> failures, trace::FailureClass cls,
    const ClassLookup& class_of);

// Failure-count census: how many in-scope servers failed at all, and how
// many failed exactly once (Section IV-B notes ~60% of failing VMs fail
// only once).
struct FailureCensus {
  std::size_t servers = 0;
  std::size_t failing_servers = 0;
  std::size_t single_failure_servers = 0;
};

FailureCensus failure_census(const trace::TraceDatabase& db,
                             std::span<const trace::Ticket* const> failures,
                             const Scope& scope);

}  // namespace fa::analysis
