// Follow-on failure class transitions.
//
// The paper's related work (El-Sayed & Schroeder, DSN'13) reports high
// correlation among failure classes — e.g. power failures induce follow-on
// failures "of any kind". This extension measures that on the trace: given
// a server failure of class i, the distribution over classes of the
// server's *next* failure within a window.
#pragma once

#include <array>
#include <span>

#include "src/analysis/interfailure.h"
#include "src/trace/database.h"

namespace fa::analysis {

struct TransitionAnalysis {
  // counts[i][j]: failures of class i whose same-server follow-up within
  // the window had class j.
  std::array<std::array<int, trace::kFailureClassCount>,
             trace::kFailureClassCount>
      counts{};
  // Row-normalized transition probabilities; rows without any follow-up
  // stay all-zero.
  std::array<std::array<double, trace::kFailureClassCount>,
             trace::kFailureClassCount>
      probability{};
  // P(follow-up within the window | failure of class i).
  std::array<double, trace::kFailureClassCount> followup_probability{};

  // Probability the follow-up repeats the class, conditioned on a follow-up
  // happening. Returns 0 for rows without data.
  double self_transition(trace::FailureClass cls) const;
};

TransitionAnalysis analyze_transitions(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures,
    const ClassLookup& class_of, Duration window);

}  // namespace fa::analysis
