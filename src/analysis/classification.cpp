#include "src/analysis/classification.h"

#include <algorithm>
#include <set>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/text/features.h"
#include "src/text/vocabulary.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::analysis {

std::vector<const trace::Ticket*> extract_crash_tickets(
    const trace::TraceDatabase& db) {
  const auto symptoms = text::crash_symptoms();
  std::vector<const trace::Ticket*> out;
  std::string description;  // reused across tickets; lowering is the hot loop
  for (const trace::Ticket& t : db.tickets()) {
    to_lower_into(t.description, description);
    for (std::string_view symptom : symptoms) {
      if (description.find(symptom) != std::string::npos) {
        out.push_back(&t);
        break;
      }
    }
  }
  return out;
}

CrashExtractionResult extract_crash_tickets_clustered(
    const trace::TraceDatabase& db, Rng& rng) {
  obs::Span span("analysis.extract_crash_tickets_clustered");
  require(!db.tickets().empty(),
          "extract_crash_tickets_clustered: empty ticket database");
  // Features over descriptions only: resolutions of non-crash tickets reuse
  // the vague resolution pool and would blur the cluster boundary.
  std::vector<std::string> corpus;
  corpus.reserve(db.tickets().size());
  for (const trace::Ticket& t : db.tickets()) corpus.push_back(t.description);
  text::VectorizerOptions vec_options;
  vec_options.min_document_frequency = 3;
  const auto vectorizer = text::Vectorizer::fit(corpus, vec_options);
  // Sparse path end to end: CSR features (no dense intermediate) and the
  // bound-pruned sparse k-means overload. The dense path remains as the
  // reference implementation; tests/test_sparse_features.cpp pins that both
  // produce identical assignments, labels and accuracy.
  const auto features = vectorizer.transform_all_sparse(corpus);

  // Distinctive symptom vocabulary: words of the symptom phrases that are
  // not generic datacenter jargon ("server", "host", "monitoring" appear in
  // background tickets too and must not count).
  std::set<std::string> symptom_words;
  for (std::string_view phrase : text::crash_symptoms()) {
    for (auto& word : fa::tokenize_words(phrase)) {
      symptom_words.insert(std::move(word));
    }
  }
  for (std::string_view generic : text::generic_words()) {
    symptom_words.erase(std::string(generic));
  }
  std::vector<bool> symptom_dim(vectorizer.vocabulary().size(), false);
  for (std::size_t d = 0; d < vectorizer.vocabulary().size(); ++d) {
    symptom_dim[d] = symptom_words.contains(vectorizer.vocabulary()[d]);
  }

  // Crash tickets are a small minority (~2% of all tickets, Table II), so a
  // two-way split would divide the dominant background mass instead. Use a
  // generous cluster budget and label each cluster by how strongly its
  // centroid loads on unresponsive/unreachable symptom words. Random
  // k-means++ seeding routinely misses a 2% mode entirely (and inertia does
  // not reward finding it), so one centroid is anchored at the document with
  // the highest symptom share. Anchoring at a real document (not a mean of
  // documents) matters: a mean over diverse documents has a small norm,
  // which makes it spuriously close to everything and lets it absorb
  // background tickets during Lloyd iterations.
  std::size_t anchor_doc = 0;
  double anchor_share = 0.0;
  for (std::size_t i = 0; i < features.rows(); ++i) {
    double symptom = 0.0, total = 0.0;
    const auto row = features.row(i);
    for (std::size_t e = 0; e < row.size(); ++e) {
      total += row.values[e];
      if (symptom_dim[row.indices[e]]) symptom += row.values[e];
    }
    const double share = total > 0.0 ? symptom / total : 0.0;
    if (share > anchor_share) {
      anchor_share = share;
      anchor_doc = i;
    }
  }
  stats::KMeansOptions km;
  km.k = 24;
  km.restarts = 3;
  if (anchor_share > 0.0) km.anchors.push_back(features.row_dense(anchor_doc));
  const auto clustering = stats::kmeans(features, km, rng);

  // Symptom share of each centroid's total mass. The share (rather than the
  // absolute symptom mass) is what separates crash clusters from a large
  // background cluster that absorbed a few stray crash tickets: the latter
  // carries symptom words, but they are a sliver of its mass.
  std::vector<double> symptom_mass(static_cast<std::size_t>(km.k), 0.0);
  std::vector<double> total_mass(static_cast<std::size_t>(km.k), 0.0);
  for (std::size_t d = 0; d < vectorizer.vocabulary().size(); ++d) {
    const bool symptom = symptom_dim[d];
    for (int c = 0; c < km.k; ++c) {
      const double w = clustering.centroids[static_cast<std::size_t>(c)][d];
      total_mass[static_cast<std::size_t>(c)] += w;
      if (symptom) symptom_mass[static_cast<std::size_t>(c)] += w;
    }
  }
  std::vector<double> symptom_share(static_cast<std::size_t>(km.k), 0.0);
  for (int c = 0; c < km.k; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (total_mass[i] > 0.0) symptom_share[i] = symptom_mass[i] / total_mass[i];
  }
  const double max_share =
      *std::max_element(symptom_share.begin(), symptom_share.end());
  require(max_share > 0.0,
          "extract_crash_tickets_clustered: no symptom vocabulary found");
  // Precision-focused flagging: only clusters dominated by symptom share
  // count as crash clusters.
  std::vector<bool> crash_cluster(static_cast<std::size_t>(km.k), false);
  for (int c = 0; c < km.k; ++c) {
    crash_cluster[static_cast<std::size_t>(c)] =
        symptom_share[static_cast<std::size_t>(c)] > 0.5 * max_share;
  }

  CrashExtractionResult result;
  std::size_t correct = 0, true_crashes = 0, flagged_true = 0;
  for (std::size_t i = 0; i < db.tickets().size(); ++i) {
    const bool predicted_crash =
        crash_cluster[static_cast<std::size_t>(clustering.assignment[i])];
    const bool is_crash = db.tickets()[i].is_crash;
    true_crashes += is_crash;
    if (predicted_crash) {
      result.crash_tickets.push_back(&db.tickets()[i]);
      flagged_true += is_crash;
    }
    correct += predicted_crash == is_crash;
  }
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(db.tickets().size());
  if (!result.crash_tickets.empty()) {
    result.precision = static_cast<double>(flagged_true) /
                       static_cast<double>(result.crash_tickets.size());
  }
  if (true_crashes > 0) {
    result.recall =
        static_cast<double>(flagged_true) / static_cast<double>(true_crashes);
  }
  return result;
}

ClassificationResult classify_tickets(
    std::span<const trace::Ticket* const> tickets,
    const ClassifierOptions& options, Rng& rng) {
  require(!tickets.empty(), "classify_tickets: no tickets");
  require(options.clusters >= 1, "classify_tickets: clusters must be >= 1");
  require(options.labeled_fraction > 0.0 && options.labeled_fraction <= 1.0,
          "classify_tickets: labeled_fraction must be in (0, 1]");

  // TF-IDF features over description + resolution, as in the paper.
  std::vector<std::string> corpus;
  corpus.reserve(tickets.size());
  for (const trace::Ticket* t : tickets) {
    corpus.push_back(t->description + " " + t->resolution);
  }
  text::VectorizerOptions vec_options;
  vec_options.min_document_frequency = options.min_document_frequency;
  obs::Span vectorize_span("analysis.vectorize");
  const auto vectorizer = text::Vectorizer::fit(corpus, vec_options);
  // CSR features + sparse k-means (see extract_crash_tickets_clustered).
  const auto features = vectorizer.transform_all_sparse(corpus);
  vectorize_span.close();
  obs::counter("fa.analysis.vectorized_documents").add(corpus.size());
  obs::counter("fa.analysis.vocabulary_terms")
      .add(vectorizer.vocabulary().size());

  stats::KMeansOptions km;
  km.k = options.clusters;
  km.restarts = options.kmeans_restarts;
  ClassificationResult result;
  {
    obs::Span kmeans_span("analysis.kmeans");
    result.clustering = stats::kmeans(features, km, rng);
  }

  // Name clusters from the manually-labeled subset. Raw majority voting
  // would assign nearly every mixed cluster to "other" (it holds ~53% of
  // the mass), starving the small hardware/network/power classes, so
  // clusters are named by *lift*: the class whose share within the cluster
  // most exceeds its global share. A cluster must still hold a meaningful
  // over-representation (lift > 1) to claim a non-"other" name.
  std::vector<std::array<int, trace::kFailureClassCount>> votes(
      static_cast<std::size_t>(options.clusters));
  for (auto& v : votes) v.fill(0);
  std::array<double, trace::kFailureClassCount> global{};
  std::size_t labeled = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (!rng.bernoulli(options.labeled_fraction)) continue;
    ++labeled;
    global[static_cast<std::size_t>(tickets[i]->true_class)] += 1.0;
    const auto cluster =
        static_cast<std::size_t>(result.clustering.assignment[i]);
    ++votes[cluster][static_cast<std::size_t>(tickets[i]->true_class)];
  }
  require(labeled > 0, "classify_tickets: labeled subset came up empty");
  for (double& g : global) g = std::max(g / static_cast<double>(labeled), 1e-9);

  std::vector<trace::FailureClass> cluster_label(
      static_cast<std::size_t>(options.clusters),
      trace::FailureClass::kOther);
  for (std::size_t c = 0; c < votes.size(); ++c) {
    int cluster_total = 0;
    for (int v : votes[c]) cluster_total += v;
    if (cluster_total == 0) continue;
    double best_lift = 1.5;  // weak over-representation: stay "other"
    for (std::size_t k = 0; k < trace::kFailureClassCount; ++k) {
      if (static_cast<trace::FailureClass>(k) == trace::FailureClass::kOther) {
        continue;
      }
      const double share =
          static_cast<double>(votes[c][k]) / cluster_total;
      const double lift = share / global[k];
      // Require both over-representation and a non-trivial share.
      if (lift > best_lift && share >= 0.40) {
        best_lift = lift;
        cluster_label[c] = static_cast<trace::FailureClass>(k);
      }
    }
  }

  result.predicted.reserve(tickets.size());
  int correct = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto cluster =
        static_cast<std::size_t>(result.clustering.assignment[i]);
    const trace::FailureClass predicted = cluster_label[cluster];
    result.predicted.push_back(predicted);
    const auto truth = static_cast<std::size_t>(tickets[i]->true_class);
    ++result.confusion[truth][static_cast<std::size_t>(predicted)];
    correct += predicted == tickets[i]->true_class;
  }
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(tickets.size());
  return result;
}

std::unordered_map<trace::TicketId, trace::FailureClass> prediction_map(
    std::span<const trace::Ticket* const> tickets,
    const ClassificationResult& result) {
  require(tickets.size() == result.predicted.size(),
          "prediction_map: tickets/result size mismatch");
  std::unordered_map<trace::TicketId, trace::FailureClass> map;
  map.reserve(tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    map.emplace(tickets[i]->id, result.predicted[i]);
  }
  return map;
}

}  // namespace fa::analysis
