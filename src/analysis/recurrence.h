// Recurrent vs. random failure probabilities (paper Sections III-B, IV-D;
// Fig. 5 and Table V).
//
//   random failure probability (weekly): probability that any in-scope
//     server experiences at least one failure within a week — averaged over
//     the weeks of the observation year;
//   recurrent failure probability (window W): given an in-scope failure,
//     probability that the same server fails again within W. Failures whose
//     window extends past the observation end are excluded (censoring).
#pragma once

#include <span>

#include "src/analysis/failure_rates.h"
#include "src/trace/database.h"

namespace fa::analysis {

double recurrent_probability(const trace::TraceDatabase& db,
                             std::span<const trace::Ticket* const> failures,
                             const Scope& scope, Duration window);

double random_failure_probability(const trace::TraceDatabase& db,
                                  std::span<const trace::Ticket* const> failures,
                                  const Scope& scope,
                                  Granularity granularity);

// Table V's headline metric: recurrent(1 week) / random(weekly). Returns 0
// when the random probability is 0 (e.g. Sys II VMs).
double recurrence_ratio(const trace::TraceDatabase& db,
                        std::span<const trace::Ticket* const> failures,
                        const Scope& scope);

}  // namespace fa::analysis
