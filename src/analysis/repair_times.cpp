#include "src/analysis/repair_times.h"

#include "src/util/error.h"

namespace fa::analysis {
namespace {

std::vector<double> collect(const trace::TraceDatabase& db,
                            std::span<const trace::Ticket* const> failures,
                            const Scope& scope, const trace::FailureClass* cls,
                            const ClassLookup* class_of) {
  std::vector<double> hours;
  for (const trace::Ticket* t : failures) {
    require(t->is_crash, "repair_hours: non-crash ticket");
    if (!scope.matches(db.server(t->server))) continue;
    if (cls != nullptr && (*class_of)(*t) != *cls) continue;
    hours.push_back(to_hours(t->repair_time()));
  }
  return hours;
}

}  // namespace

std::vector<double> repair_hours(const trace::TraceDatabase& db,
                                 std::span<const trace::Ticket* const> failures,
                                 const Scope& scope) {
  return collect(db, failures, scope, nullptr, nullptr);
}

std::vector<double> repair_hours(const trace::TraceDatabase& db,
                                 std::span<const trace::Ticket* const> failures,
                                 const Scope& scope, trace::FailureClass cls,
                                 const ClassLookup& class_of) {
  return collect(db, failures, scope, &cls, &class_of);
}

}  // namespace fa::analysis
