// Temporal burstiness of the failure process: the index of dispersion
// (variance-to-mean ratio) of per-bucket failure counts. A Poisson
// (memoryless) failure process gives ~1; the clustered failures the paper
// reports (recurrence, multi-server incidents) push it well above 1.
#pragma once

#include <span>

#include "src/analysis/failure_rates.h"
#include "src/trace/database.h"

namespace fa::analysis {

// Variance / mean of the in-scope failure counts per time bucket.
double dispersion_index(const trace::TraceDatabase& db,
                        std::span<const trace::Ticket* const> failures,
                        const Scope& scope, Granularity granularity);

}  // namespace fa::analysis
