#include "src/analysis/age.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/stats/ecdf.h"
#include "src/util/error.h"

namespace fa::analysis {

AgeAnalysis analyze_vm_age(const trace::TraceDatabase& db,
                           std::span<const trace::Ticket* const> failures) {
  AgeAnalysis result;
  const TimePoint db_start = db.monitoring().begin;

  std::unordered_set<trace::ServerId> observable;
  std::size_t vms = 0;
  for (const trace::ServerRecord& s : db.servers()) {
    if (s.type != trace::MachineType::kVirtual) continue;
    ++vms;
    if (s.first_record > db_start) observable.insert(s.id);
  }
  require(vms > 0, "analyze_vm_age: no VMs in the trace");
  result.observable_fraction =
      static_cast<double>(observable.size()) / static_cast<double>(vms);

  for (const trace::Ticket* t : failures) {
    if (!observable.contains(t->server)) continue;
    const trace::ServerRecord& s = db.server(t->server);
    // Defensive: a failure stamped before the server's first monitoring
    // record indicates clock skew between data sources; skip it.
    if (t->opened < s.first_record) continue;
    result.failure_age_days.push_back(to_days(t->opened - s.first_record));
  }
  if (result.failure_age_days.empty()) return result;

  // KS distance to Uniform(0, max age).
  std::vector<double> sorted = result.failure_age_days;
  std::sort(sorted.begin(), sorted.end());
  const double max_age = std::max(sorted.back(), 1.0);
  const auto n = static_cast<double>(sorted.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = sorted[i] / max_age;
    ks = std::max(ks, std::max(std::fabs(f - static_cast<double>(i) / n),
                               std::fabs(static_cast<double>(i + 1) / n - f)));
  }
  result.ks_distance_to_uniform = ks;

  // Binned PDF (30-day bins) normalized to mean 1, plus a least-squares
  // trend slope over bin index.
  const int bins = std::max(1, static_cast<int>(std::ceil(max_age / 30.0)));
  std::vector<double> counts(static_cast<std::size_t>(bins), 0.0);
  for (double age : sorted) {
    const auto b = std::min<std::size_t>(
        static_cast<std::size_t>(age / 30.0), counts.size() - 1);
    counts[b] += 1.0;
  }
  const double mean_count = n / static_cast<double>(bins);
  for (double& c : counts) c /= mean_count;
  result.binned_pdf = counts;

  if (bins >= 2) {
    // Slope of counts vs. bin index (simple linear regression).
    const double m = static_cast<double>(bins);
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (int i = 0; i < bins; ++i) {
      const auto x = static_cast<double>(i);
      const double y = counts[static_cast<std::size_t>(i)];
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    result.pdf_trend_slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  }
  return result;
}

}  // namespace fa::analysis
