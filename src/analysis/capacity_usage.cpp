#include "src/analysis/capacity_usage.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/error.h"

namespace fa::analysis {

double BinnedRates::max_min_rate_factor() const {
  double lo = 0.0, hi = 0.0;
  for (double r : overall_rate) {
    if (r <= 0.0) continue;
    if (lo == 0.0 || r < lo) lo = r;
    if (r > hi) hi = r;
  }
  return lo > 0.0 ? hi / lo : 0.0;
}

BinnedRates capacity_binned_rates(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope,
    const CapacityAttribute& attribute, stats::BinSpec spec) {
  const std::size_t bins = spec.bin_count();
  const int weeks = db.window().week_count();

  // Bin assignment per server.
  std::unordered_map<trace::ServerId, std::size_t> server_bin;
  std::vector<std::size_t> population(bins, 0);
  for (const trace::ServerRecord& s : db.servers()) {
    if (!scope.matches(s)) continue;
    const auto value = attribute(s);
    if (!value) continue;
    const auto bin = spec.index_of(*value);
    if (!bin) continue;
    server_bin.emplace(s.id, *bin);
    ++population[*bin];
  }

  // Failures per (bin, week).
  std::vector<std::vector<double>> weekly_failures(
      bins, std::vector<double>(static_cast<std::size_t>(weeks), 0.0));
  std::vector<std::size_t> failure_count(bins, 0);
  for (const trace::Ticket* t : failures) {
    const auto it = server_bin.find(t->server);
    if (it == server_bin.end()) continue;
    const int w = db.window().week_index(t->opened);
    if (w < 0) continue;
    weekly_failures[it->second][static_cast<std::size_t>(w)] += 1.0;
    ++failure_count[it->second];
  }

  BinnedRates result{std::move(spec), std::move(population),
                     std::move(failure_count), {}, {}};
  result.overall_rate.resize(bins, 0.0);
  result.weekly_summary.resize(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    if (result.population[b] == 0) continue;
    auto& series = weekly_failures[b];
    for (double& v : series) v /= static_cast<double>(result.population[b]);
    result.weekly_summary[b] = stats::summarize(series);
    result.overall_rate[b] =
        static_cast<double>(result.failure_count[b]) /
        (static_cast<double>(result.population[b]) * weeks);
  }
  return result;
}

BinnedRates usage_binned_rates(const trace::TraceDatabase& db,
                               std::span<const trace::Ticket* const> failures,
                               const Scope& scope,
                               const UsageAttribute& attribute,
                               stats::BinSpec spec) {
  const std::size_t bins = spec.bin_count();
  const int weeks = db.window().week_count();

  // Bin of each (server, week) from the monitoring rows.
  std::unordered_map<trace::ServerId, std::vector<int>> week_bin;
  std::vector<std::vector<double>> weekly_population(
      bins, std::vector<double>(static_cast<std::size_t>(weeks), 0.0));
  std::vector<std::size_t> population(bins, 0);  // server-weeks
  for (const trace::ServerRecord& s : db.servers()) {
    if (!scope.matches(s)) continue;
    auto& slots = week_bin[s.id];
    slots.assign(static_cast<std::size_t>(weeks), -1);
    for (const trace::WeeklyUsage& u : db.weekly_usage_for(s.id)) {
      if (u.week < 0 || u.week >= weeks) continue;
      const auto value = attribute(u);
      if (!value) continue;
      const auto bin = spec.index_of(*value);
      if (!bin) continue;
      slots[static_cast<std::size_t>(u.week)] = static_cast<int>(*bin);
      weekly_population[*bin][static_cast<std::size_t>(u.week)] += 1.0;
      ++population[*bin];
    }
  }

  std::vector<std::vector<double>> weekly_failures(
      bins, std::vector<double>(static_cast<std::size_t>(weeks), 0.0));
  std::vector<std::size_t> failure_count(bins, 0);
  for (const trace::Ticket* t : failures) {
    const auto it = week_bin.find(t->server);
    if (it == week_bin.end()) continue;
    const int w = db.window().week_index(t->opened);
    if (w < 0) continue;
    const int bin = it->second[static_cast<std::size_t>(w)];
    if (bin < 0) continue;
    weekly_failures[static_cast<std::size_t>(bin)]
                   [static_cast<std::size_t>(w)] += 1.0;
    ++failure_count[static_cast<std::size_t>(bin)];
  }

  BinnedRates result{std::move(spec), std::move(population),
                     std::move(failure_count), {}, {}};
  result.overall_rate.resize(bins, 0.0);
  result.weekly_summary.resize(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    if (result.population[b] == 0) continue;
    // Weekly rate series over weeks with population in this bin.
    std::vector<double> rates;
    for (int w = 0; w < weeks; ++w) {
      const double pop = weekly_population[b][static_cast<std::size_t>(w)];
      if (pop <= 0.0) continue;
      rates.push_back(weekly_failures[b][static_cast<std::size_t>(w)] / pop);
    }
    if (!rates.empty()) result.weekly_summary[b] = stats::summarize(rates);
    result.overall_rate[b] = static_cast<double>(result.failure_count[b]) /
                             static_cast<double>(result.population[b]);
  }
  return result;
}

}  // namespace fa::analysis
