#include "src/analysis/transitions.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/error.h"

namespace fa::analysis {

double TransitionAnalysis::self_transition(trace::FailureClass cls) const {
  return probability[static_cast<std::size_t>(cls)]
                    [static_cast<std::size_t>(cls)];
}

TransitionAnalysis analyze_transitions(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures,
    const ClassLookup& class_of, Duration window) {
  require(window > 0, "analyze_transitions: window must be positive");
  TransitionAnalysis result;

  // Per-server failure sequences ordered by time.
  std::unordered_map<trace::ServerId,
                     std::vector<std::pair<TimePoint, trace::FailureClass>>>
      by_server;
  for (const trace::Ticket* t : failures) {
    require(t->is_crash, "analyze_transitions: non-crash ticket");
    by_server[t->server].emplace_back(t->opened, class_of(*t));
  }

  std::array<int, trace::kFailureClassCount> eligible{};
  const TimePoint end = db.window().end;
  for (auto& [server, events] : by_server) {
    std::sort(events.begin(), events.end());
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto [at, cls] = events[i];
      if (at + window > end) break;  // censored
      ++eligible[static_cast<std::size_t>(cls)];
      if (i + 1 < events.size() && events[i + 1].first - at <= window) {
        ++result.counts[static_cast<std::size_t>(cls)]
                       [static_cast<std::size_t>(events[i + 1].second)];
      }
    }
  }

  for (std::size_t i = 0; i < trace::kFailureClassCount; ++i) {
    int row_total = 0;
    for (int c : result.counts[i]) row_total += c;
    if (eligible[i] > 0) {
      result.followup_probability[i] =
          static_cast<double>(row_total) / eligible[i];
    }
    if (row_total == 0) continue;
    for (std::size_t j = 0; j < trace::kFailureClassCount; ++j) {
      result.probability[i][j] =
          static_cast<double>(result.counts[i][j]) / row_total;
    }
  }
  return result;
}

}  // namespace fa::analysis
