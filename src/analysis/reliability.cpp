#include "src/analysis/reliability.h"

#include <cmath>

#include "src/analysis/interfailure.h"
#include "src/analysis/repair_times.h"
#include "src/util/error.h"

namespace fa::analysis {

ReliabilityReport reliability_report(
    const trace::TraceDatabase& db,
    std::span<const trace::Ticket* const> failures, const Scope& scope) {
  ReliabilityReport report;
  report.servers = scope_server_count(db, scope);
  require(report.servers > 0, "reliability_report: empty scope");

  // Total exposure (server-days) accounting for VM creation dates.
  const ObservationWindow& year = db.window();
  double exposure_days = 0.0;
  for (const trace::ServerRecord& s : db.servers()) {
    if (!scope.matches(s)) continue;
    const TimePoint start = std::max(s.first_record, year.begin);
    if (start < year.end) exposure_days += to_days(year.end - start);
  }

  const auto hours = repair_hours(db, failures, scope);
  report.failures = hours.size();
  if (report.failures > 0) {
    double total_hours = 0.0;
    for (double h : hours) total_hours += h;
    report.mttr_hours = total_hours / static_cast<double>(report.failures);
    report.mtbf_days =
        exposure_days / static_cast<double>(report.failures);
    report.annualized_failure_rate =
        static_cast<double>(report.failures) / (exposure_days / 365.0);
    const double mtbf_hours = report.mtbf_days * 24.0;
    report.availability = mtbf_hours / (mtbf_hours + report.mttr_hours);
  } else {
    report.availability = 1.0;
    report.mtbf_days = exposure_days;  // no failure observed
  }

  const auto gaps = per_server_interfailure_days(db, failures, scope);
  if (!gaps.empty()) {
    double total = 0.0;
    for (double g : gaps) total += g;
    report.mean_interfailure_days = total / static_cast<double>(gaps.size());
  }
  // Fits need positive samples of reasonable size.
  const auto positive = [](std::span<const double> xs) {
    for (double x : xs) {
      if (x <= 0.0) return false;
    }
    return xs.size() >= 30;
  };
  if (positive(gaps)) report.interfailure_fit = stats::fit_best(gaps);
  if (positive(hours)) report.repair_fit = stats::fit_best(hours);
  return report;
}

double survival_probability(const ReliabilityReport& report, double days) {
  require(days >= 0.0, "survival_probability: negative horizon");
  if (report.mtbf_days <= 0.0) return 0.0;
  return std::exp(-days / report.mtbf_days);
}

}  // namespace fa::analysis
