#include "src/analysis/artifact_cache.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace fa::analysis {

ArtifactCache& ArtifactCache::global() {
  static ArtifactCache cache;
  return cache;
}

namespace {

// Builds a pipeline that shares ownership of its database: the returned
// handle keeps both alive (aliasing shared_ptr onto an AnalysisContext), so
// cached pipelines stay valid even after ArtifactCache::clear().
std::shared_ptr<const AnalysisPipeline> build_pipeline(
    std::shared_ptr<const trace::TraceDatabase> db, std::uint64_t seed,
    const ClassifierOptions& options) {
  auto ctx = std::make_shared<AnalysisContext>();
  ctx->db = std::move(db);
  ctx->pipeline =
      std::make_shared<const AnalysisPipeline>(*ctx->db, seed, options);
  return {ctx, ctx->pipeline.get()};
}

// Cache events are rare (a handful per process), so the registry lookup per
// event is fine; no need to cache counter references here.
void count_event(const char* name, const char* kind, std::size_t n = 1) {
  obs::counter(name, {{"kind", kind}}).add(n);
}

void record_build_seconds(const char* kind,
                          std::chrono::steady_clock::time_point start) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  obs::histogram("fa.cache.build_seconds", obs::duration_seconds_bounds(),
                 {{"kind", kind}}, obs::Stability::kTiming)
      .record(seconds);
}

// Rough in-memory footprint of a trace database: record payloads plus ticket
// text. Deterministic for a fixed simulation (derived from sizes only).
std::size_t estimate_bytes(const trace::TraceDatabase& db) {
  std::size_t bytes = db.servers().size() * sizeof(trace::ServerRecord);
  for (const trace::Ticket& t : db.tickets()) {
    bytes += sizeof(trace::Ticket) + t.description.size() +
             t.resolution.size();
  }
  return bytes;
}

}  // namespace

std::uint64_t ArtifactCache::pipeline_key(std::uint64_t db_key,
                                          std::uint64_t seed,
                                          const ClassifierOptions& options) {
  // Same mixing discipline as Rng::derive_seed: any field difference moves
  // the key to an unrelated value.
  std::uint64_t h = db_key;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(seed);
  mix(static_cast<std::uint64_t>(options.clusters));
  std::uint64_t bits;
  const double lf = options.labeled_fraction;
  static_assert(sizeof(bits) == sizeof(lf));
  std::memcpy(&bits, &lf, sizeof(bits));
  mix(bits);
  mix(static_cast<std::uint64_t>(options.kmeans_restarts));
  mix(static_cast<std::uint64_t>(options.min_document_frequency));
  return h;
}

std::shared_ptr<const trace::TraceDatabase> ArtifactCache::database(
    const sim::SimulationConfig& config) {
  const std::uint64_t key = config.fingerprint();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
      const auto it = databases_.find(key);
      if (it != databases_.end()) {
        ++stats_.database.hits;
        count_event("fa.cache.hits", "database");
        return it->second;
      }
    }
    ++stats_.database.misses;
    count_event("fa.cache.misses", "database");
  }
  const auto start = std::chrono::steady_clock::now();
  auto db = std::make_shared<const trace::TraceDatabase>(
      sim::simulate(config));
  record_build_seconds("database", start);
  obs::counter("fa.cache.db_bytes_estimated").add(estimate_bytes(*db));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.database.builds;
  count_event("fa.cache.builds", "database");
  if (!enabled_) return db;
  // A concurrent miss may have inserted first; keep the incumbent so every
  // caller shares one object.
  const auto [it, inserted] = databases_.emplace(key, std::move(db));
  return it->second;
}

std::shared_ptr<const AnalysisPipeline> ArtifactCache::pipeline(
    const sim::SimulationConfig& config, std::uint64_t seed,
    const ClassifierOptions& options) {
  const std::uint64_t key =
      pipeline_key(config.fingerprint(), seed, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
      const auto it = pipelines_.find(key);
      if (it != pipelines_.end()) {
        ++stats_.pipeline.hits;
        count_event("fa.cache.hits", "pipeline");
        return it->second;
      }
    }
    ++stats_.pipeline.misses;
    count_event("fa.cache.misses", "pipeline");
  }
  const auto start = std::chrono::steady_clock::now();
  auto owner = build_pipeline(database(config), seed, options);
  record_build_seconds("pipeline", start);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.pipeline.builds;
  count_event("fa.cache.builds", "pipeline");
  if (!enabled_) return owner;
  const auto [it, inserted] = pipelines_.emplace(key, std::move(owner));
  return it->second;
}

std::shared_ptr<const AnalysisPipeline> ArtifactCache::pipeline(
    std::shared_ptr<const trace::TraceDatabase> db, std::uint64_t seed,
    const ClassifierOptions& options) {
  const auto key = pipeline_key(
      reinterpret_cast<std::uint64_t>(db.get()), seed, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
      const auto it = pipelines_.find(key);
      if (it != pipelines_.end()) {
        ++stats_.pipeline.hits;
        count_event("fa.cache.hits", "pipeline");
        return it->second;
      }
    }
    ++stats_.pipeline.misses;
    count_event("fa.cache.misses", "pipeline");
  }
  const auto start = std::chrono::steady_clock::now();
  auto owner = build_pipeline(std::move(db), seed, options);
  record_build_seconds("pipeline", start);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.pipeline.builds;
  count_event("fa.cache.builds", "pipeline");
  if (!enabled_) return owner;
  const auto [it, inserted] = pipelines_.emplace(key, std::move(owner));
  return it->second;
}

void ArtifactCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
  if (!enabled) {
    databases_.clear();
    pipelines_.clear();
  }
}

bool ArtifactCache::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  databases_.clear();
  pipelines_.clear();
  stats_ = Stats{};
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ArtifactCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.hits();
}

std::size_t ArtifactCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.misses();
}

AnalysisContext cached_context(const sim::SimulationConfig& config,
                               std::uint64_t seed,
                               const ClassifierOptions& options) {
  auto& cache = ArtifactCache::global();
  return {cache.database(config), cache.pipeline(config, seed, options)};
}

}  // namespace fa::analysis
