#include "src/detect/scoring.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "src/util/error.h"

namespace fa::detect {

double DetectionScore::precision() const {
  const std::size_t total = true_positive_alerts + false_positive_alerts;
  if (total == 0) return 1.0;
  return static_cast<double>(true_positive_alerts) /
         static_cast<double>(total);
}

double DetectionScore::recall() const {
  if (changes == 0) return 1.0;
  return static_cast<double>(detected) / static_cast<double>(changes);
}

Duration DetectionScore::median_latency() const {
  if (latencies.empty()) return 0;
  std::vector<Duration> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  // Even count: lower of the two middle values (stays an integer Duration).
  return sorted[(n - 1) / 2];
}

std::string DetectionScore::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "changes=%zu detected=%zu tp=%zu fp=%zu precision=%.4f "
                "recall=%.4f median_latency_days=%.2f",
                changes, detected, true_positive_alerts,
                false_positive_alerts, precision(), recall(),
                to_days(median_latency()));
  return buf;
}

DetectionScore score_alerts(const std::vector<TimePoint>& change_points,
                            const std::vector<Alert>& alerts,
                            const ScoreOptions& options) {
  require(options.match_horizon > 0,
          "score_alerts: match_horizon must be positive");
  require(std::is_sorted(change_points.begin(), change_points.end()),
          "score_alerts: change points must be sorted");

  DetectionScore score;
  score.changes = change_points.size();

  std::vector<TimePoint> first_hit(
      change_points.size(), std::numeric_limits<TimePoint>::max());

  for (const Alert& alert : alerts) {
    if (options.rate_alerts_only && alert.kind != AlertKind::kRateShift) {
      continue;
    }
    // Most recent change at or before the alert.
    auto it = std::upper_bound(change_points.begin(), change_points.end(),
                               alert.at);
    if (it == change_points.begin()) {
      ++score.false_positive_alerts;
      continue;
    }
    const std::size_t idx =
        static_cast<std::size_t>(it - change_points.begin()) - 1;
    if (alert.at < change_points[idx] + options.match_horizon) {
      ++score.true_positive_alerts;
      first_hit[idx] = std::min(first_hit[idx], alert.at);
    } else {
      ++score.false_positive_alerts;
    }
  }

  for (std::size_t i = 0; i < change_points.size(); ++i) {
    if (first_hit[i] == std::numeric_limits<TimePoint>::max()) continue;
    ++score.detected;
    score.latencies.push_back(first_hit[i] - change_points[i]);
  }
  return score;
}

}  // namespace fa::detect
