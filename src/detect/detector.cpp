#include "src/detect/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/util/error.h"

namespace fa::detect {
namespace {

// Channel layout: one "all" channel, then the five subsystems, the two
// machine types, and the six failure classes, in enum order. The index math
// in ingest() relies on this layout.
constexpr std::size_t kAllChannel = 0;
constexpr std::size_t kSubsystemBase = 1;
constexpr std::size_t kTypeBase = kSubsystemBase + trace::kSubsystemCount;
constexpr std::size_t kClassBase = kTypeBase + trace::kMachineTypeCount;
constexpr std::size_t kRateChannelCount = kClassBase + trace::kFailureClassCount;

std::string channel_token(std::string_view raw) {
  std::string token(raw);
  std::replace(token.begin(), token.end(), ' ', '_');
  return token;
}

double sample_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

}  // namespace

std::string_view to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kRateShift:
      return "rate";
    case AlertKind::kUsageShift:
      return "usage";
  }
  throw Error("to_string: invalid AlertKind");
}

std::string alert_line(const Alert& alert) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ALERT t=%lld (%s) kind=%s stratum=%s observed=%.4f "
                "baseline=%.4f score=%.4f",
                static_cast<long long>(alert.at), format_time(alert.at).c_str(),
                std::string(to_string(alert.kind)).c_str(),
                alert.stratum.c_str(), alert.observed, alert.baseline,
                alert.score);
  return buf;
}

std::string DetectorReport::alert_log() const {
  std::string log;
  for (const Alert& a : alerts) {
    log += alert_line(a);
    log += '\n';
  }
  return log;
}

std::string DetectorReport::to_string() const {
  std::string out;
  char buf[320];
  std::snprintf(buf, sizeof(buf), "stream: %s .. %s\n",
                format_time(stream_begin).c_str(),
                format_time(stream_end).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "events: %llu (tickets %llu, crashes %llu, usage %llu)\n",
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(tickets),
                static_cast<unsigned long long>(crash_tickets),
                static_cast<unsigned long long>(usage_samples));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "dropped: duplicates=%llu late=%llu buffered=%llu\n",
                static_cast<unsigned long long>(duplicates_dropped),
                static_cast<unsigned long long>(late_dropped),
                static_cast<unsigned long long>(reordered_buffered));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "lag (minutes): event p50=%.0f p99=%.0f max=%.0f | watermark "
                "p99=%.0f max=%.0f | detection p50=%.0f max=%.0f | "
                "ooo_occupancy max=%.0f\n",
                event_lag.quantile(0.50), event_lag.quantile(0.99),
                event_lag.max, watermark_lag.quantile(0.99),
                watermark_lag.max, detection_lag.quantile(0.50),
                detection_lag.max, ooo_occupancy.max);
  out += buf;
  std::snprintf(buf, sizeof(buf), "recurrence: %llu/%llu (%.2f%%)\n",
                static_cast<unsigned long long>(recurrent_crashes),
                static_cast<unsigned long long>(crash_tickets),
                100.0 * recurrence_fraction());
  out += buf;
  out += "strata:\n";
  for (const StratumStats& s : strata) {
    std::snprintf(buf, sizeof(buf),
                  "  %-18s servers=%-6zu crashes=%-6llu window_rate=%.4f "
                  "cum_rate=%.4f alerts=%llu%s\n",
                  s.name.c_str(), s.servers,
                  static_cast<unsigned long long>(s.crashes),
                  s.mean_window_rate, s.cumulative_weekly_rate,
                  static_cast<unsigned long long>(s.alerts),
                  s.armed ? " [armed]" : "");
    out += buf;
  }
  out += "usage:\n";
  for (const UsageStats& u : usage) {
    std::snprintf(buf, sizeof(buf),
                  "  %-4s samples=%-7llu mean=%.2f ewma=%.2f alerts=%llu\n",
                  u.name.c_str(), static_cast<unsigned long long>(u.samples),
                  u.mean, u.ewma, static_cast<unsigned long long>(u.alerts));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "alerts: %zu\n", alerts.size());
  out += buf;
  return out;
}

OnlineDetector::OnlineDetector(DetectorOptions options)
    : options_(std::move(options)) {
  require(options_.window > 0, "OnlineDetector: window must be positive");
  require(options_.tick > 0, "OnlineDetector: tick must be positive");
  require(options_.warmup >= options_.tick,
          "OnlineDetector: warmup must cover at least one tick");
  require(options_.cusum_ratio > 1.0,
          "OnlineDetector: cusum_ratio must exceed 1");
  require(options_.cusum_threshold > 0.0,
          "OnlineDetector: cusum_threshold must be positive");
  require(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
          "OnlineDetector: ewma_alpha must lie in (0, 1]");
  require(options_.out_of_order != OutOfOrderPolicy::kBuffer ||
              options_.reorder_slack > 0,
          "OnlineDetector: kBuffer needs a positive reorder_slack");
}

void OnlineDetector::begin(const trace::StreamMeta& meta) {
  require(!begun_, "OnlineDetector: begin() called twice");
  require(meta.window.length() > 0, "OnlineDetector: empty stream window");
  begun_ = true;
  meta_ = meta;
  watermark_ = meta.window.begin;
  tick_start_ = meta.window.begin;
  learn_ticks_target_ =
      static_cast<std::uint64_t>(options_.warmup / options_.tick);
  report_.stream_begin = meta.window.begin;

  rates_.resize(kRateChannelCount);
  rates_[kAllChannel].name = "all";
  rates_[kAllChannel].servers = meta.server_count;
  for (int sys = 0; sys < trace::kSubsystemCount; ++sys) {
    RateChannel& ch = rates_[kSubsystemBase + sys];
    ch.name = "sys=" + channel_token(trace::subsystem_name(
                           static_cast<trace::Subsystem>(sys)));
    ch.servers = meta.servers_by_subsystem[static_cast<std::size_t>(sys)];
  }
  for (int type = 0; type < trace::kMachineTypeCount; ++type) {
    RateChannel& ch = rates_[kTypeBase + type];
    ch.name = "type=" + channel_token(trace::to_string(
                            static_cast<trace::MachineType>(type)));
    ch.servers = meta.servers_by_type[static_cast<std::size_t>(type)];
  }
  for (trace::FailureClass cls : trace::kAllFailureClasses) {
    RateChannel& ch = rates_[kClassBase + static_cast<std::size_t>(cls)];
    ch.name = "class=" + channel_token(trace::to_string(cls));
    ch.servers = meta.server_count;
  }

  usage_.resize(2);
  usage_[0].name = "cpu";
  usage_[1].name = "mem";
}

void OnlineDetector::on_event(const trace::StreamEvent& event) {
  require(begun_, "OnlineDetector: on_event() before begin()");
  require(!finished_, "OnlineDetector: on_event() after finish()");
  // Arrival-disorder accounting, shared by every policy: how far behind
  // the newest arrival seen so far did this event land? Zero on an ordered
  // stream.
  const bool late_arrival = event.at < arrival_high_;
  event_lag_.record(
      late_arrival ? static_cast<double>(arrival_high_ - event.at) : 0.0);
  arrival_high_ = std::max(arrival_high_, event.at);
  switch (options_.out_of_order) {
    case OutOfOrderPolicy::kReject:
      require(event.at >= watermark_,
              "OnlineDetector: out-of-order event on a strict stream");
      ingest(event);
      return;
    case OutOfOrderPolicy::kDrop:
      if (event.at < watermark_) {
        ++report_.late_dropped;
        return;
      }
      ingest(event);
      return;
    case OutOfOrderPolicy::kBuffer: {
      if (late_arrival) ++report_.reordered_buffered;
      pending_.push(Pending{event, arrival_seq_++});
      // Anything older than the slack behind the newest arrival can no
      // longer be overtaken: release it in timestamp order.
      const TimePoint horizon = arrival_high_ - options_.reorder_slack;
      while (!pending_.empty() && pending_.top().event.at <= horizon) {
        trace::StreamEvent next = pending_.top().event;
        pending_.pop();
        if (next.at < watermark_) {
          ++report_.late_dropped;
        } else {
          ingest(next);
        }
      }
      ooo_occupancy_.record(static_cast<double>(pending_.size()));
      return;
    }
  }
  throw Error("OnlineDetector: invalid out-of-order policy");
}

void OnlineDetector::ingest(const trace::StreamEvent& event) {
  // Staleness at processing time: the arrival frontier minus the event's
  // own timestamp — the reorder buffer's hold time under kBuffer, zero on
  // the direct path.
  watermark_lag_.record(
      event.at < arrival_high_
          ? static_cast<double>(arrival_high_ - event.at)
          : 0.0);
  advance_to(event.at);
  watermark_ = std::max(watermark_, event.at);
  ++report_.events;

  if (event.kind == trace::StreamEventKind::kTicket) {
    const trace::Ticket& ticket = event.ticket;
    ++report_.tickets;

    // Duplicate ticket ids within the sliding window are retransmissions.
    while (!window_id_queue_.empty() &&
           window_id_queue_.front().first + options_.window <= event.at) {
      window_ids_.erase(window_id_queue_.front().second);
      window_id_queue_.pop_front();
    }
    if (!window_ids_.insert(ticket.id.value).second) {
      ++report_.duplicates_dropped;
      return;
    }
    window_id_queue_.emplace_back(event.at, ticket.id.value);

    if (!ticket.is_crash) return;
    ++report_.crash_tickets;

    auto [it, first_crash] =
        last_crash_.try_emplace(ticket.server.value, event.at);
    if (!first_crash) {
      if (event.at - it->second <= options_.recurrence_window) {
        ++report_.recurrent_crashes;
      }
      it->second = event.at;
    }

    // Is this the incident's first crash ticket (within recent memory)?
    // Chain follow-ups refresh the entry and never count as arrivals.
    while (!incident_queue_.empty() &&
           incident_queue_.front().first + options_.window <= event.at) {
      const auto [seen_at, id] = incident_queue_.front();
      incident_queue_.pop_front();
      const auto it = incident_last_seen_.find(id);
      if (it != incident_last_seen_.end() && it->second == seen_at) {
        incident_last_seen_.erase(it);
      }
    }
    const auto [seen, new_incident] =
        incident_last_seen_.try_emplace(ticket.incident.value, event.at);
    if (!new_incident) seen->second = event.at;
    incident_queue_.emplace_back(event.at, ticket.incident.value);

    const std::size_t channels[] = {
        kAllChannel,
        kSubsystemBase + ticket.subsystem,
        kTypeBase + static_cast<std::size_t>(event.machine_type),
        kClassBase + static_cast<std::size_t>(ticket.true_class),
    };
    for (std::size_t idx : channels) {
      RateChannel& ch = rates_[idx];
      ch.in_window.push_back(event.at);
      ++ch.total;
      if (new_incident) ++ch.tick_count;
    }
    return;
  }

  ++report_.usage_samples;
  const trace::WeeklyUsage& sample = event.usage;
  const double values[] = {sample.cpu_util, sample.mem_util};
  for (std::size_t i = 0; i < usage_.size(); ++i) {
    UsageChannel& ch = usage_[i];
    ++ch.samples;
    ch.sum += values[i];
    ch.tick_sum += values[i];
    ++ch.tick_n;
  }
}

void OnlineDetector::advance_to(TimePoint t) {
  while (tick_start_ + options_.tick <= t) {
    close_tick(tick_start_ + options_.tick);
    tick_start_ += options_.tick;
  }
}

void OnlineDetector::close_tick(TimePoint tick_end) {
  for (RateChannel& ch : rates_) close_rate_tick(ch, tick_end);
  for (UsageChannel& ch : usage_) close_usage_tick(ch, tick_end);
}

void OnlineDetector::evict_window(RateChannel& channel, TimePoint now) {
  while (!channel.in_window.empty() &&
         channel.in_window.front() + options_.window <= now) {
    channel.in_window.pop_front();
  }
}

void OnlineDetector::close_rate_tick(RateChannel& channel, TimePoint tick_end) {
  evict_window(channel, tick_end);

  // Sample the sliding-window rate once a full window exists, in failures
  // per server per week (the unit the batch analysis reports).
  if (channel.servers > 0 &&
      tick_end - meta_.window.begin >= options_.window) {
    const double weeks = static_cast<double>(options_.window) /
                         static_cast<double>(kMinutesPerWeek);
    channel.rate_sum += static_cast<double>(channel.in_window.size()) /
                        (static_cast<double>(channel.servers) * weeks);
    ++channel.rate_samples;
  }

  const std::uint64_t n = channel.tick_count;
  channel.tick_count = 0;
  if (channel.disabled) return;

  if (!channel.armed) {
    channel.learn_sum += static_cast<double>(n);
    ++channel.learn_ticks;
    // One shot at the warmup deadline: enough incidents for a Poisson
    // baseline arms the channel, too few disarms it for good.
    if (channel.learn_ticks >= learn_ticks_target_) {
      if (channel.learn_sum >=
          static_cast<double>(options_.min_warmup_events)) {
        channel.lambda0 =
            channel.learn_sum / static_cast<double>(channel.learn_ticks);
        channel.armed = true;
        channel.cusum = 0.0;
      } else {
        channel.disabled = true;
      }
    }
    return;
  }

  // Poisson likelihood-ratio CUSUM (in nats) against the frozen baseline,
  // designed for a rate step of factor `cusum_ratio`.
  const double rho = options_.cusum_ratio;
  const double prev_cusum = channel.cusum;
  channel.cusum = std::max(
      0.0, channel.cusum + static_cast<double>(n) * std::log(rho) -
               channel.lambda0 * (rho - 1.0));
  // Excursion onset: the tick where the statistic first left zero — the
  // earliest moment the eventual alert can be blamed on. Lag = alert tick
  // minus the start of that tick (its events carry timestamps >= there).
  if (channel.cusum <= 0.0) {
    channel.onset = -1;
  } else if (prev_cusum <= 0.0) {
    channel.onset = tick_end - options_.tick;
  }
  if (channel.cusum > options_.cusum_threshold) {
    Alert alert;
    alert.at = tick_end;
    alert.kind = AlertKind::kRateShift;
    alert.stratum = channel.name;
    const double weeks_per_window = static_cast<double>(options_.window) /
                                    static_cast<double>(options_.tick);
    alert.observed =
        static_cast<double>(channel.in_window.size()) / weeks_per_window;
    alert.baseline = channel.lambda0;
    alert.score = channel.cusum;
    alert.onset_lag =
        channel.onset >= 0 ? tick_end - channel.onset : Duration{0};
    detection_lag_.record(static_cast<double>(alert.onset_lag));
    ++channel.alerts;
    raise(std::move(alert));
    // Re-learn the baseline at the post-change level so a persistent step
    // produces exactly one alert per stratum.
    channel.armed = false;
    channel.learn_sum = 0.0;
    channel.learn_ticks = 0;
    channel.cusum = 0.0;
    channel.onset = -1;
  }
}

void OnlineDetector::close_usage_tick(UsageChannel& channel,
                                      TimePoint tick_end) {
  if (channel.tick_n == 0) return;  // usage arrives weekly; idle ticks skip
  const double mean =
      channel.tick_sum / static_cast<double>(channel.tick_n);
  channel.tick_sum = 0.0;
  channel.tick_n = 0;

  if (!channel.ewma_primed) {
    channel.ewma = mean;
    channel.ewma_primed = true;
  } else {
    channel.ewma = options_.ewma_alpha * mean +
                   (1.0 - options_.ewma_alpha) * channel.ewma;
  }

  // Learning counts data-bearing ticks (one per usage week), so the usage
  // warmup matches the rate warmup in wall-clock terms.
  const std::size_t learn_target = std::max<std::size_t>(
      4, static_cast<std::size_t>(options_.warmup / kMinutesPerWeek));
  if (!channel.armed) {
    channel.learn_means.push_back(mean);
    if (channel.learn_means.size() >= learn_target) {
      double mu = 0.0;
      for (double m : channel.learn_means) mu += m;
      channel.mu0 = mu / static_cast<double>(channel.learn_means.size());
      channel.sigma0 =
          std::max(options_.usage_min_sigma, sample_stddev(channel.learn_means));
      channel.armed = true;
      channel.cusum_up = 0.0;
      channel.cusum_down = 0.0;
      channel.learn_means.clear();
    }
    return;
  }

  // Two-sided standardized CUSUM on the EWMA-smoothed tick mean.
  const double z = (channel.ewma - channel.mu0) / channel.sigma0;
  channel.cusum_up =
      std::max(0.0, channel.cusum_up + z - options_.usage_k_sigma);
  channel.cusum_down =
      std::max(0.0, channel.cusum_down - z - options_.usage_k_sigma);
  const double score = std::max(channel.cusum_up, channel.cusum_down);
  if (score > options_.usage_h_sigma) {
    Alert alert;
    alert.at = tick_end;
    alert.kind = AlertKind::kUsageShift;
    alert.stratum = "usage=" + channel.name;
    alert.observed = channel.ewma;
    alert.baseline = channel.mu0;
    alert.score = score;
    ++channel.alerts;
    raise(std::move(alert));
    channel.armed = false;
    channel.cusum_up = 0.0;
    channel.cusum_down = 0.0;
  }
}

void OnlineDetector::raise(Alert alert) {
  if (alert_callback_) alert_callback_(alert);
  report_.alerts.push_back(std::move(alert));
}

void OnlineDetector::finish(TimePoint stream_end) {
  require(begun_, "OnlineDetector: finish() before begin()");
  require(!finished_, "OnlineDetector: finish() called twice");
  require(stream_end >= watermark_,
          "OnlineDetector: stream_end precedes delivered events");

  // Release everything still held in the reorder buffer, in time order.
  while (!pending_.empty()) {
    trace::StreamEvent next = pending_.top().event;
    pending_.pop();
    if (next.at < watermark_) {
      ++report_.late_dropped;
    } else {
      ingest(next);
    }
  }

  // Close every whole tick the stream covered; a trailing partial tick has
  // no comparable Poisson baseline and is discarded.
  advance_to(stream_end);
  finished_ = true;
  report_.stream_end = stream_end;

  report_.strata.reserve(rates_.size());
  for (const RateChannel& ch : rates_) {
    StratumStats s;
    s.name = ch.name;
    s.servers = ch.servers;
    s.crashes = ch.total;
    s.armed = ch.armed;
    s.baseline_per_tick = ch.lambda0;
    s.mean_window_rate =
        ch.rate_samples > 0
            ? ch.rate_sum / static_cast<double>(ch.rate_samples)
            : 0.0;
    const double weeks =
        static_cast<double>(stream_end - meta_.window.begin) /
        static_cast<double>(kMinutesPerWeek);
    s.cumulative_weekly_rate =
        ch.servers > 0 && weeks > 0.0
            ? static_cast<double>(ch.total) /
                  (static_cast<double>(ch.servers) * weeks)
            : 0.0;
    s.alerts = ch.alerts;
    report_.strata.push_back(std::move(s));
  }
  report_.usage.reserve(usage_.size());
  for (const UsageChannel& ch : usage_) {
    UsageStats u;
    u.name = ch.name;
    u.samples = ch.samples;
    u.mean = ch.samples > 0
                 ? ch.sum / static_cast<double>(ch.samples)
                 : 0.0;
    u.ewma = ch.ewma;
    u.alerts = ch.alerts;
    report_.usage.push_back(std::move(u));
  }
  report_.event_lag = event_lag_;
  report_.watermark_lag = watermark_lag_;
  report_.detection_lag = detection_lag_;
  report_.ooo_occupancy = ooo_occupancy_;

  // One deterministic per-tenant obs flush at stream close (event counts
  // and sim-time lag histograms only; no wall-clock data).
  const obs::Labels labels = {{"tenant", options_.tenant}};
  obs::counter("fa.detect.events", labels).add(report_.events);
  obs::counter("fa.detect.crash_tickets", labels).add(report_.crash_tickets);
  obs::counter("fa.detect.usage_samples", labels).add(report_.usage_samples);
  obs::counter("fa.detect.alerts", labels).add(report_.alerts.size());
  obs::counter("fa.detect.duplicates_dropped", labels)
      .add(report_.duplicates_dropped);
  obs::counter("fa.detect.late_dropped", labels).add(report_.late_dropped);
  obs::counter("fa.detect.reordered_buffered", labels)
      .add(report_.reordered_buffered);
  const auto det = obs::Stability::kDeterministic;
  obs::histogram("fa.detect.lag.event_minutes", obs::sim_lag_minutes_bounds(),
                 labels, det)
      .merge(event_lag_);
  obs::histogram("fa.detect.lag.watermark_minutes",
                 obs::sim_lag_minutes_bounds(), labels, det)
      .merge(watermark_lag_);
  obs::histogram("fa.detect.lag.detection_minutes",
                 obs::sim_lag_minutes_bounds(), labels, det)
      .merge(detection_lag_);
  obs::histogram("fa.detect.ooo.occupancy", obs::occupancy_bounds(), labels,
                 det)
      .merge(ooo_occupancy_);
}

const DetectorReport& OnlineDetector::report() const {
  require(finished_, "OnlineDetector: report() before finish()");
  return report_;
}

OnlineDetector::LiveStats OnlineDetector::live_stats() const {
  require(begun_, "OnlineDetector: live_stats() before begin()");
  LiveStats s;
  s.watermark = watermark_;
  s.arrival_high = arrival_high_;
  s.events = report_.events;
  s.tickets = report_.tickets;
  s.crash_tickets = report_.crash_tickets;
  s.usage_samples = report_.usage_samples;
  s.duplicates_dropped = report_.duplicates_dropped;
  s.reordered_buffered = report_.reordered_buffered;
  s.late_dropped = report_.late_dropped;
  s.recurrent_crashes = report_.recurrent_crashes;
  s.alerts = report_.alerts.size();
  s.ooo_pending = pending_.size();
  s.event_lag = event_lag_;
  s.watermark_lag = watermark_lag_;
  s.detection_lag = detection_lag_;
  s.ooo_occupancy = ooo_occupancy_;
  s.strata.reserve(rates_.size());
  const double weeks = static_cast<double>(options_.window) /
                       static_cast<double>(kMinutesPerWeek);
  for (const RateChannel& ch : rates_) {
    LiveStats::Stratum st;
    st.name = ch.name;
    st.crashes = ch.total;
    st.window_rate =
        ch.servers > 0
            ? static_cast<double>(ch.in_window.size()) /
                  (static_cast<double>(ch.servers) * weeks)
            : 0.0;
    st.alerts = ch.alerts;
    st.armed = ch.armed;
    s.strata.push_back(std::move(st));
  }
  return s;
}

}  // namespace fa::detect
