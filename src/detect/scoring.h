// Ground-truth scoring of online detection.
//
// The simulator-side emitter (src/sim/stream.h) injects scripted hazard
// shifts at known instants; the detector emits alerts with detection
// timestamps. score_alerts() joins the two event-level:
//
//   * an alert is a true positive iff some change point c satisfies
//     c <= alert.at < c + match_horizon (alerts attribute to the most
//     recent change; every other alert is a false positive);
//   * a change is detected iff at least one alert lands in its horizon;
//     recall = detected changes / changes;
//   * precision = true-positive alerts / all alerts;
//   * detection latency of a detected change = first in-horizon alert
//     timestamp minus the change instant.
//
// By default only rate-shift alerts are scored (the injected ground truth
// perturbs failure rates, not usage), so usage-channel alerts neither help
// nor hurt unless explicitly included.
#pragma once

#include <string>
#include <vector>

#include "src/detect/detector.h"
#include "src/util/sim_time.h"

namespace fa::detect {

struct ScoreOptions {
  // An alert within [change, change + match_horizon) counts for the change.
  // The default covers the slowest armed strata: a low-rate channel near
  // the arming floor needs weeks of post-change data to accumulate the
  // alert threshold, an order of magnitude longer than the aggregate
  // channels' few-day latency.
  Duration match_horizon = 12 * kMinutesPerWeek;
  // Restrict scoring to rate-shift alerts (the kind the injected hazard
  // ground truth produces).
  bool rate_alerts_only = true;
};

struct DetectionScore {
  std::size_t changes = 0;   // ground-truth change points
  std::size_t detected = 0;  // changes with at least one in-horizon alert
  std::size_t true_positive_alerts = 0;
  std::size_t false_positive_alerts = 0;
  // One entry per detected change: first in-horizon alert minus change.
  std::vector<Duration> latencies;

  // Conventions for degenerate streams: no alerts -> precision 1 (nothing
  // claimed falsely); no changes -> recall 1 (nothing missed).
  double precision() const;
  double recall() const;
  Duration median_latency() const;  // 0 when nothing was detected

  std::string to_string() const;
};

DetectionScore score_alerts(const std::vector<TimePoint>& change_points,
                            const std::vector<Alert>& alerts,
                            const ScoreOptions& options = {});

}  // namespace fa::detect
