#include "src/detect/serve.h"

#include <memory>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::detect {

TenantResult serve_tenant(const TenantSpec& spec,
                          const ScoreOptions& score_options,
                          const HealthOptions& health) {
  require(!spec.name.empty(), "serve_tenant: tenant name must be non-empty");
  obs::Span span("detect.serve_tenant");

  DetectorOptions options = spec.detector;
  options.tenant = spec.name;
  OnlineDetector detector(std::move(options));

  // Sink chain, innermost first: detector <- throttle <- health monitor.
  // Each stage forwards events unchanged; the chain only adds accounting.
  trace::StreamSink* sink = &detector;
  std::unique_ptr<ThrottledSink> throttle;
  if (spec.throttle.service_minutes > 0) {
    throttle =
        std::make_unique<ThrottledSink>(*sink, spec.throttle, spec.name);
    sink = throttle.get();
  }
  TenantResult result;
  std::unique_ptr<HealthMonitor> monitor;
  if (health.every > 0) {
    monitor = std::make_unique<HealthMonitor>(
        *sink, detector, throttle.get(), health, spec.name,
        [&result](const Heartbeat& hb) { result.heartbeats.push_back(hb); });
    sink = monitor.get();
  }

  const trace::TraceDatabase db = sim::simulate(spec.config);
  sim::emit_stream(db, spec.scenario, *sink);

  result.name = spec.name;
  result.change_points = spec.scenario.change_points();
  result.report = detector.report();
  result.score =
      score_alerts(result.change_points, result.report.alerts, score_options);
  if (throttle) result.backpressure = throttle->stats();
  return result;
}

std::vector<TenantResult> serve_tenants(const std::vector<TenantSpec>& specs,
                                        const ScoreOptions& score_options,
                                        const HealthOptions& health) {
  obs::Span span("detect.serve");
  std::vector<TenantResult> results(specs.size());
  // Tenant i writes only slot i and owns all of its randomness (the config
  // seed), so the result set is independent of scheduling. The inner
  // simulate() also uses parallel_for; nested calls are safe because a
  // caller always drains its own batch.
  parallel_for(specs.size(), [&](std::size_t i) {
    results[i] = serve_tenant(specs[i], score_options, health);
  });
  obs::counter("fa.detect.serve.tenants").add(specs.size());
  return results;
}

}  // namespace fa::detect
