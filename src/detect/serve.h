// Multi-tenant ingestion service: runs many independent tenant streams
// concurrently over the shared ThreadPool.
//
// Each tenant is one (fleet config, stream scenario, detector options)
// triple: the tenant's fleet is simulated, replayed as an event stream, and
// folded through its own OnlineDetector. Tenants share nothing but the
// pool, every tenant's randomness comes from its own config seed, and each
// result lands in the tenant's slot of the output vector — so the full
// result set (reports, alert logs, scores) is bit-identical at any
// --threads setting and results always come back in spec order.
//
// Per-tenant observability rides on the detector's fa.detect.* counter
// families, labeled {tenant=<name>}: the registry snapshot after a serve
// run shows each tenant's event/alert totals independently.
#pragma once

#include <string>
#include <vector>

#include "src/detect/detector.h"
#include "src/detect/scoring.h"
#include "src/sim/config.h"
#include "src/sim/stream.h"

namespace fa::detect {

struct TenantSpec {
  std::string name;
  sim::SimulationConfig config;     // fleet + seed (tenant-owned randomness)
  sim::StreamScenario scenario;     // hazard timeline + optional cutoff
  DetectorOptions detector;         // detector.tenant is overwritten by name
};

struct TenantResult {
  std::string name;
  std::vector<TimePoint> change_points;  // scenario ground truth
  DetectorReport report;
  DetectionScore score;
};

// Serves every tenant (parallel across tenants, deterministic output).
// Scoring uses `score_options` against each scenario's change points.
std::vector<TenantResult> serve_tenants(const std::vector<TenantSpec>& specs,
                                        const ScoreOptions& score_options = {});

// Single-tenant convenience: simulate, stream, detect, score.
TenantResult serve_tenant(const TenantSpec& spec,
                          const ScoreOptions& score_options = {});

}  // namespace fa::detect
