// Multi-tenant ingestion service: runs many independent tenant streams
// concurrently over the shared ThreadPool.
//
// Each tenant is one (fleet config, stream scenario, detector options)
// triple: the tenant's fleet is simulated, replayed as an event stream, and
// folded through its own OnlineDetector. Tenants share nothing but the
// pool, every tenant's randomness comes from its own config seed, and each
// result lands in the tenant's slot of the output vector — so the full
// result set (reports, alert logs, scores) is bit-identical at any
// --threads setting and results always come back in spec order.
//
// Per-tenant observability rides on the detector's fa.detect.* counter
// families, labeled {tenant=<name>}: the registry snapshot after a serve
// run shows each tenant's event/alert totals independently.
#pragma once

#include <string>
#include <vector>

#include "src/detect/detector.h"
#include "src/detect/health.h"
#include "src/detect/scoring.h"
#include "src/sim/config.h"
#include "src/sim/stream.h"

namespace fa::detect {

struct TenantSpec {
  std::string name;
  sim::SimulationConfig config;     // fleet + seed (tenant-owned randomness)
  sim::StreamScenario scenario;     // hazard timeline + optional cutoff
  DetectorOptions detector;         // detector.tenant is overwritten by name
  // Deterministic slow-consumer model (health.h): a nonzero service time
  // inserts a ThrottledSink in front of the detector. Events are forwarded
  // unchanged, so detection results are unaffected — only the
  // backpressure accounting reacts.
  ThrottleSpec throttle;
};

struct TenantResult {
  std::string name;
  std::vector<TimePoint> change_points;  // scenario ground truth
  DetectorReport report;
  DetectionScore score;
  BackpressureStats backpressure;    // zeroes unless the tenant is throttled
  std::vector<Heartbeat> heartbeats; // empty unless HealthOptions.every > 0
};

// Serves every tenant (parallel across tenants, deterministic output).
// Scoring uses `score_options` against each scenario's change points. A
// nonzero `health.every` collects per-tenant heartbeat lines (emitted
// serially inside each tenant's stream, so they are deterministic per
// tenant regardless of thread count).
std::vector<TenantResult> serve_tenants(const std::vector<TenantSpec>& specs,
                                        const ScoreOptions& score_options = {},
                                        const HealthOptions& health = {});

// Single-tenant convenience: simulate, stream, detect, score.
TenantResult serve_tenant(const TenantSpec& spec,
                          const ScoreOptions& score_options = {},
                          const HealthOptions& health = {});

}  // namespace fa::detect
