// Online failure detection over a timestamp-ordered event stream.
//
// OnlineDetector is a trace::StreamSink that folds the feed through
// incremental estimators whose memory is bounded by the sliding window and
// the number of strata — never by stream length, and never by a
// materialized TraceDatabase:
//
//   * sliding-window failure rates per stratum (all machines, each
//     subsystem, each machine type, each recorded failure class): a deque
//     of in-window crash timestamps, sampled at every tick close into a
//     per-server-per-week rate comparable with the batch Fig. 2 numbers;
//   * change-point detection: a Poisson likelihood-ratio CUSUM per stratum
//     over per-tick crash counts. The baseline rate λ0 is learned during
//     the warmup period and then frozen; the statistic accumulates
//     S ← max(0, S + n·ln ρ − λ0(ρ−1)) for design ratio ρ and alerts when
//     S crosses the threshold (in nats). After an alert the channel
//     re-learns its baseline at the post-change level, so a persistent rate
//     step yields exactly one alert per stratum;
//   * EWMA smoothing + two-sided standardized CUSUM on the usage
//     covariates (fleet-mean CPU and memory utilization per tick);
//   * online recurrence tracking: the fraction of crashes that strike a
//     server already hit within the recurrence window, via a per-server
//     last-crash map (bounded by distinct crashed servers).
//
// Robustness policies (all deterministic, all counted in the report):
// duplicate ticket ids within the sliding window are dropped; out-of-order
// timestamps follow DetectorOptions::out_of_order — reject (throw), buffer
// (reorder within `reorder_slack`, later arrivals dropped as late), or
// drop. Every estimate and alert depends only on the event sequence, so a
// stream produces byte-identical alert logs at any --threads setting.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/obs/metrics.h"
#include "src/trace/event_stream.h"
#include "src/util/sim_time.h"

namespace fa::detect {

enum class OutOfOrderPolicy : std::uint8_t {
  kReject = 0,  // strict feed: an out-of-order timestamp throws
  kBuffer = 1,  // reorder within `reorder_slack`; later arrivals dropped
  kDrop = 2,    // drop any event older than the watermark
};

struct DetectorOptions {
  Duration window = kMinutesPerWeek;      // sliding rate window
  Duration tick = kMinutesPerDay;         // CUSUM evaluation cadence
  Duration warmup = 8 * kMinutesPerWeek;  // baseline learning period
  // Poisson CUSUM design: tuned to detect a rate ratio `cusum_ratio`;
  // alert when the statistic exceeds `cusum_threshold` nats.
  // Threshold in nats, tuned on stationary scale-0.5 replays: the worst
  // stationary excursion across 20 seeds peaks near 20 nats (the "other"
  // class mixes heterogeneous incident kinds and is the most overdispersed
  // stratum), while a genuine x4 step accumulates 2-3 nats/day on the
  // aggregate channels.
  double cusum_ratio = 3.0;
  double cusum_threshold = 22.0;
  // A rate channel arms only when its warmup saw at least this many
  // incidents; a stratum below the floor has no usable baseline and is
  // permanently disarmed (its rate estimators keep running, its CUSUM
  // stays silent). Arming strictly at the warmup deadline — never later —
  // keeps a post-change learning period from freezing a contaminated
  // baseline and alerting long after the fact.
  std::uint64_t min_warmup_events = 24;
  // Usage covariates: EWMA weight per tick mean, and the two-sided CUSUM
  // slack / threshold in (warmup-estimated) standard deviations, with a
  // floor on that deviation in percentage points.
  // The sigma floor absorbs slow fleet-composition drift (machines created
  // during the stream shift the fleet mean by a couple of points per year)
  // so only genuine level steps accumulate.
  double ewma_alpha = 0.3;
  double usage_k_sigma = 1.0;
  double usage_h_sigma = 10.0;
  double usage_min_sigma = 2.0;
  Duration recurrence_window = kMinutesPerWeek;
  OutOfOrderPolicy out_of_order = OutOfOrderPolicy::kReject;
  Duration reorder_slack = 0;  // kBuffer: max lateness absorbed
  // Label attached to this detector's obs metric family (fa.detect.*).
  std::string tenant = "default";
};

enum class AlertKind : std::uint8_t { kRateShift = 0, kUsageShift = 1 };
std::string_view to_string(AlertKind kind);

struct Alert {
  TimePoint at = 0;  // detection timestamp (the tick close that fired)
  AlertKind kind = AlertKind::kRateShift;
  std::string stratum;     // canonical channel name, e.g. "sys=Sys_II"
  double observed = 0.0;   // per-tick level at detection
  double baseline = 0.0;   // frozen per-tick baseline
  double score = 0.0;      // CUSUM statistic at the crossing
  // Sim-time detection lag: alert tick minus the start of the tick where
  // the CUSUM excursion began (rate alerts only; 0 for usage alerts).
  // Carried on the struct, never printed by alert_line() — the golden
  // alert-log format is pinned.
  Duration onset_lag = 0;
};

// Canonical single-line rendering (the alert-log format golden files pin).
std::string alert_line(const Alert& alert);

struct StratumStats {
  std::string name;
  std::size_t servers = 0;
  std::uint64_t crashes = 0;
  bool armed = false;           // CUSUM had enough warmup data
  double baseline_per_tick = 0.0;
  // Time-averaged sliding-window rate and whole-stream rate, both in
  // failures per server per week (the batch Fig. 2 unit).
  double mean_window_rate = 0.0;
  double cumulative_weekly_rate = 0.0;
  std::uint64_t alerts = 0;
};

struct UsageStats {
  std::string name;         // "cpu" / "mem"
  std::uint64_t samples = 0;
  double mean = 0.0;        // exact running mean over all samples
  double ewma = 0.0;        // per-tick EWMA of tick means
  std::uint64_t alerts = 0;
};

struct DetectorReport {
  TimePoint stream_begin = 0;
  TimePoint stream_end = 0;
  std::uint64_t events = 0;
  std::uint64_t tickets = 0;
  std::uint64_t crash_tickets = 0;
  std::uint64_t usage_samples = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t reordered_buffered = 0;
  std::uint64_t late_dropped = 0;
  std::uint64_t recurrent_crashes = 0;
  std::vector<StratumStats> strata;  // fixed channel order (all, sys, type, class)
  std::vector<UsageStats> usage;     // cpu, mem
  std::vector<Alert> alerts;         // in detection order

  // End-to-end lag accounting, all in deterministic sim-time minutes (or
  // entry counts for the occupancy histogram):
  //   event_lag      per-arrival disorder: newest-arrival-seen minus the
  //                  event's own timestamp (0 on an ordered stream);
  //   watermark_lag  per-ingest staleness: how far the arrival frontier had
  //                  run ahead when the event was finally processed
  //                  (reorder-buffer hold time under kBuffer);
  //   detection_lag  per-rate-alert onset lag (Alert::onset_lag);
  //   ooo_occupancy  reorder-buffer size sampled at each kBuffer arrival.
  obs::BucketStats event_lag;
  obs::BucketStats watermark_lag;
  obs::BucketStats detection_lag;
  obs::BucketStats ooo_occupancy;

  double recurrence_fraction() const {
    return crash_tickets > 0
               ? static_cast<double>(recurrent_crashes) /
                     static_cast<double>(crash_tickets)
               : 0.0;
  }
  // One alert_line() per alert (newline-terminated); byte-stable.
  std::string alert_log() const;
  std::string to_string() const;
};

class OnlineDetector final : public trace::StreamSink {
 public:
  explicit OnlineDetector(DetectorOptions options = {});

  void begin(const trace::StreamMeta& meta) override;
  void on_event(const trace::StreamEvent& event) override;
  void finish(TimePoint stream_end) override;

  // Live alert delivery (e.g. `fa_trace watch` printing); called in
  // detection order, before finish().
  void set_alert_callback(std::function<void(const Alert&)> callback) {
    alert_callback_ = std::move(callback);
  }

  bool finished() const { return finished_; }
  // Valid after finish().
  const DetectorReport& report() const;

  // Point-in-time view for the health heartbeat emitter: valid any time
  // after begin(), including mid-stream. Pure function of the events
  // processed so far, so snapshots taken at sim-time boundaries are
  // byte-identical at any thread count.
  struct LiveStats {
    TimePoint watermark = 0;     // highest processed event time
    TimePoint arrival_high = 0;  // newest arrival seen (frontier)
    std::uint64_t events = 0;
    std::uint64_t tickets = 0;
    std::uint64_t crash_tickets = 0;
    std::uint64_t usage_samples = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t reordered_buffered = 0;
    std::uint64_t late_dropped = 0;
    std::uint64_t recurrent_crashes = 0;
    std::uint64_t alerts = 0;
    std::size_t ooo_pending = 0;  // reorder-buffer entries held right now
    obs::BucketStats event_lag;
    obs::BucketStats watermark_lag;
    obs::BucketStats detection_lag;
    obs::BucketStats ooo_occupancy;
    struct Stratum {
      std::string name;
      std::uint64_t crashes = 0;
      double window_rate = 0.0;  // live window, failures/server/week
      std::uint64_t alerts = 0;
      bool armed = false;
    };
    std::vector<Stratum> strata;

    double recurrence_fraction() const {
      return crash_tickets > 0
                 ? static_cast<double>(recurrent_crashes) /
                       static_cast<double>(crash_tickets)
                 : 0.0;
    }
  };
  LiveStats live_stats() const;

 private:
  struct RateChannel {
    std::string name;
    std::size_t servers = 0;
    std::deque<TimePoint> in_window;  // crash times within [t - window, t]
    std::uint64_t total = 0;
    std::uint64_t tick_count = 0;  // incident arrivals in the open tick
    // CUSUM lifecycle: learning (warmup or post-alert relearn) -> armed,
    // or -> disabled when the learning period misses the event floor.
    bool armed = false;
    bool disabled = false;
    double learn_sum = 0.0;
    std::uint64_t learn_ticks = 0;
    double lambda0 = 0.0;  // frozen per-tick baseline
    double cusum = 0.0;
    // Start of the tick where the current CUSUM excursion began rising
    // from zero; -1 while the statistic sits at zero. Alert lag = alert
    // tick minus onset.
    TimePoint onset = -1;
    std::uint64_t alerts = 0;
    // Window-rate time average, sampled at tick closes past the first
    // full window.
    double rate_sum = 0.0;
    std::uint64_t rate_samples = 0;
  };

  struct UsageChannel {
    std::string name;
    std::uint64_t samples = 0;
    double sum = 0.0;            // running mean numerator
    double tick_sum = 0.0;       // open tick accumulation
    std::uint64_t tick_n = 0;
    bool ewma_primed = false;
    double ewma = 0.0;
    // Two-sided standardized CUSUM; learning phase collects tick means.
    bool armed = false;
    std::vector<double> learn_means;
    double mu0 = 0.0;
    double sigma0 = 0.0;
    double cusum_up = 0.0;
    double cusum_down = 0.0;
    std::uint64_t alerts = 0;
  };

  void ingest(const trace::StreamEvent& event);  // post-ordering-policy path
  void advance_to(TimePoint t);                  // close ticks before t
  void close_tick(TimePoint tick_end);
  void close_rate_tick(RateChannel& channel, TimePoint tick_end);
  void close_usage_tick(UsageChannel& channel, TimePoint tick_end);
  void evict_window(RateChannel& channel, TimePoint now);
  void raise(Alert alert);

  DetectorOptions options_;
  trace::StreamMeta meta_;
  bool begun_ = false;
  bool finished_ = false;
  std::uint64_t learn_ticks_target_ = 0;

  TimePoint watermark_ = 0;   // highest processed event time
  TimePoint tick_start_ = 0;  // open tick [tick_start_, tick_start_ + tick)
  std::vector<RateChannel> rates_;   // all, per-subsystem, per-type, per-class
  std::vector<UsageChannel> usage_;  // cpu, mem

  // Duplicate-id suppression within the sliding window.
  std::unordered_set<std::int32_t> window_ids_;
  std::deque<std::pair<TimePoint, std::int32_t>> window_id_queue_;

  // Incident-arrival tracking: the CUSUM counts an incident once, at its
  // first crash ticket — one spatial incident can open tens of tickets at
  // once and one aftershock chain can ticket for days, and treating those
  // as independent Poisson arrivals would fire on every large cluster.
  // Entries idle for a full window are evicted, so memory stays bounded by
  // incident turnover, not stream length.
  std::unordered_map<std::int32_t, TimePoint> incident_last_seen_;
  std::deque<std::pair<TimePoint, std::int32_t>> incident_queue_;

  // Reorder buffer (kBuffer): min-heap on event time with a deterministic
  // tie-break on arrival sequence.
  struct Pending {
    trace::StreamEvent event;
    std::uint64_t seq = 0;
  };
  struct PendingAfter {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.event.at != b.event.at) return a.event.at > b.event.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, PendingAfter> pending_;
  std::uint64_t arrival_seq_ = 0;
  TimePoint arrival_high_ = 0;  // newest arrival time seen (any policy)

  // Lag accounting (see DetectorReport): plain local histograms so the
  // numbers exist even with observability disabled; mirrored into the obs
  // registry once, at finish().
  obs::BucketStats event_lag_{obs::sim_lag_minutes_bounds()};
  obs::BucketStats watermark_lag_{obs::sim_lag_minutes_bounds()};
  obs::BucketStats detection_lag_{obs::sim_lag_minutes_bounds()};
  obs::BucketStats ooo_occupancy_{obs::occupancy_bounds()};

  // Recurrence: last crash time per server seen crashing.
  std::unordered_map<std::int32_t, TimePoint> last_crash_;

  DetectorReport report_;
  std::function<void(const Alert&)> alert_callback_;
};

}  // namespace fa::detect
