#include "src/detect/health.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/util/error.h"

namespace fa::detect {
namespace {

constexpr std::string_view kTimingMarker = ", \"timing\": ";

void append_quantiles(std::string& out, const char* key,
                      const obs::BucketStats& s) {
  out += '"';
  out += key;
  out += "\": {\"count\": ";
  out += std::to_string(s.count);
  out += ", \"p50\": ";
  out += obs::json_double(s.quantile(0.50));
  out += ", \"p90\": ";
  out += obs::json_double(s.quantile(0.90));
  out += ", \"p99\": ";
  out += obs::json_double(s.quantile(0.99));
  out += ", \"max\": ";
  out += obs::json_double(s.max);
  out += '}';
}

void append_count(std::string& out, const char* key, std::uint64_t value) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(value);
}

}  // namespace

// ---- ThrottledSink ----

ThrottledSink::ThrottledSink(trace::StreamSink& inner, ThrottleSpec spec,
                             std::string tenant)
    : inner_(inner), spec_(spec), tenant_(std::move(tenant)) {
  require(spec_.service_minutes >= 0,
          "ThrottledSink: service_minutes must be non-negative");
  stats_.queue_depth = obs::BucketStats(obs::occupancy_bounds());
  stats_.wait_minutes = obs::BucketStats(obs::sim_lag_minutes_bounds());
}

void ThrottledSink::begin(const trace::StreamMeta& meta) {
  clock_ = meta.window.begin;
  free_at_ = meta.window.begin;
  inner_.begin(meta);
}

void ThrottledSink::on_event(const trace::StreamEvent& event) {
  // Virtual arrival clock: monotone even on a disordered feed (a late
  // event still arrives "now" at the consumer).
  clock_ = std::max(clock_, event.at);
  if (spec_.service_minutes > 0) {
    while (!completions_.empty() && completions_.front() <= clock_) {
      completions_.pop_front();
    }
    const TimePoint start = std::max(clock_, free_at_);
    const Duration wait = start - clock_;
    free_at_ = start + spec_.service_minutes;
    completions_.push_back(free_at_);
    const std::uint64_t depth =
        static_cast<std::uint64_t>(completions_.size());
    ++stats_.events;
    if (wait > 0) ++stats_.delayed;
    stats_.max_wait = std::max(stats_.max_wait, wait);
    stats_.total_wait += wait;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
    stats_.queue_depth.record(static_cast<double>(depth));
    stats_.wait_minutes.record(static_cast<double>(wait));
  }
  inner_.on_event(event);
}

void ThrottledSink::finish(TimePoint stream_end) {
  // Deterministic per-tenant obs flush: sim-time queueing only, no wall
  // clock anywhere in the model.
  const obs::Labels labels = {{"tenant", tenant_}};
  obs::counter("fa.detect.serve.throttled_events", labels).add(stats_.events);
  obs::counter("fa.detect.serve.backpressure_events", labels)
      .add(stats_.delayed);
  const auto det = obs::Stability::kDeterministic;
  obs::histogram("fa.detect.serve.queue_depth", obs::occupancy_bounds(),
                 labels, det)
      .merge(stats_.queue_depth);
  obs::histogram("fa.detect.serve.wait_minutes",
                 obs::sim_lag_minutes_bounds(), labels, det)
      .merge(stats_.wait_minutes);
  inner_.finish(stream_end);
}

std::size_t ThrottledSink::queue_depth_at(TimePoint t) const {
  const auto it =
      std::upper_bound(completions_.begin(), completions_.end(), t);
  return static_cast<std::size_t>(completions_.end() - it);
}

// ---- heartbeat rendering ----

std::string heartbeat_line(const std::string& tenant, TimePoint at,
                           std::uint64_t seq,
                           const OnlineDetector::LiveStats& live,
                           const ThrottledSink* throttle, double wall_ms) {
  std::string out = "{\"v\": 1, \"tenant\": \"";
  obs::append_json_escaped(out, tenant);
  out += "\", ";
  append_count(out, "seq", seq);
  out += ", \"det\": {\"sim_time\": ";
  out += std::to_string(at);
  out += ", \"time\": \"";
  obs::append_json_escaped(out, format_time(at));
  out += "\", \"watermark\": ";
  out += std::to_string(live.watermark);
  out += ", \"arrival_high\": ";
  out += std::to_string(live.arrival_high);
  out += ", ";
  append_count(out, "events", live.events);
  out += ", ";
  append_count(out, "tickets", live.tickets);
  out += ", ";
  append_count(out, "crash_tickets", live.crash_tickets);
  out += ", ";
  append_count(out, "usage_samples", live.usage_samples);
  out += ", ";
  append_count(out, "alerts", live.alerts);
  out += ", ";
  append_count(out, "duplicates_dropped", live.duplicates_dropped);
  out += ", ";
  append_count(out, "late_dropped", live.late_dropped);
  out += ", ";
  append_count(out, "reordered_buffered", live.reordered_buffered);
  out += ", \"recurrence\": ";
  out += obs::json_double(live.recurrence_fraction());
  out += ", ";
  append_count(out, "ooo_pending",
               static_cast<std::uint64_t>(live.ooo_pending));
  out += ", ";
  append_quantiles(out, "event_lag_minutes", live.event_lag);
  out += ", ";
  append_quantiles(out, "watermark_lag_minutes", live.watermark_lag);
  out += ", ";
  append_quantiles(out, "detection_lag_minutes", live.detection_lag);
  out += ", ";
  append_quantiles(out, "ooo_occupancy", live.ooo_occupancy);
  out += ", \"queue\": {\"throttled\": ";
  out += throttle ? "true" : "false";
  const BackpressureStats empty;
  const BackpressureStats& bp = throttle ? throttle->stats() : empty;
  out += ", \"service_minutes\": ";
  out += std::to_string(throttle ? throttle->spec().service_minutes
                                 : Duration{0});
  out += ", ";
  append_count(out, "depth",
               throttle ? static_cast<std::uint64_t>(
                              throttle->queue_depth_at(at))
                        : 0);
  out += ", ";
  append_count(out, "delayed", bp.delayed);
  out += ", ";
  append_count(out, "max_depth", bp.max_queue_depth);
  out += ", \"max_wait_minutes\": ";
  out += std::to_string(bp.max_wait);
  out += ", ";
  append_quantiles(out, "wait_minutes", bp.wait_minutes);
  out += "}, \"strata\": [";
  bool first = true;
  for (const auto& st : live.strata) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    obs::append_json_escaped(out, st.name);
    out += "\", ";
    append_count(out, "crashes", st.crashes);
    out += ", \"window_rate\": ";
    out += obs::json_double(st.window_rate);
    out += ", ";
    append_count(out, "alerts", st.alerts);
    out += ", \"armed\": ";
    out += st.armed ? "true" : "false";
    out += '}';
  }
  out += "]}";
  out += kTimingMarker;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "{\"wall_ms\": %.3f}", wall_ms);
  out += buf;
  out += '}';
  return out;
}

std::string_view heartbeat_det_prefix(std::string_view line) {
  const std::size_t pos = line.rfind(kTimingMarker);
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}

// ---- minimal field extraction (fa_trace top) ----

namespace {

// Position just past `"key": ` in `scope`, or npos.
std::size_t value_pos(std::string_view scope, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\": ";
  const std::size_t pos = scope.find(needle);
  return pos == std::string_view::npos ? pos : pos + needle.size();
}

// Balanced bracket span starting at `start` (scope[start] is open).
std::string_view balanced(std::string_view scope, std::size_t start,
                          char open, char close) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = start; i < scope.size(); ++i) {
    const char c = scope[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == open) {
      ++depth;
    } else if (c == close) {
      if (--depth == 0) return scope.substr(start, i - start + 1);
    }
  }
  return {};
}

}  // namespace

std::string_view heartbeat_object(std::string_view scope,
                                  std::string_view key) {
  const std::size_t pos = value_pos(scope, key);
  if (pos == std::string_view::npos || pos >= scope.size() ||
      scope[pos] != '{') {
    return {};
  }
  return balanced(scope, pos, '{', '}');
}

std::string_view heartbeat_array(std::string_view scope,
                                 std::string_view key) {
  const std::size_t pos = value_pos(scope, key);
  if (pos == std::string_view::npos || pos >= scope.size() ||
      scope[pos] != '[') {
    return {};
  }
  return balanced(scope, pos, '[', ']');
}

bool heartbeat_number(std::string_view scope, std::string_view key,
                      double& out) {
  const std::size_t pos = value_pos(scope, key);
  if (pos == std::string_view::npos) return false;
  // The value fits comfortably in a small buffer (%.17g at most).
  char buf[48] = {};
  const std::size_t n = std::min(scope.size() - pos, sizeof(buf) - 1);
  scope.copy(buf, n, pos);
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end == buf) return false;
  out = v;
  return true;
}

bool heartbeat_string(std::string_view scope, std::string_view key,
                      std::string& out) {
  std::size_t pos = value_pos(scope, key);
  if (pos == std::string_view::npos || pos >= scope.size() ||
      scope[pos] != '"') {
    return false;
  }
  out.clear();
  for (++pos; pos < scope.size(); ++pos) {
    const char c = scope[pos];
    if (c == '\\' && pos + 1 < scope.size()) {
      out += scope[++pos];
    } else if (c == '"') {
      return true;
    } else {
      out += c;
    }
  }
  return false;
}

std::vector<std::string_view> heartbeat_items(std::string_view array) {
  std::vector<std::string_view> items;
  if (array.size() < 2) return items;
  std::size_t i = 1;  // past '['
  while (i + 1 < array.size()) {
    if (array[i] == '{') {
      const std::string_view item = balanced(array, i, '{', '}');
      if (item.empty()) break;
      items.push_back(item);
      i += item.size();
    } else {
      ++i;
    }
  }
  return items;
}

// ---- HealthMonitor ----

HealthMonitor::HealthMonitor(trace::StreamSink& inner,
                             const OnlineDetector& detector,
                             const ThrottledSink* throttle,
                             HealthOptions options, std::string tenant,
                             Emit emit)
    : inner_(inner), detector_(detector), throttle_(throttle),
      options_(options), tenant_(std::move(tenant)), emit_(std::move(emit)) {
  require(options_.every > 0, "HealthMonitor: heartbeat cadence must be > 0");
  require(static_cast<bool>(emit_), "HealthMonitor: emit callback required");
}

void HealthMonitor::begin(const trace::StreamMeta& meta) {
  next_emit_ = meta.window.begin + options_.every;
  wall_start_ = std::chrono::steady_clock::now();
  inner_.begin(meta);
}

void HealthMonitor::on_event(const trace::StreamEvent& event) {
  // Boundary snapshots fire before the crossing event, so a heartbeat at
  // sim-time T covers exactly the events with arrival order before T's
  // crossing — a pure function of the stream prefix.
  while (event.at >= next_emit_) {
    emit_snapshot(next_emit_);
    next_emit_ += options_.every;
  }
  inner_.on_event(event);
}

void HealthMonitor::finish(TimePoint stream_end) {
  // Final heartbeat after the inner finish: the reorder buffer has been
  // drained and the last ticks closed, so this is the end-of-stream state.
  inner_.finish(stream_end);
  emit_snapshot(stream_end);
}

void HealthMonitor::emit_snapshot(TimePoint at) {
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  Heartbeat hb;
  hb.at = at;
  hb.seq = seq_++;
  hb.line = heartbeat_line(tenant_, at, hb.seq, detector_.live_stats(),
                           throttle_, wall_ms);
  emit_(hb);
}

}  // namespace fa::detect
