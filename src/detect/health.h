// Streaming health instrumentation over the emit → detect → alert chain:
//
//   * ThrottledSink — a deterministic slow-consumer model for backpressure
//     testing. A virtual single-server queue with a fixed per-event service
//     time (in sim-minutes) sits in front of the inner sink: queue depth
//     and waiting time are pure functions of the event sequence, never of
//     wall clock or thread schedule, and every event is forwarded
//     *unchanged*, so detection results are identical with or without the
//     throttle. This is the "deterministic slow-tenant knob" behind
//     `fa_trace serve --throttle`.
//
//   * HealthMonitor — a pass-through sink that emits a JSONL heartbeat
//     line every `HealthOptions::every` sim-minutes of stream time plus a
//     final one at finish(). Each line splits into a "det" object (pure
//     function of the event prefix: watermark, counts, sim-time lag
//     quantiles, reorder-buffer occupancy, backpressure, per-stratum
//     rates — byte-identical at any --threads setting) and a "timing"
//     object (wall-clock milliseconds since begin()). Schema:
//     tools/health_schema.json; `fa_trace top` renders the latest lines.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/detect/detector.h"
#include "src/trace/event_stream.h"
#include "src/util/sim_time.h"

namespace fa::detect {

struct ThrottleSpec {
  // Virtual per-event service time in sim-minutes; 0 disables the model.
  // A value near the tenant's mean inter-event gap produces transient
  // queueing; a larger one produces sustained backpressure.
  Duration service_minutes = 0;
};

struct BackpressureStats {
  std::uint64_t events = 0;            // events pushed through the throttle
  std::uint64_t delayed = 0;           // events that waited (queue nonempty)
  std::uint64_t max_queue_depth = 0;   // peak virtual queue depth
  Duration max_wait = 0;               // worst per-event wait, sim-minutes
  Duration total_wait = 0;             // summed waits, sim-minutes
  obs::BucketStats queue_depth;        // depth sampled at each arrival
  obs::BucketStats wait_minutes;       // per-event wait distribution
};

class ThrottledSink final : public trace::StreamSink {
 public:
  // `tenant` labels the obs flush (fa.detect.serve.*{tenant=...}).
  ThrottledSink(trace::StreamSink& inner, ThrottleSpec spec,
                std::string tenant);

  void begin(const trace::StreamMeta& meta) override;
  void on_event(const trace::StreamEvent& event) override;
  void finish(TimePoint stream_end) override;

  const BackpressureStats& stats() const { return stats_; }
  const ThrottleSpec& spec() const { return spec_; }
  // Virtual queue depth at sim-time `t`: admitted events whose service
  // completes after `t`. Used by heartbeat snapshots.
  std::size_t queue_depth_at(TimePoint t) const;

 private:
  trace::StreamSink& inner_;
  ThrottleSpec spec_;
  std::string tenant_;
  TimePoint clock_ = 0;                // newest arrival time seen
  TimePoint free_at_ = 0;              // when the virtual consumer frees up
  std::deque<TimePoint> completions_;  // in-flight completion times (sorted)
  BackpressureStats stats_;
};

struct HealthOptions {
  Duration every = 0;  // heartbeat cadence in sim-minutes; 0 = disabled
};

struct Heartbeat {
  TimePoint at = 0;       // sim-time stamp of the snapshot
  std::uint64_t seq = 0;  // per-tenant sequence number, 0-based
  std::string line;       // one JSONL line (det + timing), no newline
};

class HealthMonitor final : public trace::StreamSink {
 public:
  using Emit = std::function<void(const Heartbeat&)>;

  // `throttle` may be null (no backpressure model in the chain). The
  // monitor forwards every event to `inner` untouched and calls `emit`
  // whenever the stream crosses a heartbeat boundary, plus once at finish.
  HealthMonitor(trace::StreamSink& inner, const OnlineDetector& detector,
                const ThrottledSink* throttle, HealthOptions options,
                std::string tenant, Emit emit);

  void begin(const trace::StreamMeta& meta) override;
  void on_event(const trace::StreamEvent& event) override;
  void finish(TimePoint stream_end) override;

 private:
  void emit_snapshot(TimePoint at);

  trace::StreamSink& inner_;
  const OnlineDetector& detector_;
  const ThrottledSink* throttle_;
  HealthOptions options_;
  std::string tenant_;
  Emit emit_;
  TimePoint next_emit_ = 0;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
};

// Builds one heartbeat JSONL line (no trailing newline) from a live
// detector view. Exposed so tests can pin the det-section bytes directly.
std::string heartbeat_line(const std::string& tenant, TimePoint at,
                           std::uint64_t seq,
                           const OnlineDetector::LiveStats& live,
                           const ThrottledSink* throttle, double wall_ms);

// The byte-comparable prefix of a heartbeat line: everything before the
// trailing ', "timing": {...}}' suffix. Thread-count determinism holds for
// this prefix, not the wall-clock tail.
std::string_view heartbeat_det_prefix(std::string_view line);

// Minimal field access over our own heartbeat JSONL (enough for `fa_trace
// top`; not a general JSON parser). Objects/arrays return the balanced
// "{...}" / "[...]" substring of the first `"key": ` occurrence within
// `scope`; empty view when absent.
std::string_view heartbeat_object(std::string_view scope,
                                  std::string_view key);
std::string_view heartbeat_array(std::string_view scope, std::string_view key);
bool heartbeat_number(std::string_view scope, std::string_view key,
                      double& out);
bool heartbeat_string(std::string_view scope, std::string_view key,
                      std::string& out);
// Splits a "[{...}, {...}]" array view into its top-level object views.
std::vector<std::string_view> heartbeat_items(std::string_view array);

}  // namespace fa::detect
