#include "src/text/vocabulary.h"

#include <array>

#include "src/util/error.h"

namespace fa::text {
namespace {

using std::string_view;

constexpr std::array<string_view, 14> kHardwareWords = {
    "disk",  "dimm",      "raid", "controller", "battery",
    "cpu",   "mainboard", "fan",  "firmware",   "psu",
    "smart", "sector",    "ecc",  "backplane"};

constexpr std::array<string_view, 12> kNetworkWords = {
    "switch", "vlan",    "router", "uplink", "nic",  "port",
    "dns",    "gateway", "cable",  "subnet", "link", "packet"};

constexpr std::array<string_view, 10> kPowerWords = {
    "outage",  "ups",     "breaker", "electrical", "pdu",
    "voltage", "circuit", "feed",    "generator",  "blackout"};

constexpr std::array<string_view, 10> kRebootWords = {
    "reboot", "restarted", "unexpected", "cycle",  "watchdog",
    "panic",  "bootloop",  "cold",       "reset", "poweron"};

constexpr std::array<string_view, 13> kSoftwareWords = {
    "os",    "kernel", "application", "agent",   "patch", "hang", "process",
    "memoryleak", "service",  "middleware", "daemon", "update", "config"};

constexpr std::array<string_view, 12> kOtherWords = {
    "issue",   "checked",  "unknown", "investigated", "ticket", "closed",
    "noted",   "customer", "request", "escalated",    "review", "general"};

constexpr std::array<string_view, 5> kHardwareResolutions = {
    "replaced faulty disk",          "swapped failed dimm module",
    "installed new raid controller", "replaced broken power supply unit",
    "reseated backplane and fan"};

constexpr std::array<string_view, 5> kNetworkResolutions = {
    "reconfigured switch port",  "restored uplink connectivity",
    "fixed vlan configuration",  "replaced faulty nic cable",
    "corrected dns gateway entry"};

constexpr std::array<string_view, 5> kPowerResolutions = {
    "restored electrical feed after outage", "reset tripped breaker on pdu",
    "replaced ups battery string",           "rebalanced power circuit",
    "completed scheduled electrical maintenance"};

constexpr std::array<string_view, 5> kRebootResolutions = {
    "server recovered after unexpected reboot", "cleared watchdog reset",
    "verified system after panic reboot",       "machine back after cycle",
    "confirmed services after cold reset"};

constexpr std::array<string_view, 5> kSoftwareResolutions = {
    "restarted hanging os service",     "applied kernel patch",
    "fixed application agent config",   "killed leaking middleware process",
    "rolled back faulty software update"};

constexpr std::array<string_view, 5> kOtherResolutions = {
    "issue resolved",            "closed after review",
    "no further action needed",  "customer confirmed resolution",
    "ticket closed as resolved"};

constexpr std::array<string_view, 16> kGenericWords = {
    "server", "host",     "datacenter", "monitoring", "alert", "incident",
    "team",   "support",  "production", "system",     "node",  "event",
    "log",    "reported", "status",     "check"};

constexpr std::array<string_view, 6> kCrashSymptoms = {
    "server unresponsive",      "host unreachable",
    "machine down",             "no response to ping",
    "system not responding",    "monitoring lost contact with host"};

constexpr std::array<string_view, 8> kBackgroundPhrases = {
    "filesystem usage above threshold", "cpu utilization warning",
    "backup job failed",                "certificate expiry notice",
    "user access request",              "performance degradation reported",
    "scheduled maintenance request",    "capacity upgrade request"};

}  // namespace

std::span<const string_view> signature_words(trace::FailureClass c) {
  switch (c) {
    case trace::FailureClass::kHardware:
      return kHardwareWords;
    case trace::FailureClass::kNetwork:
      return kNetworkWords;
    case trace::FailureClass::kPower:
      return kPowerWords;
    case trace::FailureClass::kReboot:
      return kRebootWords;
    case trace::FailureClass::kSoftware:
      return kSoftwareWords;
    case trace::FailureClass::kOther:
      return kOtherWords;
  }
  throw Error("signature_words: invalid class");
}

std::span<const string_view> resolution_phrases(trace::FailureClass c) {
  switch (c) {
    case trace::FailureClass::kHardware:
      return kHardwareResolutions;
    case trace::FailureClass::kNetwork:
      return kNetworkResolutions;
    case trace::FailureClass::kPower:
      return kPowerResolutions;
    case trace::FailureClass::kReboot:
      return kRebootResolutions;
    case trace::FailureClass::kSoftware:
      return kSoftwareResolutions;
    case trace::FailureClass::kOther:
      return kOtherResolutions;
  }
  throw Error("resolution_phrases: invalid class");
}

std::span<const string_view> generic_words() { return kGenericWords; }

std::span<const string_view> crash_symptoms() { return kCrashSymptoms; }

std::span<const string_view> background_phrases() {
  return kBackgroundPhrases;
}

}  // namespace fa::text
