#include "src/text/ticket_text.h"

#include <span>
#include <string_view>

#include "src/text/vocabulary.h"
#include "src/util/error.h"

namespace fa::text {
namespace {

std::string_view pick(std::span<const std::string_view> pool, Rng& rng) {
  return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
}

void append_word(std::string& s, std::string_view word) {
  if (!s.empty()) s += ' ';
  s += word;
}

trace::FailureClass random_real_class(Rng& rng) {
  const auto& classes = trace::kClassifiedFailureClasses;
  return classes[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(classes.size()) - 1))];
}

}  // namespace

TicketText generate_crash_text(trace::FailureClass recorded,
                               const TextStyleOptions& options, Rng& rng) {
  require(options.signature_words >= 1,
          "generate_crash_text: need at least one signature word");
  TicketText text;

  const auto sig_pool = signature_words(recorded);

  // Description: crash symptom plus hint words.
  text.description = std::string(pick(crash_symptoms(), rng));
  for (int i = 0; i < (options.signature_words + 1) / 2; ++i) {
    append_word(text.description, pick(sig_pool, rng));
  }
  for (int i = 0; i < options.generic_words / 2; ++i) {
    append_word(text.description, pick(generic_words(), rng));
  }

  // Resolution: what the support group did.
  text.resolution = std::string(pick(resolution_phrases(recorded), rng));
  for (int i = 0; i < options.signature_words / 2; ++i) {
    append_word(text.resolution, pick(sig_pool, rng));
  }
  for (int i = 0; i < (options.generic_words + 1) / 2; ++i) {
    append_word(text.resolution, pick(generic_words(), rng));
  }

  // Cross-class confusion: some tickets describe a secondary symptom chain
  // ("disk errors after the unexpected reboot") with as many foreign
  // signature words as native ones, making them genuinely ambiguous and
  // bounding classifier accuracy near the paper's 87%.
  if (recorded != trace::FailureClass::kOther &&
      rng.bernoulli(options.confusion_probability)) {
    trace::FailureClass confusing = random_real_class(rng);
    while (confusing == recorded) confusing = random_real_class(rng);
    const auto confusing_pool = signature_words(confusing);
    for (int i = 0; i < (options.signature_words + 1) / 2; ++i) {
      append_word(text.description, pick(confusing_pool, rng));
    }
    for (int i = 0; i < options.signature_words / 2; ++i) {
      append_word(text.resolution, pick(confusing_pool, rng));
    }
  }
  return text;
}

TicketText generate_background_text(Rng& rng) {
  TicketText text;
  text.description = std::string(pick(background_phrases(), rng));
  for (int i = 0; i < 3; ++i) {
    append_word(text.description, pick(generic_words(), rng));
  }
  text.resolution = std::string(
      pick(resolution_phrases(trace::FailureClass::kOther), rng));
  append_word(text.resolution, pick(generic_words(), rng));
  return text;
}

}  // namespace fa::text
