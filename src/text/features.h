// Bag-of-words / TF-IDF feature extraction for ticket text, feeding the
// k-means ticket classifier (paper Section III-A).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/stats/sparse_matrix.h"

namespace fa::text {

struct VectorizerOptions {
  // Drop words occurring in fewer than min_document_frequency documents.
  int min_document_frequency = 2;
  // Apply inverse-document-frequency weighting.
  bool use_idf = true;
  // L2-normalize each document vector.
  bool l2_normalize = true;
};

// Learns a vocabulary from a corpus and maps documents to dense TF-IDF
// vectors. Words unseen at fit() time are ignored at transform() time.
class Vectorizer {
 public:
  static Vectorizer fit(std::span<const std::string> documents,
                        const VectorizerOptions& options);

  std::vector<double> transform(const std::string& document) const;
  std::vector<std::vector<double>> transform_all(
      std::span<const std::string> documents) const;

  // Sparse counterparts: (vocabulary index, weight) entries sorted by index.
  // Weights are bit-identical to the nonzeros of transform() — the dense
  // path is the reference implementation, kept for cross-checking. A
  // document with no in-vocabulary word yields an empty row.
  std::vector<std::pair<std::uint32_t, double>> transform_sparse(
      const std::string& document) const;
  // CSR matrix with one row per document and dimension() columns, built
  // without a dense intermediate. Documents are transformed in parallel
  // into per-document slots and committed in corpus order (deterministic at
  // any thread count).
  stats::SparseMatrix transform_all_sparse(
      std::span<const std::string> documents) const;

  std::size_t dimension() const { return vocabulary_.size(); }
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

 private:
  Vectorizer() = default;

  VectorizerOptions options_;
  std::vector<std::string> vocabulary_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<double> idf_;
};

}  // namespace fa::text
