// Word pools for the synthetic ticket corpus.
//
// The paper classifies crash tickets by k-means over free-text description
// and resolution fields written by support staff. To exercise that same code
// path we synthesize ticket text from class-specific signature vocabularies
// mixed with generic datacenter jargon; "other" tickets get deliberately
// vague text, mirroring the 53% of tickets the paper could not classify.
#pragma once

#include <span>
#include <string_view>

#include "src/trace/types.h"

namespace fa::text {

// Words strongly indicative of one failure class (e.g. "dimm", "raid" for
// hardware; "switch", "vlan" for network).
std::span<const std::string_view> signature_words(trace::FailureClass c);

// Class-specific resolution phrases ("replaced faulty disk", ...).
std::span<const std::string_view> resolution_phrases(trace::FailureClass c);

// Generic words appearing in tickets of any class (noise for the
// classifier).
std::span<const std::string_view> generic_words();

// Crash symptom phrases: all crash tickets describe the server being
// unresponsive/unreachable, whatever the root cause.
std::span<const std::string_view> crash_symptoms();

// Phrases for non-crash background tickets (capacity warnings, requests...).
std::span<const std::string_view> background_phrases();

}  // namespace fa::text
