#include "src/text/features.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::text {

Vectorizer Vectorizer::fit(std::span<const std::string> documents,
                           const VectorizerOptions& options) {
  require(!documents.empty(), "Vectorizer::fit: empty corpus");
  require(options.min_document_frequency >= 1,
          "Vectorizer::fit: min_document_frequency must be >= 1");

  // Document frequency per word; std::map keeps the vocabulary ordering
  // deterministic across platforms.
  std::map<std::string, int> doc_freq;
  for (const std::string& doc : documents) {
    auto words = fa::tokenize_words(doc);
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    for (auto& w : words) ++doc_freq[w];
  }

  Vectorizer v;
  v.options_ = options;
  for (const auto& [word, df] : doc_freq) {
    if (df < options.min_document_frequency) continue;
    v.index_.emplace(word, v.vocabulary_.size());
    v.vocabulary_.push_back(word);
    // Smoothed IDF: ln((1+N)/(1+df)) + 1, never negative.
    const double n = static_cast<double>(documents.size());
    v.idf_.push_back(options.use_idf
                         ? std::log((1.0 + n) / (1.0 + df)) + 1.0
                         : 1.0);
  }
  require(!v.vocabulary_.empty(),
          "Vectorizer::fit: no word passed the document-frequency filter");
  return v;
}

std::vector<double> Vectorizer::transform(const std::string& document) const {
  std::vector<double> vec(vocabulary_.size(), 0.0);
  for (const std::string& w : fa::tokenize_words(document)) {
    const auto it = index_.find(w);
    if (it != index_.end()) vec[it->second] += 1.0;
  }
  for (std::size_t i = 0; i < vec.size(); ++i) vec[i] *= idf_[i];
  if (options_.l2_normalize) {
    double norm = 0.0;
    for (double x : vec) norm += x * x;
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (double& x : vec) x /= norm;
    }
  }
  return vec;
}

std::vector<std::vector<double>> Vectorizer::transform_all(
    std::span<const std::string> documents) const {
  std::vector<std::vector<double>> out;
  out.reserve(documents.size());
  for (const std::string& doc : documents) out.push_back(transform(doc));
  return out;
}

}  // namespace fa::text
