#include "src/text/features.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace fa::text {

Vectorizer Vectorizer::fit(std::span<const std::string> documents,
                           const VectorizerOptions& options) {
  require(!documents.empty(), "Vectorizer::fit: empty corpus");
  require(options.min_document_frequency >= 1,
          "Vectorizer::fit: min_document_frequency must be >= 1");

  // Document frequency per word in one hash-map pass: `last_doc` dedups
  // repeated words within a document without sorting each document's token
  // list. The vocabulary order is fixed by a single sort at the end, so it
  // stays deterministic (and identical to the former std::map-based pass).
  struct WordStat {
    int df = 0;
    std::size_t last_doc = std::numeric_limits<std::size_t>::max();
  };
  std::unordered_map<std::string, WordStat> doc_freq;
  for (std::size_t doc = 0; doc < documents.size(); ++doc) {
    for (auto& w : fa::tokenize_words(documents[doc])) {
      WordStat& stat = doc_freq[std::move(w)];
      if (stat.last_doc != doc) {
        stat.last_doc = doc;
        ++stat.df;
      }
    }
  }
  std::vector<std::pair<std::string, int>> kept;  // (word, df)
  kept.reserve(doc_freq.size());
  for (auto& [word, stat] : doc_freq) {
    if (stat.df >= options.min_document_frequency) {
      kept.emplace_back(word, stat.df);
    }
  }
  std::sort(kept.begin(), kept.end());

  Vectorizer v;
  v.options_ = options;
  v.vocabulary_.reserve(kept.size());
  v.idf_.reserve(kept.size());
  for (const auto& [word, df] : kept) {
    v.index_.emplace(word, v.vocabulary_.size());
    v.vocabulary_.push_back(word);
    // Smoothed IDF: ln((1+N)/(1+df)) + 1, never negative.
    const double n = static_cast<double>(documents.size());
    v.idf_.push_back(options.use_idf
                         ? std::log((1.0 + n) / (1.0 + df)) + 1.0
                         : 1.0);
  }
  require(!v.vocabulary_.empty(),
          "Vectorizer::fit: no word passed the document-frequency filter");
  return v;
}

std::vector<double> Vectorizer::transform(const std::string& document) const {
  std::vector<double> vec(vocabulary_.size(), 0.0);
  for (const std::string& w : fa::tokenize_words(document)) {
    const auto it = index_.find(w);
    if (it != index_.end()) vec[it->second] += 1.0;
  }
  for (std::size_t i = 0; i < vec.size(); ++i) vec[i] *= idf_[i];
  if (options_.l2_normalize) {
    double norm = 0.0;
    for (double x : vec) norm += x * x;
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (double& x : vec) x /= norm;
    }
  }
  return vec;
}

std::vector<std::vector<double>> Vectorizer::transform_all(
    std::span<const std::string> documents) const {
  std::vector<std::vector<double>> out;
  out.reserve(documents.size());
  for (const std::string& doc : documents) out.push_back(transform(doc));
  return out;
}

std::vector<std::pair<std::uint32_t, double>> Vectorizer::transform_sparse(
    const std::string& document) const {
  std::vector<std::pair<std::uint32_t, double>> entries;
  for (const std::string& w : fa::tokenize_words(document)) {
    const auto it = index_.find(w);
    if (it != index_.end()) {
      entries.emplace_back(static_cast<std::uint32_t>(it->second), 1.0);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Merge duplicate indices by summing counts (small integer sums, so the
  // term frequencies match the dense accumulation exactly).
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (out > 0 && entries[out - 1].first == entries[i].first) {
      entries[out - 1].second += entries[i].second;
    } else {
      entries[out++] = entries[i];
    }
  }
  entries.resize(out);
  for (auto& [index, value] : entries) value *= idf_[index];
  if (options_.l2_normalize) {
    // Entries are index-sorted, so this accumulation visits the same
    // nonzeros in the same order as the dense norm loop — the normalized
    // weights come out bit-identical.
    double norm = 0.0;
    for (const auto& [index, value] : entries) norm += value * value;
    if (norm > 0.0) {
      norm = std::sqrt(norm);
      for (auto& [index, value] : entries) value /= norm;
    }
  }
  return entries;
}

stats::SparseMatrix Vectorizer::transform_all_sparse(
    std::span<const std::string> documents) const {
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(
      documents.size());
  parallel_for(documents.size(), [&](std::size_t i) {
    rows[i] = transform_sparse(documents[i]);
  });
  stats::SparseMatrix matrix(dimension());
  std::vector<std::uint32_t> indices;
  std::vector<double> values;
  for (const auto& row : rows) {
    indices.clear();
    values.clear();
    indices.reserve(row.size());
    values.reserve(row.size());
    for (const auto& [index, value] : row) {
      indices.push_back(index);
      values.push_back(value);
    }
    matrix.append_row(indices, values);
  }
  return matrix;
}

}  // namespace fa::text
