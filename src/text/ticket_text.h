// Synthesizes the free-text description/resolution fields of tickets.
//
// The ticketing layer of the simulator decides whether a crash ticket is
// written clearly enough to be attributable (recorded class = root cause) or
// too vaguely (recorded class = kOther, like the 53% of the paper's tickets).
// This module renders text for the *recorded* class: kOther yields vague,
// generic text; real classes yield signature-word-rich text with a tunable
// amount of cross-class confusion, so that k-means classification tops out
// near the paper's 87% accuracy rather than at 100%.
#pragma once

#include <string>

#include "src/trace/types.h"
#include "src/util/rng.h"

namespace fa::text {

struct TicketText {
  std::string description;
  std::string resolution;
};

struct TextStyleOptions {
  // Signature words drawn into a clearly-written ticket.
  int signature_words = 4;
  // Generic filler words per ticket.
  int generic_words = 5;
  // Probability that a clear ticket also mentions words from an unrelated
  // class (e.g. a hardware ticket mentioning a reboot) — classifier noise.
  double confusion_probability = 0.35;
};

// Text for a crash ticket whose *recorded* class is `recorded`.
TicketText generate_crash_text(trace::FailureClass recorded,
                               const TextStyleOptions& options, Rng& rng);

// Text for a non-crash background ticket (capacity warnings, requests...).
TicketText generate_background_text(Rng& rng);

}  // namespace fa::text
