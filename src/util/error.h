// Common error type for the failure-analysis library.
#pragma once

#include <stdexcept>
#include <string>

namespace fa {

// Thrown on precondition violations and unrecoverable input errors
// (malformed CSV, invalid distribution parameters, empty samples, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  explicit Error(const char* what) : std::runtime_error(what) {}
};

// Precondition check used across the library. Unlike assert() it is active in
// all build types: analysis code is routinely run on untrusted trace files.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw Error(message);
}

// Literal-message overload: no std::string is materialized unless the check
// actually fires, which keeps require() free on hot per-value paths.
inline void require(bool cond, const char* message) {
  if (!cond) throw Error(message);
}

}  // namespace fa
