// Simulation time model.
//
// The paper's data sources use different observation windows:
//   * server resource monitoring DB: two years, July 2011 - June 2013,
//     recorded at 15 min / hourly / daily / weekly / monthly granularity;
//   * ticket DB: one year, July 2012 - June 2013, recorded by events;
//   * VM on/off tracking: 15-min data for March - April 2013 only.
// We mirror that: TimePoint is minutes since the monitoring epoch
// (2011-07-01 00:00 UTC), and the named windows below reproduce the paper's.
#pragma once

#include <cstdint>
#include <string>

namespace fa {

using TimePoint = std::int64_t;  // minutes since 2011-07-01 00:00
using Duration = std::int64_t;   // minutes

inline constexpr Duration kMinutesPerHour = 60;
inline constexpr Duration kMinutesPerDay = 24 * kMinutesPerHour;
inline constexpr Duration kMinutesPerWeek = 7 * kMinutesPerDay;
// Fixed-width analysis month (the paper aggregates "monthly" statistics; we
// use a 30-day window so month indices are well defined on a minute axis).
inline constexpr Duration kMinutesPerMonth = 30 * kMinutesPerDay;
inline constexpr Duration kMinutesPerSample = 15;  // monitoring granularity

double to_hours(Duration d);
double to_days(Duration d);
Duration from_hours(double hours);
Duration from_days(double days);

// Half-open interval [begin, end).
struct ObservationWindow {
  TimePoint begin = 0;
  TimePoint end = 0;

  bool contains(TimePoint t) const { return t >= begin && t < end; }
  Duration length() const { return end - begin; }
  double days() const { return to_days(length()); }
  double weeks() const { return static_cast<double>(length()) / kMinutesPerWeek; }
  // Number of whole week-buckets covering the window.
  int week_count() const;
  int day_count() const;
  int month_count() const;
  // Bucket index of t within this window, -1 if outside.
  int week_index(TimePoint t) const;
  int day_index(TimePoint t) const;
  int month_index(TimePoint t) const;
};

// The monitoring database coverage: 2011-07-01 .. 2013-07-01 (730 days).
ObservationWindow monitoring_window();
// The ticket/failure observation period: 2012-07-01 .. 2013-07-01 (365 days).
ObservationWindow ticket_window();
// The fine-grained on/off tracking period: 2013-03-01 .. 2013-05-01 (61 days).
ObservationWindow onoff_window();

// Calendar rendering of a TimePoint ("2012-07-01 00:00") for reports.
std::string format_time(TimePoint t);
// Calendar date only ("2012-07-01").
std::string format_date(TimePoint t);

}  // namespace fa
