// Minimal CSV reader/writer (RFC-4180-style quoting) used to persist and
// reload simulated traces, mirroring the paper's flat database exports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fa {

class CsvWriter {
 public:
  // The writer does not own the stream; callers keep it alive. When `path`
  // is non-empty, every write is checked and a stream failure throws
  // io::IoError naming the path and the byte offset where the write broke
  // (ENOSPC and friends otherwise vanish into a silent failbit).
  explicit CsvWriter(std::ostream& out, std::string path = "");

  // Renders the row into an internal buffer and writes it with a single
  // stream call; steady-state rows allocate nothing.
  void write_row(const std::vector<std::string>& fields);

  // Flushes the stream and re-checks its state; call at end of file so
  // buffered data that only fails at flush time still surfaces an error.
  void flush();

  // Bytes handed to the stream so far (the offset reported on failure).
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void check(const char* action) const;

  std::ostream* out_;
  std::string path_;   // empty = unchecked legacy mode
  std::uint64_t bytes_written_ = 0;
  std::string line_;  // reused across rows
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& in);

  // Reads the next record (handles quoted fields with embedded commas,
  // quotes and newlines). Returns false at end of input. Field strings in
  // `fields` are reused in place, so a caller looping with one vector pays
  // no per-field allocation once capacities warm up.
  bool read_row(std::vector<std::string>& fields);

 private:
  std::istream* in_;
  std::string line_;  // reused across rows
};

// Field conversion helpers; throw fa::Error with the offending text.
// parse_int rejects values outside the int64 range; parse_double accepts
// anything strtod does, including "nan"/"inf" spellings.
std::int64_t parse_int(const std::string& field);
double parse_double(const std::string& field);
// Like parse_double but additionally rejects non-finite values. Trace
// loaders use this: a "nan" in an export is a defect, not a measurement.
double parse_finite_double(const std::string& field);

}  // namespace fa
