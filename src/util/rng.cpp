#include "src/util/rng.h"

#include <cmath>

#include "src/util/error.h"

namespace fa {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::derive_seed(std::uint64_t seed, std::uint64_t stream,
                               std::uint64_t index) {
  // Three rounds of splitmix64 over a mix of the inputs; each input is
  // pre-multiplied by a distinct odd constant so (seed, stream, index)
  // triples that differ in any coordinate land in unrelated streams.
  std::uint64_t sm = seed;
  sm ^= splitmix64(sm) + stream * 0xd1342543de82ef95ULL;
  sm ^= splitmix64(sm) + index * 0x9e3779b97f4a7c15ULL;
  return splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_id) {
  // Mix the stream id with fresh output so sibling streams are decorrelated.
  std::uint64_t sm = next_u64() ^ (stream_id * 0xd1342543de82ef95ULL + 1);
  Rng child(0);
  for (auto& s : child.s_) s = splitmix64(sm);
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: negative stddev");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  require(mean >= 0.0, "Rng::poisson: negative mean");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = uniform();
    while (p > limit) {
      ++k;
      p *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the large
  // aggregate counts where it is used (background ticket volumes).
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) {
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::weighted_index: negative weight");
    total += w;
  }
  require(total > 0.0, "Rng::weighted_index: zero total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace fa
