// Small string helpers shared by the CSV layer, ticket-text processing and
// report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fa {

std::vector<std::string> split(std::string_view s, char delim);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);
// Lowercases `s` into `out`, reusing out's capacity — for hot loops that
// would otherwise allocate a fresh string per item.
void to_lower_into(std::string_view s, std::string& out);
std::string trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

// Tokenize free text into lowercase alphanumeric words (ticket descriptions).
std::vector<std::string> tokenize_words(std::string_view text);

// Fixed-precision decimal rendering for report tables ("0.0062").
std::string format_double(double v, int precision);

}  // namespace fa
