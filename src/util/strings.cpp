#include "src/util/strings.h"

#include <cctype>
#include <cstdio>

namespace fa {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

void to_lower_into(std::string_view s, std::string& out) {
  out.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[i] =
        static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
  }
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    const auto c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace fa
