// Deterministic parallel execution primitives.
//
// A fixed-size worker pool plus a `parallel_for` helper used across the
// simulation, statistics and analysis layers. Parallelism here is purely a
// scheduling concern: every parallel call site derives the randomness of
// work item `i` from a counter-based seed (see `derive_seed` in rng.h) and
// writes item `i`'s output to a dedicated slot, so results are bit-identical
// regardless of the number of threads (including 1, which runs inline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fa {

class ThreadPool {
 public:
  // `thread_count == 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_.size(); }

  // Runs fn(i) for i in [0, n). Blocks until all iterations complete; any
  // exception thrown by an iteration is rethrown on the calling thread
  // (first one wins). With no workers (thread_count 1) runs inline.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  // The process-wide pool. Sized by set_default_thread_count() (or
  // hardware_concurrency) on first use; resized on subsequent changes.
  static ThreadPool& global();

  // Sets the size of the global pool: 0 = hardware concurrency, 1 = serial.
  // Safe to call repeatedly (e.g. from flag parsing); recreates the pool
  // when the size actually changes.
  static void set_default_thread_count(std::size_t threads);
  static std::size_t default_thread_count();

  // std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t hardware_threads();

 private:
  struct Batch;

  // `worker` is the 1-based dedicated-worker index (the calling thread of a
  // parallel_for acts as worker 0); used to label per-worker metrics.
  void worker_loop(std::size_t worker);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::shared_ptr<Batch> batch_;  // current parallel_for, null when idle
  bool shutting_down_ = false;
};

// Convenience wrapper over the global pool: deterministic parallel loop.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace fa
