#include "src/util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/obs/metrics.h"

namespace fa::io {

namespace {

obs::Counter& retries_counter() {
  static obs::Counter& c = obs::counter("fa.io.retries");
  return c;
}

obs::Counter& gave_up_counter() {
  static obs::Counter& c = obs::counter("fa.io.gave_up");
  return c;
}

obs::Counter& short_writes_counter() {
  static obs::Counter& c = obs::counter("fa.io.short_writes");
  return c;
}

std::string errno_detail(const char* op, int err) {
  return std::string(op) + " failed: " + std::strerror(err);
}

bool errno_transient(int err) { return err == EINTR || err == EAGAIN; }

}  // namespace

// ---------------------------------------------------------------------------
// Posix files

PosixWritableFile::PosixWritableFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw IoError(path_, 0, errno_detail("open", errno));
  }
}

PosixWritableFile::~PosixWritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t PosixWritableFile::write_some(const void* src, std::size_t n) {
  if (n == 0) return 0;
  if (fd_ < 0) throw IoError(path_, offset_, "write on closed file");
  const ssize_t k = ::write(fd_, src, n);
  if (k < 0) {
    const int err = errno;
    throw IoError(path_, offset_, errno_detail("write", err),
                  errno_transient(err));
  }
  offset_ += static_cast<std::uint64_t>(k);
  return static_cast<std::size_t>(k);
}

void PosixWritableFile::close() {
  if (fd_ < 0) return;
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    throw IoError(path_, offset_, errno_detail("close", errno));
  }
}

PosixReadableFile::PosixReadableFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw IoError(path_, 0, errno_detail("open", errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw IoError(path_, 0, errno_detail("fstat", err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd_);
    fd_ = -1;
    throw IoError(path_, 0, "not a regular file");
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
}

PosixReadableFile::~PosixReadableFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t PosixReadableFile::read_some(std::uint64_t offset, void* dst,
                                         std::size_t n) {
  if (n == 0) return 0;
  const ssize_t k = ::pread(fd_, dst, n, static_cast<off_t>(offset));
  if (k < 0) {
    const int err = errno;
    throw IoError(path_, offset, errno_detail("pread", err),
                  errno_transient(err));
  }
  return static_cast<std::size_t>(k);
}

// ---------------------------------------------------------------------------
// Retry machinery

double RetryPolicy::backoff_for(int k) const {
  double backoff = initial_backoff_s;
  for (int i = 0; i < k; ++i) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_s);
}

void RealClock::sleep_for(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

namespace {

// Runs `op` under the retry policy: transient IoErrors are retried with
// exponential backoff up to max_attempts total attempts; the last transient
// error (or any permanent one) is rethrown, stripped of its transient flag
// so callers see a settled failure.
template <typename Op>
void with_retries(const RetryPolicy& retry, Clock* clock, Op&& op) {
  const int attempts = std::max(1, retry.max_attempts);
  for (int attempt = 0;; ++attempt) {
    try {
      op();
      return;
    } catch (const IoError& e) {
      if (!e.transient() || attempt + 1 >= attempts) {
        if (e.transient()) {
          gave_up_counter().add();
          throw IoError(e.path(), e.offset(),
                        std::string(e.what()) + " (gave up after " +
                            std::to_string(attempt + 1) + " attempts)");
        }
        throw;
      }
      retries_counter().add();
      clock->sleep_for(retry.backoff_for(attempt));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckedWriter / CheckedReader

CheckedWriter::CheckedWriter(std::unique_ptr<WritableFile> file,
                             RetryPolicy retry, Clock* clock)
    : file_(std::move(file)),
      retry_(retry),
      clock_(clock != nullptr ? clock : &RealClock::instance()) {}

void CheckedWriter::write(const void* src, std::size_t n) {
  const std::byte* p = static_cast<const std::byte*>(src);
  std::size_t remaining = n;
  while (remaining > 0) {
    std::size_t wrote = 0;
    with_retries(retry_, clock_,
                 [&] { wrote = file_->write_some(p, remaining); });
    if (wrote < remaining) short_writes_counter().add();
    if (wrote == 0) {
      throw IoError(file_->path(), offset_, "write made no progress");
    }
    p += wrote;
    remaining -= wrote;
    offset_ += wrote;
  }
}

void CheckedWriter::flush() {
  with_retries(retry_, clock_, [&] { file_->flush(); });
}

void CheckedWriter::close() {
  with_retries(retry_, clock_, [&] { file_->close(); });
}

CheckedReader::CheckedReader(std::unique_ptr<ReadableFile> file,
                             RetryPolicy retry, Clock* clock)
    : file_(std::move(file)),
      retry_(retry),
      clock_(clock != nullptr ? clock : &RealClock::instance()) {}

void CheckedReader::read_at(std::uint64_t offset, void* dst, std::size_t n) {
  std::byte* p = static_cast<std::byte*>(dst);
  std::size_t remaining = n;
  std::uint64_t at = offset;
  while (remaining > 0) {
    std::size_t got = 0;
    with_retries(retry_, clock_,
                 [&] { got = file_->read_some(at, p, remaining); });
    if (got == 0) {
      throw IoError(file_->path(), at,
                    "unexpected end of file (" + std::to_string(remaining) +
                        " bytes short)");
    }
    p += got;
    remaining -= got;
    at += got;
  }
}

double VirtualClock::total() const {
  double sum = 0.0;
  for (double s : slept_) sum += s;
  return sum;
}

}  // namespace fa::io
