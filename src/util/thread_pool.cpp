#include "src/util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <string>

#include "src/obs/metrics.h"

namespace fa {

namespace {

// Per-worker metric handles, resolved once per (worker index, metric) —
// schedule-dependent values, so the whole family is timing-class.
struct WorkerMetrics {
  obs::Counter& items;
  obs::Counter& busy_us;
  obs::Counter& idle_us;

  explicit WorkerMetrics(std::size_t worker)
      : items(obs::counter("fa.pool.worker.items",
                           {{"worker", std::to_string(worker)}},
                           obs::Stability::kTiming)),
        busy_us(obs::counter("fa.pool.worker.busy_us",
                             {{"worker", std::to_string(worker)}},
                             obs::Stability::kTiming)),
        idle_us(obs::counter("fa.pool.worker.idle_us",
                             {{"worker", std::to_string(worker)}},
                             obs::Stability::kTiming)) {}
};

std::uint64_t us_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

// One parallel_for invocation: an atomic work counter the caller and every
// worker drain together, plus completion bookkeeping. Held by shared_ptr so
// a straggler worker that wakes late can still probe the (already drained)
// counter safely.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable all_done;
  std::exception_ptr error;
  std::mutex error_mutex;

  // Returns the number of items this thread executed, so callers can
  // attribute work to individual workers.
  std::size_t run_slice() {
    std::size_t executed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      ++executed;
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(done_mutex);
        all_done.notify_all();
      }
    }
    return executed;
  }
};

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) thread_count = 1;
  }
  // The calling thread participates in every parallel_for, so a pool of
  // size N needs N-1 dedicated workers.
  if (thread_count > 1) threads_.reserve(thread_count - 1);
  for (std::size_t i = 0; i + 1 < thread_count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker) {
  WorkerMetrics metrics(worker);
  std::shared_ptr<Batch> previous;
  for (;;) {
    std::shared_ptr<Batch> batch;
    const auto wait_start = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] {
        return shutting_down_ || (batch_ && batch_ != previous);
      });
      if (shutting_down_) return;
      batch = batch_;
    }
    const auto run_start = std::chrono::steady_clock::now();
    metrics.idle_us.add(us_between(wait_start, run_start));
    const std::size_t executed = batch->run_slice();
    metrics.busy_us.add(us_between(run_start, std::chrono::steady_clock::now()));
    metrics.items.add(executed);
    // Remember the batch we just drained so the next wait doesn't re-enter
    // it if the caller has not retired it yet.
    previous = std::move(batch);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Batch shape depends only on n, never on the schedule, so these stay in
  // the deterministic export.
  static obs::Counter& batches = obs::counter("fa.pool.batches");
  static obs::Counter& items = obs::counter("fa.pool.items");
  static obs::Histogram& batch_items = obs::histogram(
      "fa.pool.batch_items", obs::size_bounds(), {},
      obs::Stability::kDeterministic);
  batches.add(1);
  items.add(n);
  batch_items.record(static_cast<double>(n));
  if (threads_.empty() || n == 1) {
    static WorkerMetrics caller_metrics(0);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) fn(i);
    caller_metrics.busy_us.add(
        us_between(start, std::chrono::steady_clock::now()));
    caller_metrics.items.add(n);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
  }
  work_available_.notify_all();
  {
    static WorkerMetrics caller_metrics(0);
    const auto start = std::chrono::steady_clock::now();
    const std::size_t executed = batch->run_slice();
    caller_metrics.busy_us.add(
        us_between(start, std::chrono::steady_clock::now()));
    caller_metrics.items.add(executed);
  }
  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->all_done.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) >= batch->n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.reset();
  }
  work_available_.notify_all();
  if (batch->error) std::rethrow_exception(batch->error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_requested_threads = 0;  // 0 = hardware concurrency

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(g_requested_threads);
  return *g_pool;
}

void ThreadPool::set_default_thread_count(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (threads == g_requested_threads && g_pool) return;
  g_requested_threads = threads;
  g_pool.reset();  // lazily rebuilt at the new size on next use
}

std::size_t ThreadPool::default_thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_requested_threads;
}

std::size_t ThreadPool::hardware_threads() {
  const std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace fa
