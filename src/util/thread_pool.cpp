#include "src/util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

namespace fa {

// One parallel_for invocation: an atomic work counter the caller and every
// worker drain together, plus completion bookkeeping. Held by shared_ptr so
// a straggler worker that wakes late can still probe the (already drained)
// counter safely.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable all_done;
  std::exception_ptr error;
  std::mutex error_mutex;

  void run_slice() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(done_mutex);
        all_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) thread_count = 1;
  }
  // The calling thread participates in every parallel_for, so a pool of
  // size N needs N-1 dedicated workers.
  if (thread_count > 1) threads_.reserve(thread_count - 1);
  for (std::size_t i = 0; i + 1 < thread_count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::shared_ptr<Batch> previous;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] {
        return shutting_down_ || (batch_ && batch_ != previous);
      });
      if (shutting_down_) return;
      batch = batch_;
    }
    batch->run_slice();
    // Remember the batch we just drained so the next wait doesn't re-enter
    // it if the caller has not retired it yet.
    previous = std::move(batch);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
  }
  work_available_.notify_all();
  batch->run_slice();
  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->all_done.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) >= batch->n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.reset();
  }
  work_available_.notify_all();
  if (batch->error) std::rethrow_exception(batch->error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_requested_threads = 0;  // 0 = hardware concurrency

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(g_requested_threads);
  return *g_pool;
}

void ThreadPool::set_default_thread_count(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (threads == g_requested_threads && g_pool) return;
  g_requested_threads = threads;
  g_pool.reset();  // lazily rebuilt at the new size on next use
}

std::size_t ThreadPool::default_thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_requested_threads;
}

std::size_t ThreadPool::hardware_threads() {
  const std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace fa
