// Checked file I/O with bounded retry: the syscall-shaped seam between the
// trace writers/readers and the operating system.
//
// POSIX write(2)/pread(2) may legitimately return short counts or transient
// errors (EINTR, EAGAIN); unchecked std::ofstream writes swallow both and
// silently truncate on ENOSPC. This header gives the storage layer a narrow
// interface it can reason about:
//
//   WritableFile / ReadableFile  — the raw, possibly-short, possibly-failing
//                                  syscall surface. Production code uses the
//                                  Posix* implementations; the deterministic
//                                  fault injector (src/inject/io_faults.h)
//                                  substitutes its own.
//   CheckedWriter / CheckedReader — loop short transfers to completion and
//                                  retry transient errors with bounded
//                                  exponential backoff (RetryPolicy),
//                                  instrumented with obs counters
//                                  (fa.io.retries, fa.io.short_writes,
//                                  fa.io.gave_up). A VirtualClock makes the
//                                  backoff schedule testable without
//                                  sleeping.
//
// Permanent failures (ENOSPC, EIO, retry exhaustion) surface as io::IoError
// carrying the path and byte offset, so "which file, where" is never lost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace fa::io {

// Error from the storage layer. `offset` is the byte position in the file
// at which the operation failed; `transient` marks errors that a retry
// policy may re-attempt (EINTR/EAGAIN-style) — an IoError that escapes a
// CheckedWriter/CheckedReader is always permanent (retries exhausted or
// non-retryable).
class IoError : public Error {
 public:
  IoError(const std::string& path, std::uint64_t offset,
          const std::string& detail, bool transient = false)
      : Error("io: " + path + " at byte " + std::to_string(offset) + ": " +
              detail),
        path_(path),
        offset_(offset),
        transient_(transient) {}

  const std::string& path() const noexcept { return path_; }
  std::uint64_t offset() const noexcept { return offset_; }
  bool transient() const noexcept { return transient_; }

 private:
  std::string path_;
  std::uint64_t offset_;
  bool transient_;
};

// Append-only output file, syscall-shaped: write_some may persist fewer
// bytes than requested (returns the count actually written) and may throw
// IoError (transient or permanent). Implementations need not buffer;
// callers batch through CheckedWriter.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  // Writes up to `n` bytes from `src`; returns bytes persisted (>= 1 unless
  // n == 0). Throws IoError on failure.
  virtual std::size_t write_some(const void* src, std::size_t n) = 0;
  virtual void flush() {}
  virtual void close() = 0;
  virtual const std::string& path() const = 0;
};

// Positioned input file: read_some reads up to `n` bytes at `offset` and
// may return short counts; 0 means end of file.
class ReadableFile {
 public:
  virtual ~ReadableFile() = default;
  virtual std::size_t read_some(std::uint64_t offset, void* dst,
                                std::size_t n) = 0;
  virtual std::uint64_t size() const = 0;
  virtual const std::string& path() const = 0;
};

// O_WRONLY|O_CREAT|O_TRUNC file over write(2). Unbuffered: the columnar
// writer batches a whole chunk per call, the CSV writer a whole line.
class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(const std::string& path);
  ~PosixWritableFile() override;

  std::size_t write_some(const void* src, std::size_t n) override;
  void close() override;
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t offset_ = 0;  // for error messages only
};

// pread(2)-based positioned reads; never seeks, so safe to share across
// readers of disjoint ranges.
class PosixReadableFile : public ReadableFile {
 public:
  explicit PosixReadableFile(const std::string& path);
  ~PosixReadableFile() override;

  std::size_t read_some(std::uint64_t offset, void* dst,
                        std::size_t n) override;
  std::uint64_t size() const override { return size_; }
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

// Bounded exponential backoff for transient errors. The k-th retry (k >= 0,
// at most max_attempts - 1 retries after the first attempt) sleeps
// min(initial_backoff_s * backoff_multiplier^k, max_backoff_s).
struct RetryPolicy {
  int max_attempts = 4;
  double initial_backoff_s = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 0.050;

  // Backoff before retry `k` (0-based). Exposed so tests can assert the
  // schedule a VirtualClock records.
  double backoff_for(int k) const;
};

// Sleep source for retry backoff. RealClock sleeps; VirtualClock records
// the requested durations so tests can verify the schedule without waiting.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual void sleep_for(double seconds) = 0;
};

class RealClock : public Clock {
 public:
  void sleep_for(double seconds) override;
  static RealClock& instance();
};

class VirtualClock : public Clock {
 public:
  void sleep_for(double seconds) override { slept_.push_back(seconds); }
  const std::vector<double>& slept() const noexcept { return slept_; }
  double total() const;

 private:
  std::vector<double> slept_;
};

// Drives a WritableFile to completion: loops short writes, retries
// transient IoErrors per the policy, and throws a permanent IoError (path +
// byte offset) when retries are exhausted or the error is non-retryable.
class CheckedWriter {
 public:
  explicit CheckedWriter(std::unique_ptr<WritableFile> file,
                         RetryPolicy retry = {}, Clock* clock = nullptr);

  // Writes all `n` bytes or throws.
  void write(const void* src, std::size_t n);
  void flush();
  void close();

  std::uint64_t offset() const noexcept { return offset_; }
  const std::string& path() const { return file_->path(); }

 private:
  std::unique_ptr<WritableFile> file_;
  RetryPolicy retry_;
  Clock* clock_;
  std::uint64_t offset_ = 0;
};

// Exact-read counterpart: read_at fills `n` bytes at `offset` or throws
// (premature EOF is a permanent IoError naming the offset).
class CheckedReader {
 public:
  explicit CheckedReader(std::unique_ptr<ReadableFile> file,
                         RetryPolicy retry = {}, Clock* clock = nullptr);

  void read_at(std::uint64_t offset, void* dst, std::size_t n);
  std::uint64_t size() const { return file_->size(); }
  const std::string& path() const { return file_->path(); }

 private:
  std::unique_ptr<ReadableFile> file_;
  RetryPolicy retry_;
  Clock* clock_;
};

}  // namespace fa::io
