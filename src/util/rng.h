// Deterministic, fast random number generation for simulation.
//
// xoshiro256** seeded via splitmix64. We implement our own engine (rather
// than relying on std::mt19937_64) so that traces are bit-reproducible across
// standard libraries and platforms -- a requirement for regenerating the
// paper's tables deterministically.
#pragma once

#include <cstdint>
#include <vector>

namespace fa {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives an independent stream; used to give each simulated subsystem /
  // machine its own generator so population changes don't shift other draws.
  Rng fork(std::uint64_t stream_id);

  // Counter-based stream derivation: a seed for work item `index` of the
  // named `stream` under a root `seed`. Unlike fork(), this consumes no
  // generator state, so `Rng(derive_seed(seed, stream, index))` can be
  // constructed independently for every item of a parallel loop — the basis
  // of the bit-identical serial/parallel guarantee (see docs/SCHEMA.md).
  static std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream,
                                   std::uint64_t index = 0);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via polar (Marsaglia) method.
  double normal();
  double normal(double mean, double stddev);

  // Exponential with given rate (mean = 1/rate).
  double exponential(double rate);

  // Poisson(mean); Knuth for small means, PTRS-style normal approx fallback.
  std::uint64_t poisson(double mean);

  // Bernoulli trial.
  bool bernoulli(double p);

  // Index drawn according to (unnormalized, non-negative) weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fa
