#include "src/util/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "src/util/error.h"

namespace fa {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  *out_ << '\n';
}

CsvReader::CsvReader(std::istream& in) : in_(&in) {}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int ch = 0;
  while ((ch = in_->get()) != std::char_traits<char>::eof()) {
    saw_any = true;
    const char c = static_cast<char>(ch);
    if (in_quotes) {
      if (c == '"') {
        if (in_->peek() == '"') {
          field += '"';
          in_->get();
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      fields.push_back(std::move(field));
      return true;
    } else if (c == '\r') {
      // Swallow; a following '\n' terminates the row.
    } else {
      field += c;
    }
  }
  if (!saw_any) return false;
  require(!in_quotes, "CsvReader: unterminated quoted field at end of input");
  fields.push_back(std::move(field));
  return true;
}

std::int64_t parse_int(const std::string& field) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  require(end != field.c_str() && *end == '\0',
          "parse_int: invalid integer '" + field + "'");
  require(errno != ERANGE, "parse_int: out-of-range integer '" + field + "'");
  return v;
}

double parse_double(const std::string& field) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  require(end != field.c_str() && *end == '\0',
          "parse_double: invalid number '" + field + "'");
  return v;
}

double parse_finite_double(const std::string& field) {
  const double v = parse_double(field);
  require(std::isfinite(v),
          "parse_finite_double: non-finite number '" + field + "'");
  return v;
}

}  // namespace fa
