#include "src/util/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "src/util/error.h"
#include "src/util/io.h"

namespace fa {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out, std::string path)
    : out_(&out), path_(std::move(path)) {}

void CsvWriter::check(const char* action) const {
  if (path_.empty() || out_->good()) return;
  throw io::IoError(path_, bytes_written_,
                    std::string(action) + " failed (stream in error state)");
}

void CsvWriter::flush() {
  out_->flush();
  check("flush");
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  line_.clear();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line_ += ',';
    const std::string& field = fields[i];
    if (needs_quoting(field)) {
      line_ += '"';
      for (char c : field) {
        if (c == '"') line_ += '"';
        line_ += c;
      }
      line_ += '"';
    } else {
      line_ += field;
    }
  }
  line_ += '\n';
  out_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
  check("write");
  bytes_written_ += line_.size();
}

CsvReader::CsvReader(std::istream& in) : in_(&in) {}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  // Overwrite the caller's field strings in place and trim the vector at
  // the end, so their capacities survive from row to row.
  std::size_t count = 0;
  const auto next_field = [&]() -> std::string& {
    if (count == fields.size()) fields.emplace_back();
    std::string& field = fields[count++];
    field.clear();
    return field;
  };

  if (!std::getline(*in_, line_)) {
    fields.clear();
    return false;
  }
  std::string* field = &next_field();
  bool in_quotes = false;
  std::size_t i = 0;
  while (true) {
    if (i == line_.size()) {
      if (!in_quotes) break;
      // Embedded newline inside a quoted field: the record continues on
      // the next physical line.
      *field += '\n';
      require(static_cast<bool>(std::getline(*in_, line_)),
              "CsvReader: unterminated quoted field at end of input");
      i = 0;
      continue;
    }
    const char c = line_[i++];
    if (in_quotes) {
      if (c == '"') {
        if (i < line_.size() && line_[i] == '"') {
          *field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        *field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      field = &next_field();
    } else if (c == '\r') {
      // Swallow; CRLF line endings terminate the row via getline.
    } else {
      *field += c;
    }
  }
  fields.resize(count);
  return true;
}

std::int64_t parse_int(const std::string& field) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  require(end != field.c_str() && *end == '\0',
          "parse_int: invalid integer '" + field + "'");
  require(errno != ERANGE, "parse_int: out-of-range integer '" + field + "'");
  return v;
}

double parse_double(const std::string& field) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  require(end != field.c_str() && *end == '\0',
          "parse_double: invalid number '" + field + "'");
  return v;
}

double parse_finite_double(const std::string& field) {
  const double v = parse_double(field);
  require(std::isfinite(v),
          "parse_finite_double: non-finite number '" + field + "'");
  return v;
}

}  // namespace fa
