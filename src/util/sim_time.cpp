#include "src/util/sim_time.h"

#include <cstdio>

#include "src/util/error.h"

namespace fa {
namespace {

// Days from civil date, Howard Hinnant's algorithm (public domain).
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<std::int64_t>(era) * 146097 +
         static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, unsigned& m, unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yr = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : -9);
  y = static_cast<int>(yr) + (m <= 2);
}

// Monitoring epoch: 2011-07-01 00:00 UTC.
const std::int64_t kEpochDays = days_from_civil(2011, 7, 1);

TimePoint at_date(int y, int m, int d) {
  return (days_from_civil(y, m, d) - kEpochDays) * kMinutesPerDay;
}

int bucket_index(const ObservationWindow& w, TimePoint t, Duration width) {
  if (!w.contains(t)) return -1;
  return static_cast<int>((t - w.begin) / width);
}

int bucket_count(const ObservationWindow& w, Duration width) {
  return static_cast<int>((w.length() + width - 1) / width);
}

}  // namespace

double to_hours(Duration d) {
  return static_cast<double>(d) / kMinutesPerHour;
}

double to_days(Duration d) {
  return static_cast<double>(d) / kMinutesPerDay;
}

Duration from_hours(double hours) {
  return static_cast<Duration>(hours * kMinutesPerHour + 0.5);
}

Duration from_days(double days) {
  return static_cast<Duration>(days * kMinutesPerDay + 0.5);
}

int ObservationWindow::week_count() const {
  return bucket_count(*this, kMinutesPerWeek);
}

int ObservationWindow::day_count() const {
  return bucket_count(*this, kMinutesPerDay);
}

int ObservationWindow::month_count() const {
  return bucket_count(*this, kMinutesPerMonth);
}

int ObservationWindow::week_index(TimePoint t) const {
  return bucket_index(*this, t, kMinutesPerWeek);
}

int ObservationWindow::day_index(TimePoint t) const {
  return bucket_index(*this, t, kMinutesPerDay);
}

int ObservationWindow::month_index(TimePoint t) const {
  return bucket_index(*this, t, kMinutesPerMonth);
}

ObservationWindow monitoring_window() {
  return {at_date(2011, 7, 1), at_date(2013, 7, 1)};
}

ObservationWindow ticket_window() {
  return {at_date(2012, 7, 1), at_date(2013, 7, 1)};
}

ObservationWindow onoff_window() {
  return {at_date(2013, 3, 1), at_date(2013, 5, 1)};
}

std::string format_time(TimePoint t) {
  const std::int64_t day = (t >= 0 ? t : t - (kMinutesPerDay - 1)) / kMinutesPerDay;
  const std::int64_t minute_of_day = t - day * kMinutesPerDay;
  int y = 0;
  unsigned m = 0, d = 0;
  civil_from_days(day + kEpochDays, y, m, d);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u %02d:%02d", y, m, d,
                static_cast<int>(minute_of_day / 60),
                static_cast<int>(minute_of_day % 60));
  return buf;
}

std::string format_date(TimePoint t) {
  return format_time(t).substr(0, 10);
}

}  // namespace fa
