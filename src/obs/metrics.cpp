#include "src/obs/metrics.h"

#include <algorithm>

namespace fa::obs {

std::string canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::vector<double> duration_seconds_bounds() {
  return {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0};
}

std::vector<double> size_bounds() {
  return {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
          262144.0, 1048576.0};
}

#ifndef FA_OBS_DISABLED
inline namespace enabled_impl {

namespace {

// "name{labels}" map key; labels already canonical.
std::string metric_key(std::string_view name, const std::string& labels) {
  std::string key(name);
  key += '{';
  key += labels;
  key += '}';
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) buckets_[b] = 0;
}

void Histogram::record(double v) noexcept {
  if (!enabled()) return;
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry()
    : epoch_(std::chrono::steady_clock::now()) {}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: see the declaration comment.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels,
                                  Stability stability) {
  std::string canonical = canonical_labels(std::move(labels));
  const std::string key = metric_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    auto entry = std::make_unique<CounterEntry>();
    entry->name = std::string(name);
    entry->labels = std::move(canonical);
    entry->stability = stability;
    it = counters_.emplace(key, std::move(entry)).first;
  }
  return it->second->counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels,
                              Stability stability) {
  std::string canonical = canonical_labels(std::move(labels));
  const std::string key = metric_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    auto entry = std::make_unique<GaugeEntry>();
    entry->name = std::string(name);
    entry->labels = std::move(canonical);
    entry->stability = stability;
    it = gauges_.emplace(key, std::move(entry)).first;
  }
  return it->second->gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      Labels labels, Stability stability) {
  std::string canonical = canonical_labels(std::move(labels));
  const std::string key = metric_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    auto entry = std::make_unique<HistogramEntry>(
        std::string(name), std::move(canonical), stability, std::move(bounds));
    it = histograms_.emplace(key, std::move(entry)).first;
  }
  return it->second->histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The maps are keyed by "name{labels}", so iteration order already is
    // the deterministic (name, labels) order the contract promises.
    snap.counters.reserve(counters_.size());
    for (const auto& [key, entry] : counters_) {
      snap.counters.push_back({entry->name, entry->labels, entry->stability,
                               entry->counter.value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [key, entry] : gauges_) {
      snap.gauges.push_back(
          {entry->name, entry->labels, entry->stability, entry->gauge.value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [key, entry] : histograms_) {
      HistogramSample sample;
      sample.name = entry->name;
      sample.labels = entry->labels;
      sample.stability = entry->stability;
      const Histogram& h = entry->histogram;
      sample.bounds = h.bounds_;
      sample.buckets.reserve(h.bounds_.size() + 1);
      for (std::size_t b = 0; b <= h.bounds_.size(); ++b) {
        sample.buckets.push_back(
            h.buckets_[b].load(std::memory_order_relaxed));
      }
      sample.count = h.count_.load(std::memory_order_relaxed);
      sample.sum = h.sum_.load(std::memory_order_relaxed);
      snap.histograms.push_back(std::move(sample));
    }
  }

  // Span aggregates, grouped by name (map: sorted output for free).
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanEvent& e : span_events()) {
    SpanAggregate& agg = by_name[e.name];
    const double ms = e.dur_us / 1000.0;
    if (agg.count == 0) {
      agg.name = e.name;
      agg.min_ms = agg.max_ms = ms;
    } else {
      agg.min_ms = std::min(agg.min_ms, ms);
      agg.max_ms = std::max(agg.max_ms, ms);
    }
    ++agg.count;
    agg.total_ms += ms;
  }
  snap.spans.reserve(by_name.size());
  for (auto& [name, agg] : by_name) snap.spans.push_back(std::move(agg));
  return snap;
}

std::vector<SpanEvent> MetricsRegistry::span_events() const {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(span_mutex_);
    buffers = span_buffers_;
  }
  std::vector<SpanEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

void MetricsRegistry::reset() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : counters_) {
      entry->counter.value_.store(0, std::memory_order_relaxed);
    }
    for (auto& [key, entry] : gauges_) {
      entry->gauge.value_.store(0.0, std::memory_order_relaxed);
    }
    for (auto& [key, entry] : histograms_) {
      Histogram& h = entry->histogram;
      for (std::size_t b = 0; b <= h.bounds_.size(); ++b) {
        h.buckets_[b].store(0, std::memory_order_relaxed);
      }
      h.count_.store(0, std::memory_order_relaxed);
      h.sum_.store(0.0, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(span_mutex_);
  for (const auto& buffer : span_buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  seq_.store(0, std::memory_order_relaxed);
}

std::shared_ptr<SpanBuffer> MetricsRegistry::thread_buffer() {
  thread_local std::shared_ptr<SpanBuffer> tls;
  if (!tls) {
    tls = std::make_shared<SpanBuffer>();
    std::lock_guard<std::mutex> lock(span_mutex_);
    tls->tid = next_tid_++;
    span_buffers_.push_back(tls);
  }
  return tls;
}

}  // inline namespace enabled_impl
#endif  // FA_OBS_DISABLED

}  // namespace fa::obs
