#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fa::obs {

std::string canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::vector<double> duration_seconds_bounds() {
  return {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0};
}

std::vector<double> size_bounds() {
  return {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
          262144.0, 1048576.0};
}

std::vector<double> quantile_bounds(double lo, double hi,
                                    int steps_per_octave) {
  const double ratio = std::pow(2.0, 1.0 / static_cast<double>(
                                           std::max(1, steps_per_octave)));
  std::vector<double> bounds;
  double v = std::max(1.0, lo);
  double bound = std::ceil(v);
  bounds.push_back(bound);
  while (bound < hi) {
    v *= ratio;
    const double next = std::ceil(v);
    if (next > bound) {
      bound = next;
      bounds.push_back(bound);
    }
  }
  return bounds;
}

std::vector<double> sim_lag_minutes_bounds() {
  // 15 minutes .. ~32 weeks, two bounds per doubling. Covers everything
  // from reorder-buffer slack (hours-days) to detection lag (days-weeks).
  return quantile_bounds(15.0, 32.0 * 7.0 * 24.0 * 60.0, 2);
}

std::vector<double> occupancy_bounds() {
  // Queue/buffer occupancies: one bound per doubling up to 64K entries.
  return quantile_bounds(1.0, 65536.0, 1);
}

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double min_value,
                       double max_value, double q) {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, nearest-rank with ceil).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate inside bucket b between its lower and upper edges,
    // clamped to the observed extremes (tightens the first/last bucket and
    // makes p100 exactly the max).
    const double lo = std::max(min_value, b == 0 ? min_value : bounds[b - 1]);
    const double hi =
        std::min(max_value, b < bounds.size() ? bounds[b] : max_value);
    if (in_bucket == 0 || hi <= lo) return std::min(hi, max_value);
    const double frac = (static_cast<double>(rank) -
                         static_cast<double>(cumulative)) /
                        static_cast<double>(in_bucket);
    return lo + frac * (hi - lo);
  }
  return max_value;
}

BucketStats::BucketStats(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)), buckets(bounds.size() + 1, 0) {
  std::sort(bounds.begin(), bounds.end());
}

void BucketStats::record(double v) {
  std::size_t b = 0;
  while (b < bounds.size() && v > bounds[b]) ++b;
  if (buckets.empty()) buckets.assign(bounds.size() + 1, 0);
  ++buckets[b];
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

double BucketStats::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double BucketStats::quantile(double q) const {
  return bucket_quantile(bounds, buckets, count, min, max, q);
}

#ifndef FA_OBS_DISABLED
inline namespace enabled_impl {

namespace {

// "name{labels}" map key; labels already canonical.
std::string metric_key(std::string_view name, const std::string& labels) {
  std::string key(name);
  key += '{';
  key += labels;
  key += '}';
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) buckets_[b] = 0;
}

void Histogram::fold_extremes(double lo, double hi) noexcept {
  double cur = min_.load(std::memory_order_relaxed);
  while (lo < cur &&
         !min_.compare_exchange_weak(cur, lo, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (hi > cur &&
         !max_.compare_exchange_weak(cur, hi, std::memory_order_relaxed)) {
  }
}

void Histogram::record(double v) noexcept {
  if (!enabled()) return;
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  fold_extremes(v, v);
}

void Histogram::merge(const BucketStats& stats) noexcept {
  if (!enabled() || stats.count == 0) return;
  if (stats.bounds != bounds_ || stats.buckets.size() != bounds_.size() + 1) {
    return;  // mismatched layout: nothing sane to add
  }
  for (std::size_t b = 0; b < stats.buckets.size(); ++b) {
    if (stats.buckets[b] != 0) {
      buckets_[b].fetch_add(stats.buckets[b], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(stats.count, std::memory_order_relaxed);
  sum_.fetch_add(stats.sum, std::memory_order_relaxed);
  fold_extremes(stats.min, stats.max);
}

MetricsRegistry::MetricsRegistry()
    : epoch_(std::chrono::steady_clock::now()) {}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: see the declaration comment.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels,
                                  Stability stability) {
  std::string canonical = canonical_labels(std::move(labels));
  const std::string key = metric_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    auto entry = std::make_unique<CounterEntry>();
    entry->name = std::string(name);
    entry->labels = std::move(canonical);
    entry->stability = stability;
    it = counters_.emplace(key, std::move(entry)).first;
  }
  return it->second->counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels,
                              Stability stability) {
  std::string canonical = canonical_labels(std::move(labels));
  const std::string key = metric_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    auto entry = std::make_unique<GaugeEntry>();
    entry->name = std::string(name);
    entry->labels = std::move(canonical);
    entry->stability = stability;
    it = gauges_.emplace(key, std::move(entry)).first;
  }
  return it->second->gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      Labels labels, Stability stability) {
  std::string canonical = canonical_labels(std::move(labels));
  const std::string key = metric_key(name, canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    auto entry = std::make_unique<HistogramEntry>(
        std::string(name), std::move(canonical), stability, std::move(bounds));
    it = histograms_.emplace(key, std::move(entry)).first;
  }
  return it->second->histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The maps are keyed by "name{labels}", so iteration order already is
    // the deterministic (name, labels) order the contract promises.
    snap.counters.reserve(counters_.size());
    for (const auto& [key, entry] : counters_) {
      snap.counters.push_back({entry->name, entry->labels, entry->stability,
                               entry->counter.value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [key, entry] : gauges_) {
      snap.gauges.push_back(
          {entry->name, entry->labels, entry->stability, entry->gauge.value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [key, entry] : histograms_) {
      HistogramSample sample;
      sample.name = entry->name;
      sample.labels = entry->labels;
      sample.stability = entry->stability;
      const Histogram& h = entry->histogram;
      sample.bounds = h.bounds_;
      sample.buckets.reserve(h.bounds_.size() + 1);
      for (std::size_t b = 0; b <= h.bounds_.size(); ++b) {
        sample.buckets.push_back(
            h.buckets_[b].load(std::memory_order_relaxed));
      }
      sample.count = h.count_.load(std::memory_order_relaxed);
      sample.sum = h.sum_.load(std::memory_order_relaxed);
      if (sample.count > 0) {
        sample.min = h.min_.load(std::memory_order_relaxed);
        sample.max = h.max_.load(std::memory_order_relaxed);
      }
      snap.histograms.push_back(std::move(sample));
    }
  }

  // Span aggregates, grouped by name (map: sorted output for free).
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanEvent& e : span_events()) {
    SpanAggregate& agg = by_name[e.name];
    const double ms = e.dur_us / 1000.0;
    if (agg.count == 0) {
      agg.name = e.name;
      agg.min_ms = agg.max_ms = ms;
    } else {
      agg.min_ms = std::min(agg.min_ms, ms);
      agg.max_ms = std::max(agg.max_ms, ms);
    }
    ++agg.count;
    agg.total_ms += ms;
  }
  snap.spans.reserve(by_name.size());
  for (auto& [name, agg] : by_name) snap.spans.push_back(std::move(agg));
  return snap;
}

std::vector<SpanEvent> MetricsRegistry::span_events() const {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(span_mutex_);
    buffers = span_buffers_;
  }
  std::vector<SpanEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

void MetricsRegistry::reset() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : counters_) {
      entry->counter.value_.store(0, std::memory_order_relaxed);
    }
    for (auto& [key, entry] : gauges_) {
      entry->gauge.value_.store(0.0, std::memory_order_relaxed);
    }
    for (auto& [key, entry] : histograms_) {
      Histogram& h = entry->histogram;
      for (std::size_t b = 0; b <= h.bounds_.size(); ++b) {
        h.buckets_[b].store(0, std::memory_order_relaxed);
      }
      h.count_.store(0, std::memory_order_relaxed);
      h.sum_.store(0.0, std::memory_order_relaxed);
      h.min_.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
      h.max_.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(span_mutex_);
  for (const auto& buffer : span_buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  seq_.store(0, std::memory_order_relaxed);
}

std::shared_ptr<SpanBuffer> MetricsRegistry::thread_buffer() {
  thread_local std::shared_ptr<SpanBuffer> tls;
  if (!tls) {
    tls = std::make_shared<SpanBuffer>();
    std::lock_guard<std::mutex> lock(span_mutex_);
    tls->tid = next_tid_++;
    span_buffers_.push_back(tls);
  }
  return tls;
}

}  // inline namespace enabled_impl
#endif  // FA_OBS_DISABLED

}  // namespace fa::obs
