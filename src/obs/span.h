// RAII scoped timer recording into the calling thread's span buffer.
//
//   {
//     obs::Span span("sim.generate_failures");
//     ...  // timed region; spans nest freely within a thread
//   }
//
// Construction snapshots steady_clock and the thread's nesting depth;
// destruction appends one SpanEvent to the thread-local buffer. Buffers
// aggregate at flush time (MetricsRegistry::span_events / snapshot), so the
// hot path never takes a cross-thread lock while the span is open. With the
// runtime toggle off, construction is a no-op (no clock read, no record);
// with FA_OBS_DISABLED the whole class is an empty stub.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "src/obs/metrics.h"

namespace fa::obs {

#ifndef FA_OBS_DISABLED

inline namespace enabled_impl {

class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span now instead of at scope exit (for regions whose results
  // must outlive the timed part). Idempotent; the destructor then no-ops.
  void close();

 private:
  std::string name_;
  std::shared_ptr<SpanBuffer> buffer_;  // null when inactive (toggle off)
  std::chrono::steady_clock::time_point start_;
  int depth_ = 0;
};

}  // inline namespace enabled_impl

#else  // FA_OBS_DISABLED

inline namespace noop_impl {

class Span {
 public:
  explicit Span(std::string) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void close() {}
};

}  // inline namespace noop_impl

#endif  // FA_OBS_DISABLED

}  // namespace fa::obs
