#include "src/obs/span.h"

namespace fa::obs {
#ifndef FA_OBS_DISABLED
inline namespace enabled_impl {

Span::Span(std::string name) : name_(std::move(name)) {
  if (!enabled()) return;
  buffer_ = MetricsRegistry::global().thread_buffer();
  depth_ = buffer_->depth++;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() { close(); }

void Span::close() {
  if (!buffer_) return;
  const auto end = std::chrono::steady_clock::now();
  --buffer_->depth;
  MetricsRegistry& registry = MetricsRegistry::global();
  SpanEvent event;
  event.name = std::move(name_);
  event.start_us =
      std::chrono::duration<double, std::micro>(start_ - registry.epoch())
          .count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - start_).count();
  event.depth = depth_;
  event.tid = buffer_->tid;
  event.seq = registry.next_seq();
  {
    std::lock_guard<std::mutex> lock(buffer_->mutex);
    buffer_->events.push_back(std::move(event));
  }
  buffer_.reset();  // marks the span closed
}

}  // inline namespace enabled_impl
#endif  // FA_OBS_DISABLED
}  // namespace fa::obs
