#include "src/obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <utility>

namespace fa::obs {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_double(double v) {
  char buf[40];
  // %.17g round-trips doubles: identical values print identically, which
  // the byte-comparison determinism contract relies on.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  append_json_escaped(out, s);
}

std::string fmt_double(double v) { return json_double(v); }

std::string fmt_ms(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void append_counter(std::string& out, const CounterSample& c,
                    const char* indent) {
  out += indent;
  out += "{\"name\": \"";
  append_escaped(out, c.name);
  out += "\", \"labels\": \"";
  append_escaped(out, c.labels);
  out += "\", \"value\": ";
  out += std::to_string(c.value);
  out += '}';
}

void append_gauge(std::string& out, const GaugeSample& g, const char* indent) {
  out += indent;
  out += "{\"name\": \"";
  append_escaped(out, g.name);
  out += "\", \"labels\": \"";
  append_escaped(out, g.labels);
  out += "\", \"value\": ";
  out += fmt_double(g.value);
  out += '}';
}

void append_histogram(std::string& out, const HistogramSample& h,
                      const char* indent, bool include_sum) {
  out += indent;
  out += "{\"name\": \"";
  append_escaped(out, h.name);
  out += "\", \"labels\": \"";
  append_escaped(out, h.labels);
  out += "\", \"le\": [";
  for (std::size_t b = 0; b < h.bounds.size(); ++b) {
    if (b) out += ", ";
    out += fmt_double(h.bounds[b]);
  }
  out += "], \"buckets\": [";
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (b) out += ", ";
    out += std::to_string(h.buckets[b]);
  }
  out += "], \"count\": ";
  out += std::to_string(h.count);
  // Extremes and bucket-derived quantiles: order-independent, so they are
  // part of the deterministic section alongside the bucket counts.
  out += ", \"min\": ";
  out += fmt_double(h.min);
  out += ", \"max\": ";
  out += fmt_double(h.max);
  for (const auto& [key, q] :
       {std::pair{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}}) {
    out += ", \"";
    out += key;
    out += "\": ";
    out += fmt_double(bucket_quantile(h.bounds, h.buckets, h.count, h.min,
                                      h.max, q));
  }
  if (include_sum) {
    out += ", \"sum\": ";
    out += fmt_double(h.sum);
  }
  out += '}';
}

template <typename Sample, typename Append>
void append_array(std::string& out, const char* key,
                  const std::vector<Sample>& samples, Stability keep,
                  const Append& append, bool last = false) {
  out += "    \"";
  out += key;
  out += "\": [";
  bool first = true;
  for (const Sample& s : samples) {
    if (s.stability != keep) continue;
    out += first ? "\n" : ",\n";
    first = false;
    append(out, s);
  }
  out += first ? "]" : "\n    ]";
  out += last ? "\n" : ",\n";
}

// The deterministic section body ("deterministic": {...}), shared verbatim
// by to_json and deterministic_json so the two stay byte-compatible.
std::string deterministic_section(const MetricsSnapshot& snap) {
  std::string out;
  out += "  \"deterministic\": {\n";
  append_array(out, "counters", snap.counters, Stability::kDeterministic,
               [](std::string& o, const CounterSample& c) {
                 append_counter(o, c, "      ");
               });
  append_array(out, "gauges", snap.gauges, Stability::kDeterministic,
               [](std::string& o, const GaugeSample& g) {
                 append_gauge(o, g, "      ");
               });
  append_array(out, "histograms", snap.histograms, Stability::kDeterministic,
               [](std::string& o, const HistogramSample& h) {
                 append_histogram(o, h, "      ", /*include_sum=*/false);
               },
               /*last=*/true);
  out += "  }";
  return out;
}

std::string timing_section(const MetricsSnapshot& snap) {
  std::string out;
  out += "  \"timing\": {\n";
  append_array(out, "counters", snap.counters, Stability::kTiming,
               [](std::string& o, const CounterSample& c) {
                 append_counter(o, c, "      ");
               });
  append_array(out, "gauges", snap.gauges, Stability::kTiming,
               [](std::string& o, const GaugeSample& g) {
                 append_gauge(o, g, "      ");
               });
  append_array(out, "histograms", snap.histograms, Stability::kTiming,
               [](std::string& o, const HistogramSample& h) {
                 append_histogram(o, h, "      ", /*include_sum=*/true);
               });
  out += "    \"spans\": [";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanAggregate& s = snap.spans[i];
    out += i ? ",\n" : "\n";
    out += "      {\"name\": \"";
    append_escaped(out, s.name);
    out += "\", \"count\": ";
    out += std::to_string(s.count);
    out += ", \"total_ms\": ";
    out += fmt_ms(s.total_ms);
    out += ", \"min_ms\": ";
    out += fmt_ms(s.min_ms);
    out += ", \"max_ms\": ";
    out += fmt_ms(s.max_ms);
    out += '}';
  }
  out += snap.spans.empty() ? "]\n" : "\n    ]\n";
  out += "  }";
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  out += deterministic_section(snapshot);
  out += ",\n";
  out += timing_section(snapshot);
  out += "\n}\n";
  return out;
}

std::string deterministic_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  out += deterministic_section(snapshot);
  out += "\n}\n";
  return out;
}

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    out += i ? ",\n" : "\n";
    out += "  {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"fa\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"ts\": ";
    out += fmt_ms(e.start_us);
    out += ", \"dur\": ";
    out += fmt_ms(e.dur_us);
    out += ", \"args\": {\"depth\": ";
    out += std::to_string(e.depth);
    out += "}}";
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

std::string render_table(const MetricsSnapshot& snapshot) {
  std::string out;
  const auto line = [&out](const std::string& name, const std::string& labels,
                           const std::string& value, const char* tag) {
    std::string left = name;
    if (!labels.empty()) left += "{" + labels + "}";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-52s %16s  %s\n", left.c_str(),
                  value.c_str(), tag);
    out += buf;
  };
  const auto tag = [](Stability s) {
    return s == Stability::kDeterministic ? "det" : "timing";
  };

  if (!snapshot.counters.empty()) {
    out += "counters\n";
    for (const CounterSample& c : snapshot.counters) {
      line(c.name, c.labels, std::to_string(c.value), tag(c.stability));
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges\n";
    for (const GaugeSample& g : snapshot.gauges) {
      line(g.name, g.labels, fmt_double(g.value), tag(g.stability));
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms\n";
    for (const HistogramSample& h : snapshot.histograms) {
      std::string value = std::to_string(h.count);
      value += " obs";
      if (h.count > 0) {
        value += ", p50 " + fmt_ms(bucket_quantile(h.bounds, h.buckets,
                                                   h.count, h.min, h.max,
                                                   0.50));
        value += ", p99 " + fmt_ms(bucket_quantile(h.bounds, h.buckets,
                                                   h.count, h.min, h.max,
                                                   0.99));
      }
      if (h.stability == Stability::kTiming) {
        value += ", sum " + fmt_ms(h.sum);
      }
      line(h.name, h.labels, value, tag(h.stability));
    }
  }
  if (!snapshot.spans.empty()) {
    out += "spans\n";
    for (const SpanAggregate& s : snapshot.spans) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "  %-52s %8" PRIu64 "x  total %10.3f ms  min %9.3f  max "
                    "%9.3f\n",
                    s.name.c_str(), s.count, s.total_ms, s.min_ms, s.max_ms);
      out += buf;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::perror(("obs: cannot open " + path).c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (!ok) std::perror(("obs: failed writing " + path).c_str());
  std::fclose(f);
  return ok;
}

bool export_registry_files(const std::string& metrics_path,
                           const std::string& trace_path) {
  MetricsRegistry& registry = MetricsRegistry::global();
  bool ok = true;
  if (!metrics_path.empty()) {
    ok &= write_text_file(metrics_path, to_json(registry.snapshot()));
  }
  if (!trace_path.empty()) {
    ok &= write_text_file(trace_path, chrome_trace_json(registry.span_events()));
  }
  return ok;
}

}  // namespace fa::obs
