// Process-wide metrics registry: counters, gauges and histograms with
// labeled families, plus the thread-local span buffers behind obs::Span
// (span.h). The registry is the single source of truth every exporter
// (export.h) reads.
//
// Determinism contract (docs/OBSERVABILITY.md): every metric carries a
// Stability tag. kDeterministic metrics hold values that are bit-identical
// for a given workload at any --threads setting (integer event counts,
// histogram bucket counts over deterministic values); kTiming metrics hold
// wall-clock or schedule-dependent data (span durations, per-worker item
// counts) and are excluded from the deterministic snapshot section.
// Snapshots are aggregated deterministically: entries sort by (name,
// canonical label string) regardless of registration or thread order.
//
// Cost model: counter/gauge/histogram handles are stable references —
// call sites resolve them once (function-local static or per-thread) and
// the hot-path op is one relaxed atomic on top of one relaxed load of the
// runtime toggle. With the runtime toggle off every op is a no-op; with
// FA_OBS_DISABLED defined the whole API collapses to inline empty stubs
// (distinct inline namespace, so mixed TUs never violate the ODR) and the
// instrumentation compiles out entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fa::obs {

// ---- plain data shared by both the full and the stub implementation ----

// Label set of one metric family member, e.g. {{"kind", "database"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class Stability : std::uint8_t {
  kDeterministic = 0,  // thread-count-invariant; in the deterministic export
  kTiming = 1,         // wall-clock / schedule-dependent; timing export only
};

struct CounterSample {
  std::string name;
  std::string labels;  // canonical "k=v,k2=v2" (sorted by key), "" if none
  Stability stability = Stability::kDeterministic;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string labels;
  Stability stability = Stability::kDeterministic;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string labels;
  Stability stability = Stability::kDeterministic;
  std::vector<double> bounds;          // ascending upper bounds (finite)
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;  // order-dependent accumulation: timing data by nature
  double min = 0.0;  // order-independent extremes: deterministic, 0 if empty
  double max = 0.0;
};

// One closed span, times relative to the registry epoch.
struct SpanEvent {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  int depth = 0;           // nesting depth within its thread, 0 = top level
  std::uint32_t tid = 0;   // registry-assigned thread index
  std::uint64_t seq = 0;   // global close order (monotone, schedule-dependent)
};

// Per-name span aggregate (always timing-class).
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;      // sorted by (name, labels)
  std::vector<GaugeSample> gauges;          // sorted by (name, labels)
  std::vector<HistogramSample> histograms;  // sorted by (name, labels)
  std::vector<SpanAggregate> spans;         // sorted by name
};

// Canonical "k=v,k2=v2" form, sorted by key. Exposed for exporters/tests.
std::string canonical_labels(Labels labels);

// Default histogram bounds for second-valued durations and for size-like
// counts (powers of four). Declared here so call sites and tests agree.
std::vector<double> duration_seconds_bounds();
std::vector<double> size_bounds();

// Log-spaced ("HDR-style") integer bucket bounds: a geometric grid from lo
// to just past hi with steps_per_octave bounds per doubling, rounded to
// integers and deduplicated. Relative quantile error is bounded by the
// step ratio 2^(1/steps_per_octave).
std::vector<double> quantile_bounds(double lo, double hi,
                                    int steps_per_octave);

// Shared bound sets for sim-time lag metrics (minutes: 15 min .. ~32 weeks)
// and for queue-occupancy counts. One definition so recorder, exporter and
// schema tests agree on the bucket layout.
std::vector<double> sim_lag_minutes_bounds();
std::vector<double> occupancy_bounds();

// Quantile estimate from bucketed counts: walks the cumulative bucket
// counts to the bucket holding rank q*count and interpolates linearly
// inside it, clamped to the observed [min, max]. Pure arithmetic over
// order-independent inputs, so quantiles of deterministic histograms are
// themselves deterministic. Returns 0 for an empty histogram.
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double min_value,
                       double max_value, double q);

// Plain (non-atomic, non-registered) log-bucketed histogram for
// single-threaded pipeline stages that need quantiles locally — e.g. the
// detector's lag tracking, which must keep working with observability
// compiled out. Mirror into a registered obs::Histogram via merge() for
// the exported snapshot.
struct BucketStats {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;

  BucketStats() = default;
  explicit BucketStats(std::vector<double> bucket_bounds);

  void record(double v);
  double mean() const;
  double quantile(double q) const;
};

#ifndef FA_OBS_DISABLED

inline namespace enabled_impl {

inline constexpr bool kCompiledIn = true;

// Runtime toggle: relaxed load on every op, so "off" costs one predictable
// branch. Default on; bench/CLI surfaces expose --no-obs.
inline std::atomic<bool> g_runtime_enabled{true};
inline bool enabled() noexcept {
  return g_runtime_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  g_runtime_enabled.store(on, std::memory_order_relaxed);
}

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // Finds the first bound >= v (linear scan: bound lists are short) and
  // bumps that bucket; values above every bound land in the overflow slot.
  // Also folds v into the running min/max (CAS loops — order-independent,
  // so the extremes stay in the deterministic export).
  void record(double v) noexcept;

  // Bulk-adds a locally-accumulated BucketStats with identical bounds
  // (deterministic flush at stage close; mismatched bounds are ignored).
  void merge(const BucketStats& stats) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  void fold_extremes(double lo, double hi) noexcept;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;  // +inf when empty
  std::atomic<double> max_;  // -inf when empty
};

// Thread-local sink for closed spans. Owned jointly by the registry (for
// flushing) and the thread (for writing); the per-buffer mutex makes a
// flush concurrent with an in-flight span close safe.
struct SpanBuffer {
  std::uint32_t tid = 0;
  int depth = 0;  // touched only by the owning thread
  std::mutex mutex;
  std::vector<SpanEvent> events;
};

class MetricsRegistry {
 public:
  // The process-wide instance. Intentionally leaked so instrumentation in
  // static destructors / late-exiting worker threads never touches a dead
  // registry (the pointer stays reachable, so LeakSanitizer is quiet).
  static MetricsRegistry& global();

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is idempotent: the first call creates the family member,
  // later calls (any stability / bounds) return the existing handle.
  // References stay valid for the registry's lifetime; reset() zeroes
  // values but never invalidates handles.
  Counter& counter(std::string_view name, Labels labels = {},
                   Stability stability = Stability::kDeterministic);
  Gauge& gauge(std::string_view name, Labels labels = {},
               Stability stability = Stability::kDeterministic);
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       Labels labels = {},
                       Stability stability = Stability::kTiming);

  // Deterministically ordered snapshot of every registered metric plus
  // per-name span aggregates.
  MetricsSnapshot snapshot() const;

  // All closed spans so far (Chrome-trace export), in close order.
  std::vector<SpanEvent> span_events() const;

  // Zeroes every value and drops recorded spans; keeps registrations and
  // thread buffers alive (cached handles stay valid).
  void reset();

  // Span plumbing (used by obs::Span).
  std::shared_ptr<SpanBuffer> thread_buffer();
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }
  std::uint64_t next_seq() noexcept {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct CounterEntry {
    std::string name, labels;
    Stability stability;
    Counter counter;
  };
  struct GaugeEntry {
    std::string name, labels;
    Stability stability;
    Gauge gauge;
  };
  struct HistogramEntry {
    std::string name, labels;
    Stability stability;
    Histogram histogram;
    HistogramEntry(std::string n, std::string l, Stability s,
                   std::vector<double> bounds)
        : name(std::move(n)), labels(std::move(l)), stability(s),
          histogram(std::move(bounds)) {}
  };

  mutable std::mutex mutex_;
  // Keyed by "name{labels}"; std::map so snapshots iterate sorted.
  std::map<std::string, std::unique_ptr<CounterEntry>> counters_;
  std::map<std::string, std::unique_ptr<GaugeEntry>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramEntry>> histograms_;

  mutable std::mutex span_mutex_;
  std::vector<std::shared_ptr<SpanBuffer>> span_buffers_;
  std::uint32_t next_tid_ = 0;
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point epoch_;
};

// Convenience: handles from the global registry. Cache the reference at
// hot call sites (function-local static) — the lookup takes a mutex.
inline Counter& counter(std::string_view name, Labels labels = {},
                        Stability stability = Stability::kDeterministic) {
  return MetricsRegistry::global().counter(name, std::move(labels), stability);
}
inline Gauge& gauge(std::string_view name, Labels labels = {},
                    Stability stability = Stability::kDeterministic) {
  return MetricsRegistry::global().gauge(name, std::move(labels), stability);
}
inline Histogram& histogram(std::string_view name, std::vector<double> bounds,
                            Labels labels = {},
                            Stability stability = Stability::kTiming) {
  return MetricsRegistry::global().histogram(name, std::move(bounds),
                                             std::move(labels), stability);
}

}  // inline namespace enabled_impl

#else  // FA_OBS_DISABLED

// Compile-out stubs: same API, empty bodies, distinct inline namespace so
// a stubbed TU can link against fully-instrumented libraries.
inline namespace noop_impl {

inline constexpr bool kCompiledIn = false;

inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(double) noexcept {}
  double value() const noexcept { return 0.0; }
};

class Histogram {
 public:
  void record(double) noexcept {}
  void merge(const BucketStats&) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& counter(std::string_view, Labels = {},
                   Stability = Stability::kDeterministic) {
    static Counter c;
    return c;
  }
  Gauge& gauge(std::string_view, Labels = {},
               Stability = Stability::kDeterministic) {
    static Gauge g;
    return g;
  }
  Histogram& histogram(std::string_view, std::vector<double>, Labels = {},
                       Stability = Stability::kTiming) {
    static Histogram h;
    return h;
  }
  MetricsSnapshot snapshot() const { return {}; }
  std::vector<SpanEvent> span_events() const { return {}; }
  void reset() {}
};

inline Counter& counter(std::string_view name, Labels labels = {},
                        Stability stability = Stability::kDeterministic) {
  return MetricsRegistry::global().counter(name, std::move(labels), stability);
}
inline Gauge& gauge(std::string_view name, Labels labels = {},
                    Stability stability = Stability::kDeterministic) {
  return MetricsRegistry::global().gauge(name, std::move(labels), stability);
}
inline Histogram& histogram(std::string_view name, std::vector<double> bounds,
                            Labels labels = {},
                            Stability stability = Stability::kTiming) {
  return MetricsRegistry::global().histogram(name, std::move(bounds),
                                             std::move(labels), stability);
}

}  // inline namespace noop_impl

#endif  // FA_OBS_DISABLED

}  // namespace fa::obs
