// Exporters over MetricsSnapshot / SpanEvent data (pure functions — they
// never touch the registry, so they work identically with the stubbed API,
// which simply hands them empty inputs).
//
// Three formats:
//   render_table      human-readable fixed-width table (bench/CLI output)
//   to_json           full snapshot: {"deterministic": {...}, "timing": {...}}
//   chrome_trace_json trace-event JSON loadable in chrome://tracing/Perfetto
//
// The "deterministic" JSON section contains only Stability::kDeterministic
// metrics and omits order-dependent fields (histogram sums); for a fixed
// workload it is byte-identical at any thread count. deterministic_json()
// emits exactly that section as a standalone document, which is what the
// determinism tests and tools/check_metrics_schema.py --compare consume.
#pragma once

#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace fa::obs {

std::string render_table(const MetricsSnapshot& snapshot);

// {"deterministic": {...}, "timing": {...}} — the deterministic object is
// byte-identical to deterministic_json()'s payload.
std::string to_json(const MetricsSnapshot& snapshot);

// {"deterministic": {...}} only.
std::string deterministic_json(const MetricsSnapshot& snapshot);

// {"displayTimeUnit": "ms", "traceEvents": [...]} — one complete ("X")
// event per span, pid 1, tid = registry thread index, timestamps in
// microseconds since the registry epoch.
std::string chrome_trace_json(const std::vector<SpanEvent>& events);

// JSON string-escape and round-tripping %.17g double formatting, shared
// with other hand-rolled JSON emitters (the health heartbeat lines).
void append_json_escaped(std::string& out, const std::string& s);
std::string json_double(double v);

// Writes `text` to `path`; returns false (after perror) on failure. Shared
// by the bench/CLI export surfaces.
bool write_text_file(const std::string& path, const std::string& text);

// One-call CLI surface: snapshots the global registry and writes the full
// metrics JSON to `metrics_path` and the Chrome trace to `trace_path`
// (either may be empty = skip). Returns false if any write failed.
bool export_registry_files(const std::string& metrics_path,
                           const std::string& trace_path);

}  // namespace fa::obs
