#include "src/sim/fleet.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace fa::sim {
namespace {

double sample_discrete(const DiscreteSpec& spec, Rng& rng) {
  require(spec.values.size() == spec.weights.size() && !spec.values.empty(),
          "sample_discrete: malformed DiscreteSpec");
  return spec.values[rng.weighted_index(spec.weights)];
}

// Mean usage around a mixture component center, jittered within the band so
// usage values are not artificially discrete.
double sample_usage_mean(const DiscreteSpec& spec, Rng& rng) {
  const double center = sample_discrete(spec, rng);
  const double jittered = center * rng.uniform(0.75, 1.25);
  return std::clamp(jittered, 0.5, 99.0);
}

constexpr int kPowerDomainSize = 40;  // servers sharing electrical feed
constexpr int kAppGroupMin = 2;
constexpr int kAppGroupMax = 8;
constexpr double kAppGroupMembership = 0.35;

}  // namespace

Fleet build_fleet(const SimulationConfig& config, Rng& rng) {
  Fleet fleet;
  const ObservationWindow monitoring = monitoring_window();
  const ObservationWindow year = ticket_window();

  int next_power_domain = 0;
  int next_app_group = 0;

  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    const PopulationSpec& pop = config.systems[sys];

    // Per-system power domains are filled round-robin as servers are built.
    // Stand-alone PMs and virtualization boxes live in separate rack rows,
    // so domains are type-pure (this also matches the paper's Sys II, whose
    // 52 VMs saw no crash tickets at all).
    int domain_fill = kPowerDomainSize;  // force a fresh domain per system
    bool domain_virtual = false;
    const auto assign_domain = [&](bool virtual_side) {
      if (domain_fill >= kPowerDomainSize || domain_virtual != virtual_side) {
        ++next_power_domain;
        fleet.power_domain_members.emplace_back();
        domain_fill = 0;
        domain_virtual = virtual_side;
      }
      ++domain_fill;
      return next_power_domain - 1;
    };

    // ---- physical machines ----
    for (int i = 0; i < pop.pm_count; ++i) {
      trace::ServerRecord s;
      s.id = trace::ServerId{static_cast<std::int32_t>(fleet.servers.size())};
      s.type = trace::MachineType::kPhysical;
      s.subsystem = sys;
      s.cpu_count = static_cast<int>(sample_discrete(config.pm_cpu_count, rng));
      s.memory_gb = sample_discrete(config.pm_memory_gb, rng);
      // The paper's dataset has no disk information for PMs.
      s.first_record = monitoring.begin;

      MachineProfile p;
      p.mean_cpu_util = sample_usage_mean(config.cpu_util_mixture, rng);
      p.mean_mem_util = sample_usage_mean(config.pm_mem_util_mixture, rng);
      p.creation = monitoring.begin;
      p.power_domain = assign_domain(false);
      fleet.power_domain_members[static_cast<std::size_t>(p.power_domain)]
          .push_back(s.id);

      fleet.servers.push_back(s);
      fleet.profiles.push_back(p);
    }

    // ---- hosting boxes and virtual machines ----
    // Boxes are drawn by capacity until they can hold all VMs; VMs fill
    // boxes completely so a VM's consolidation level equals its box's
    // capacity, reproducing the population shares of Fig. 9.
    int remaining = pop.vm_count;
    while (remaining > 0) {
      const int capacity =
          static_cast<int>(sample_discrete(config.box_capacity, rng));
      const int members = std::min(capacity, remaining);
      remaining -= members;

      const trace::BoxId box{
          static_cast<std::int32_t>(fleet.box_members.size())};
      fleet.box_members.emplace_back();
      const int box_domain = assign_domain(true);

      for (int i = 0; i < members; ++i) {
        trace::ServerRecord s;
        s.id =
            trace::ServerId{static_cast<std::int32_t>(fleet.servers.size())};
        s.type = trace::MachineType::kVirtual;
        s.subsystem = sys;
        s.cpu_count =
            static_cast<int>(sample_discrete(config.vm_cpu_count, rng));
        s.memory_gb = sample_discrete(config.vm_memory_gb, rng);
        s.disk_gb = sample_discrete(config.vm_disk_gb, rng);
        s.disk_count =
            static_cast<int>(sample_discrete(config.vm_disk_count, rng));
        s.host_box = box;

        MachineProfile p;
        p.mean_cpu_util = sample_usage_mean(config.cpu_util_mixture, rng);
        p.mean_mem_util = sample_usage_mean(config.vm_mem_util_mixture, rng);
        p.mean_disk_util = sample_usage_mean(config.vm_disk_util_mixture, rng);
        p.mean_net_kbps =
            sample_discrete(config.vm_net_kbps_mixture, rng) *
            rng.uniform(0.75, 1.25);
        p.onoff_per_month = sample_discrete(config.vm_onoff_per_month, rng);
        p.consolidation = capacity;
        // VM creation: a fraction predates the monitoring DB (left-censored
        // ages); the rest appear uniformly through the monitoring window,
        // but early enough to have some exposure in the ticket year.
        if (rng.bernoulli(config.vm_precreated_fraction)) {
          p.creation =
              monitoring.begin - from_days(rng.uniform(1.0, 540.0));
        } else {
          // Creations are front-loaded (the virtualized fleet grew early;
          // the paper notes batch-style creation), so the age distribution
          // at failure time skews old: u^1.6 biases toward the window
          // start.
          const double u = std::pow(rng.uniform(), 1.6);
          p.creation = monitoring.begin +
                       static_cast<Duration>(
                           u * static_cast<double>(year.end -
                                                   60 * kMinutesPerDay -
                                                   monitoring.begin));
        }
        p.power_domain = box_domain;

        s.first_record = std::max(p.creation, monitoring.begin);

        fleet.power_domain_members[static_cast<std::size_t>(p.power_domain)]
            .push_back(s.id);
        fleet.box_members.back().push_back(s.id);
        fleet.servers.push_back(s);
        fleet.profiles.push_back(p);
      }
    }

    // ---- application groups (multi-tier software spanning servers) ----
    // A share of this system's servers is partitioned into small groups;
    // software incidents propagate within a group. Groups are type-
    // homogeneous: an application is deployed either on VMs or on PMs.
    for (int ti = 0; ti < trace::kMachineTypeCount; ++ti) {
      std::vector<trace::ServerId> pool;
      for (const trace::ServerRecord& s : fleet.servers) {
        if (s.subsystem == sys &&
            s.type == static_cast<trace::MachineType>(ti) &&
            rng.bernoulli(kAppGroupMembership)) {
          pool.push_back(s.id);
        }
      }
      rng.shuffle(pool);
      std::size_t cursor = 0;
      while (pool.size() - cursor >= kAppGroupMin) {
        const auto size = static_cast<std::size_t>(
            rng.uniform_int(kAppGroupMin, kAppGroupMax));
        const auto take = std::min(size, pool.size() - cursor);
        if (take < kAppGroupMin) break;
        fleet.app_group_members.emplace_back();
        for (std::size_t i = 0; i < take; ++i) {
          const trace::ServerId id = pool[cursor++];
          fleet.profiles[static_cast<std::size_t>(id.value)].app_group =
              next_app_group;
          fleet.app_group_members.back().push_back(id);
        }
        ++next_app_group;
      }
    }
  }

  require(fleet.servers.size() == fleet.profiles.size(),
          "build_fleet: servers/profiles desynchronized");
  return fleet;
}

}  // namespace fa::sim
