// The ticketing system: renders failure events into crash problem tickets
// (free text + repair durations) and generates the background volume of
// non-crash problem tickets that dominates the ticket database (Table II).
#pragma once

#include <array>
#include <vector>

#include "src/sim/config.h"
#include "src/sim/failures.h"
#include "src/sim/fleet.h"
#include "src/trace/trace_writer.h"
#include "src/util/rng.h"

namespace fa::sim {

// Emits one crash ticket per failure event, with class-specific LogNormal
// repair times (Table IV) and class-conditioned ticket text. Large incidents
// can lose tickets when the monitoring server itself is affected
// (Section IV-E); the incident's first event is never lost. Ticket rendering
// fans out over the thread pool with one stream per event; ids and row order
// stay in event order, committed block-wise so memory stays bounded when
// the writer streams to disk. Returns the number of crash tickets emitted
// per subsystem (input to the background-ticket budget).
std::array<int, trace::kSubsystemCount> emit_crash_tickets(
    const SimulationConfig& config, const Fleet& fleet,
    std::vector<FailureEvent> events, trace::TraceWriter& writer);

// Emits non-crash background tickets so each subsystem's total ticket count
// matches its Table II volume; `crash_count` is emit_crash_tickets' return
// value. One stream per ticket; parallel, order-stable, block-wise commits.
void emit_background_tickets(
    const SimulationConfig& config, const Fleet& fleet,
    const std::array<int, trace::kSubsystemCount>& crash_count,
    trace::TraceWriter& writer);

}  // namespace fa::sim
