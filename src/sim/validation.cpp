#include "src/sim/validation.h"

#include <cmath>

#include "src/util/strings.h"

namespace fa::sim {

std::string ValidationReport::to_string() const {
  if (ok()) return "trace validation: OK\n";
  std::string out = "trace validation: " + std::to_string(issues.size()) +
                    " issue(s)\n";
  for (const ValidationIssue& issue : issues) {
    out += "  [" + issue.check + "] " + issue.message + "\n";
  }
  return out;
}

ValidationReport validate_trace(const trace::TraceDatabase& db,
                                const SimulationConfig& config,
                                double crash_tolerance) {
  ValidationReport report;
  const auto add = [&](std::string check, std::string message) {
    report.issues.push_back({std::move(check), std::move(message)});
  };
  const ObservationWindow& year = db.window();

  // Populations and ticket volumes.
  std::array<std::array<int, 2>, trace::kSubsystemCount> crash_counts{};
  for (const trace::Ticket& t : db.tickets()) {
    if (t.is_crash) {
      ++crash_counts[t.subsystem]
                    [static_cast<int>(db.server(t.server).type)];
      if (!year.contains(t.opened)) {
        add("ticket.window", "crash ticket " + std::to_string(t.id.value) +
                                 " outside the observation year");
      }
      if (t.repair_time() <= 0) {
        add("ticket.repair", "crash ticket " + std::to_string(t.id.value) +
                                 " has non-positive repair time");
      }
    }
  }
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    const PopulationSpec& pop = config.systems[sys];
    const auto name = std::string(trace::subsystem_name(sys));
    if (db.server_count(trace::MachineType::kPhysical, sys) !=
        static_cast<std::size_t>(pop.pm_count)) {
      add("population." + name + ".pm", "PM population mismatch");
    }
    if (db.server_count(trace::MachineType::kVirtual, sys) !=
        static_cast<std::size_t>(pop.vm_count)) {
      add("population." + name + ".vm", "VM population mismatch");
    }
    if (db.ticket_count(sys) != static_cast<std::size_t>(pop.all_tickets)) {
      add("tickets." + name,
          "total ticket volume " + std::to_string(db.ticket_count(sys)) +
              " != target " + std::to_string(pop.all_tickets));
    }
    const auto check_crash = [&](int type_index, int target,
                                 const char* label) {
      const int measured = crash_counts[sys][type_index];
      if (target == 0) {
        if (measured != 0) {
          add("crash." + name + "." + label,
              "expected zero crash tickets, measured " +
                  std::to_string(measured));
        }
        return;
      }
      // Absolute slack floor: tiny strata (a target of 10 tickets has
      // Poisson noise of ~3) must not trip the relative tolerance.
      const double slack =
          std::max(crash_tolerance * target,
                   3.0 * std::sqrt(static_cast<double>(target)) + 1.0);
      if (std::fabs(measured - target) > slack) {
        add("crash." + name + "." + label,
            "crash tickets " + std::to_string(measured) +
                " deviate beyond +-" + format_double(slack, 1) +
                " from target " + std::to_string(target));
      }
    };
    check_crash(0, pop.pm_crash_tickets, "pm");
    check_crash(1, pop.vm_crash_tickets, "vm");
  }

  // Schema expectations per machine type.
  const ObservationWindow& onoff = db.onoff_tracking();
  for (const trace::ServerRecord& s : db.servers()) {
    const bool is_vm = s.type == trace::MachineType::kVirtual;
    if (is_vm != s.disk_gb.has_value() || is_vm != s.disk_count.has_value() ||
        is_vm != s.host_box.valid()) {
      add("schema.server." + std::to_string(s.id.value),
          "disk/box fields inconsistent with machine type");
    }
    if (s.first_record < year.end && db.weekly_usage_for(s.id).empty()) {
      add("monitoring.server." + std::to_string(s.id.value),
          "exposed server has no weekly usage rows");
    }
    const auto events = db.power_events_for(s.id);
    if (!is_vm && !events.empty()) {
      add("power.server." + std::to_string(s.id.value),
          "PM carries power events");
    }
    for (const trace::PowerEvent& e : events) {
      if (!onoff.contains(e.at)) {
        add("power.window." + std::to_string(s.id.value),
            "power event outside the on/off tracking window");
        break;
      }
    }
    if (is_vm && db.snapshots_for(s.id).empty() &&
        s.first_record < year.end) {
      add("snapshots.server." + std::to_string(s.id.value),
          "exposed VM has no monthly snapshots");
    }
  }
  return report;
}

}  // namespace fa::sim
