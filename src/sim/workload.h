// Monitoring-database content: weekly resource-usage rollups for every
// machine, monthly placement snapshots for VMs, and the power on/off events
// a 15-min sampler would record during the paper's two-month fine-grained
// window (March-April 2013).
#pragma once

#include "src/sim/config.h"
#include "src/sim/fleet.h"
#include "src/trace/trace_writer.h"
#include "src/util/rng.h"

namespace fa::sim {

// Weekly usage rows over the ticket year, jittered around each machine's
// static mean profile. Disk/network columns are filled for VMs only,
// mirroring the gaps in the paper's dataset. One RNG stream per server,
// generated in parallel blocks and committed serially; row order stays
// (server, week) and memory stays one block of rows.
void emit_weekly_usage(const SimulationConfig& config, const Fleet& fleet,
                       trace::TraceWriter& writer);

// Monthly (box, consolidation) snapshots for every VM existing that month.
void emit_monthly_snapshots(const Fleet& fleet, trace::TraceWriter& writer);

// Power off/on event pairs for VMs inside the fine-grained on/off window,
// with Poisson cycle counts matching each VM's monthly on/off frequency.
// One RNG stream per server, generated in parallel blocks.
void emit_power_events(const SimulationConfig& config, const Fleet& fleet,
                       trace::TraceWriter& writer);

}  // namespace fa::sim
