// Builds the simulated machine population: server configurations sampled
// from the paper's reported distributions, the virtualization topology
// (hosting boxes and consolidation levels), and the latent structure the
// failure engine propagates through (power domains, multi-tier app groups).
#pragma once

#include <optional>
#include <vector>

#include "src/sim/config.h"
#include "src/trace/records.h"
#include "src/util/rng.h"

namespace fa::sim {

// Latent per-machine state not visible in the trace schema.
struct MachineProfile {
  // Static mean resource usage driving both the recorded weekly series and
  // the hazard model.
  double mean_cpu_util = 5.0;
  double mean_mem_util = 10.0;
  std::optional<double> mean_disk_util;  // VMs only
  std::optional<double> mean_net_kbps;   // VMs only

  double onoff_per_month = 0.0;  // VMs: average on/off cycles per month
  int consolidation = 1;         // VMs: co-located VM count on the box
  // True creation time (may precede the monitoring DB window).
  TimePoint creation = 0;
  int power_domain = 0;  // latent: shared electrical infrastructure
  int app_group = -1;    // latent: multi-tier application membership, or -1
};

struct Fleet {
  // servers[i].id.value == i; profiles is parallel to servers.
  std::vector<trace::ServerRecord> servers;
  std::vector<MachineProfile> profiles;
  // VM members per hosting box, indexed by BoxId value.
  std::vector<std::vector<trace::ServerId>> box_members;
  // Server members per power domain (global domain index).
  std::vector<std::vector<trace::ServerId>> power_domain_members;
  // Server members per application group (global group index).
  std::vector<std::vector<trace::ServerId>> app_group_members;

  const trace::ServerRecord& server(trace::ServerId id) const {
    return servers[static_cast<std::size_t>(id.value)];
  }
  const MachineProfile& profile(trace::ServerId id) const {
    return profiles[static_cast<std::size_t>(id.value)];
  }
};

Fleet build_fleet(const SimulationConfig& config, Rng& rng);

}  // namespace fa::sim
