// Event-stream emitter: replays a trace as a timestamp-ordered feed.
//
// The simulator's tables are grouped by kind (crash tickets, background
// tickets, weekly usage); a live ingestion service sees one interleaved
// stream instead. emit_stream() merges tickets and usage samples into
// trace::StreamSink deliveries sorted by timestamp (deterministic
// tie-breaks), optionally warping ticket times through a scripted hazard
// timeline so failure *rates* shift at known instants — the ground truth
// the online detector (src/detect/) is scored against.
//
// The warp is a measure-preserving monotone remap of the ticket window:
// with piecewise-constant relative intensity r(t) (1.0 until the first
// shift), an original timestamp at window fraction u moves to the point
// where the normalized integral of r reaches u. Total ticket counts are
// unchanged; the local event rate after the remap is proportional to r, so
// a `factor = 4` shift at time T multiplies the observed failure rate at T
// by 4 while everything else about the trace (classes, servers, repair
// durations, aftershock structure) is preserved. Repair durations ride
// along: closed = warped opened + original repair time.
#pragma once

#include <vector>

#include "src/trace/database.h"
#include "src/trace/event_stream.h"
#include "src/util/sim_time.h"

namespace fa::sim {

// One scripted hazard change: from `at` onward the relative failure
// intensity is `factor` (absolute, not cumulative — the timeline is the
// step function of the most recent shift, 1.0 before the first).
struct HazardShift {
  TimePoint at = 0;
  double factor = 1.0;
};

// Stream-replay scenario: the scripted hazard timeline plus emitter knobs.
struct StreamScenario {
  // Must be sorted by `at`, each strictly inside the ticket window and with
  // factor > 0; empty = stationary replay (no warp at all).
  std::vector<HazardShift> shifts;

  // Stop the feed early (tenant disconnect mid-window): when set to a point
  // inside the window, events at or after the cutoff are not delivered and
  // finish() reports the cutoff as stream end. 0 = full window.
  TimePoint cutoff = 0;

  // The ground-truth change log the detector is scored against: the shift
  // instants where the factor actually changes value.
  std::vector<TimePoint> change_points() const;
};

// Replays `db` (finalized) into `sink` as a merged, timestamp-ordered
// event stream: begin(meta), every ticket opening + weekly usage sample in
// `at` order, finish(end). Deterministic: equal inputs produce an identical
// delivery sequence at any thread count (the emitter itself is serial; its
// cost is one sort over the event index).
void emit_stream(const trace::TraceDatabase& db,
                 const StreamScenario& scenario, trace::StreamSink& sink);

// The warped timestamp of `t` under the scenario timeline within `window`
// (identity outside the window or with no shifts). Exposed for tests.
TimePoint warp_time(const StreamScenario& scenario,
                    const ObservationWindow& window, TimePoint t);

}  // namespace fa::sim
