#include "src/sim/ticketing.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/seed_streams.h"
#include "src/stats/lognormal.h"
#include "src/text/ticket_text.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::sim {
namespace {

// Parallel render blocks are committed serially after each block, so peak
// memory is one block of rendered tickets even when the writer streams to
// disk. Stream ids stay global indexes: block size cannot affect output.
constexpr std::size_t kRenderBlock = 8192;

stats::LogNormal repair_distribution(const RepairSpec& spec) {
  return stats::LogNormal::from_mean_median(spec.mean_hours,
                                            spec.median_hours);
}

}  // namespace

std::array<int, trace::kSubsystemCount> emit_crash_tickets(
    const SimulationConfig& config, const Fleet& fleet,
    std::vector<FailureEvent> events, trace::TraceWriter& writer) {
  // Serial planning pass over the (time-sorted) events: distinct servers per
  // incident decide monitoring-loss eligibility, and an incident's first
  // event is exempt from loss.
  std::unordered_map<trace::IncidentId,
                     std::unordered_set<trace::ServerId>>
      incident_servers;
  for (const FailureEvent& e : events) {
    incident_servers[e.incident].insert(e.server);
  }
  std::unordered_set<trace::IncidentId> incident_seen;
  std::vector<bool> first_of_incident(events.size());
  std::vector<bool> loss_eligible(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    first_of_incident[i] = incident_seen.insert(events[i].incident).second;
    loss_eligible[i] =
        !first_of_incident[i] &&
        static_cast<int>(incident_servers[events[i].incident].size()) >=
            config.monitoring_loss_min_size;
  }

  std::vector<stats::LogNormal> repair;
  repair.reserve(trace::kFailureClassCount);
  for (const auto& spec : config.repair) {
    repair.push_back(repair_distribution(spec));
  }

  // Parallel rendering in blocks: each failure event renders its ticket (or
  // its monitoring loss) from a private stream into its own slot, then the
  // block commits serially — ticket ids follow event order, as before.
  std::array<int, trace::kSubsystemCount> crash_count{};
  std::vector<std::optional<trace::Ticket>> rendered(
      std::min(kRenderBlock, events.size()));
  std::vector<trace::Ticket> batch;
  batch.reserve(rendered.size());
  for (std::size_t block = 0; block < events.size(); block += kRenderBlock) {
    const std::size_t n = std::min(kRenderBlock, events.size() - block);
    parallel_for(n, [&](std::size_t j) {
      const std::size_t i = block + j;
      const FailureEvent& e = events[i];
      rendered[j].reset();
      Rng rng = stream_rng(config.seed, SeedStream::kCrashTicket, i);
      if (loss_eligible[i] &&
          rng.bernoulli(config.monitoring_loss_probability)) {
        return;  // the monitoring server itself was down; ticket never filed
      }

      trace::Ticket t;
      t.incident = e.incident;
      t.server = e.server;
      t.subsystem = fleet.server(e.server).subsystem;
      t.is_crash = true;
      t.true_class = e.recorded_class;
      t.opened = e.at;
      // Repair effort follows the true cause; a vaguely-written ticket still
      // took however long its real problem took to fix. The down time also
      // includes the (short) queueing interval before the repair starts.
      const double queue_hours =
          config.queueing.median_hours *
          std::exp(config.queueing.sigma * rng.normal());
      const double repair_hours =
          repair[static_cast<std::size_t>(e.cause_class)].sample(rng);
      t.closed = e.at +
                 std::max<Duration>(1, from_hours(queue_hours + repair_hours));
      auto text =
          text::generate_crash_text(e.recorded_class, config.text_style, rng);
      t.description = std::move(text.description);
      t.resolution = std::move(text.resolution);
      rendered[j] = std::move(t);
    });
    // Compact the block (monitoring losses leave holes) and commit it as one
    // batch, letting the sink encode columns in parallel. Ticket ids still
    // follow event order: batches are committed serially, holes skipped.
    batch.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (!rendered[j]) continue;
      ++crash_count[rendered[j]->subsystem];
      batch.push_back(std::move(*rendered[j]));
    }
    writer.add_tickets(batch);
  }
  return crash_count;
}

void emit_background_tickets(
    const SimulationConfig& config, const Fleet& fleet,
    const std::array<int, trace::kSubsystemCount>& crash_count,
    trace::TraceWriter& writer) {
  // Index servers per subsystem for cheap random targeting.
  std::array<std::vector<trace::ServerId>, trace::kSubsystemCount> by_system;
  for (const trace::ServerRecord& s : fleet.servers) {
    by_system[s.subsystem].push_back(s.id);
  }

  // Flatten the per-subsystem ticket budget into one global index space so
  // every background ticket owns a stable stream id.
  struct Slot {
    trace::Subsystem sys;
  };
  std::vector<Slot> slots;
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    const int remaining = config.systems[sys].all_tickets - crash_count[sys];
    require(!by_system[sys].empty() || remaining <= 0,
            "emit_background_tickets: subsystem without servers");
    for (int i = 0; i < remaining; ++i) slots.push_back({sys});
  }

  const ObservationWindow year = ticket_window();
  const auto background_repair =
      stats::LogNormal::from_mean_median(48.0, 8.0);

  std::vector<trace::Ticket> rendered(std::min(kRenderBlock, slots.size()));
  for (std::size_t block = 0; block < slots.size(); block += kRenderBlock) {
    const std::size_t n = std::min(kRenderBlock, slots.size() - block);
    parallel_for(n, [&](std::size_t j) {
      const std::size_t i = block + j;
      const trace::Subsystem sys = slots[i].sys;
      Rng rng = stream_rng(config.seed, SeedStream::kBackgroundTicket, i);
      trace::Ticket t;
      t.server = by_system[sys][static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(by_system[sys].size()) - 1))];
      t.subsystem = sys;
      t.is_crash = false;
      t.true_class = trace::FailureClass::kOther;
      t.opened =
          year.begin + static_cast<Duration>(rng.uniform(
                           0.0, static_cast<double>(year.length() - 1)));
      t.closed =
          t.opened + std::max<Duration>(
                         1, from_hours(background_repair.sample(rng)));
      auto text = text::generate_background_text(rng);
      t.description = std::move(text.description);
      t.resolution = std::move(text.resolution);
      rendered[j] = std::move(t);
    });
    writer.add_tickets(std::span(rendered.data(), n));
  }
}

}  // namespace fa::sim
