#include "src/sim/ticketing.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/stats/lognormal.h"
#include "src/text/ticket_text.h"
#include "src/util/error.h"

namespace fa::sim {
namespace {

stats::LogNormal repair_distribution(const RepairSpec& spec) {
  return stats::LogNormal::from_mean_median(spec.mean_hours,
                                            spec.median_hours);
}

}  // namespace

void emit_crash_tickets(const SimulationConfig& config,
                        std::vector<FailureEvent> events,
                        trace::TraceDatabase& db, Rng& rng) {
  // Distinct servers per incident, to decide monitoring-loss eligibility.
  std::unordered_map<trace::IncidentId,
                     std::unordered_set<trace::ServerId>>
      incident_servers;
  for (const FailureEvent& e : events) {
    incident_servers[e.incident].insert(e.server);
  }
  std::unordered_set<trace::IncidentId> incident_seen;

  std::vector<stats::LogNormal> repair;
  repair.reserve(trace::kFailureClassCount);
  for (const auto& spec : config.repair) {
    repair.push_back(repair_distribution(spec));
  }

  for (const FailureEvent& e : events) {
    const bool first_of_incident = incident_seen.insert(e.incident).second;
    const bool large_incident =
        static_cast<int>(incident_servers[e.incident].size()) >=
        config.monitoring_loss_min_size;
    if (!first_of_incident && large_incident &&
        rng.bernoulli(config.monitoring_loss_probability)) {
      continue;  // the monitoring server itself was down; ticket never filed
    }

    trace::Ticket t;
    t.incident = e.incident;
    t.server = e.server;
    t.subsystem = db.server(e.server).subsystem;
    t.is_crash = true;
    t.true_class = e.recorded_class;
    t.opened = e.at;
    // Repair effort follows the true cause; a vaguely-written ticket still
    // took however long its real problem took to fix. The down time also
    // includes the (short) queueing interval before the repair starts.
    const double queue_hours =
        config.queueing.median_hours *
        std::exp(config.queueing.sigma * rng.normal());
    const double repair_hours =
        repair[static_cast<std::size_t>(e.cause_class)].sample(rng);
    t.closed =
        e.at + std::max<Duration>(1, from_hours(queue_hours + repair_hours));
    auto text =
        text::generate_crash_text(e.recorded_class, config.text_style, rng);
    t.description = std::move(text.description);
    t.resolution = std::move(text.resolution);
    db.add_ticket(std::move(t));
  }
}

void emit_background_tickets(const SimulationConfig& config,
                             const Fleet& fleet, trace::TraceDatabase& db,
                             Rng& rng) {
  // Crash tickets already present, per subsystem.
  std::array<int, trace::kSubsystemCount> crash_count{};
  for (const trace::Ticket& t : db.tickets()) {
    if (t.is_crash) ++crash_count[t.subsystem];
  }

  // Index servers per subsystem for cheap random targeting.
  std::array<std::vector<trace::ServerId>, trace::kSubsystemCount> by_system;
  for (const trace::ServerRecord& s : fleet.servers) {
    by_system[s.subsystem].push_back(s.id);
  }

  const ObservationWindow year = ticket_window();
  const auto background_repair =
      stats::LogNormal::from_mean_median(48.0, 8.0);

  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    const int remaining =
        config.systems[sys].all_tickets - crash_count[sys];
    require(!by_system[sys].empty() || remaining <= 0,
            "emit_background_tickets: subsystem without servers");
    for (int i = 0; i < remaining; ++i) {
      trace::Ticket t;
      t.server = by_system[sys][static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(by_system[sys].size()) - 1))];
      t.subsystem = sys;
      t.is_crash = false;
      t.true_class = trace::FailureClass::kOther;
      t.opened = year.begin + static_cast<Duration>(rng.uniform(
                                  0.0, static_cast<double>(year.length() - 1)));
      t.closed =
          t.opened + std::max<Duration>(
                         1, from_hours(background_repair.sample(rng)));
      auto text = text::generate_background_text(rng);
      t.description = std::move(text.description);
      t.resolution = std::move(text.resolution);
      db.add_ticket(std::move(t));
    }
  }
}

}  // namespace fa::sim
