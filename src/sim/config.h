// Simulation configuration, calibrated to the statistics the paper reports.
//
// Anchors (see DESIGN.md for the full derivation):
//   * populations and per-system crash/background ticket volumes: Table II;
//   * per-system, per-class crash mixes (incl. the "other" share): Fig. 1 and
//     Section III-A prose;
//   * recurrence (aftershock) intensity: Table V / Fig. 5;
//   * incident-size distributions per class: Tables VI and VII;
//   * repair-time LogNormals: Table IV (solved exactly from mean/median);
//   * covariate hazard multipliers: the trends of Figs. 7-10.
//
// The paper's own aggregates are not perfectly mutually consistent (e.g. the
// Fig. 2 "All" rates vs. Table II ticket counts vs. Table V random
// probabilities); we anchor event *counts* on Table II and recurrence on
// Table V, and record the residual deviations in EXPERIMENTS.md.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/text/ticket_text.h"
#include "src/trace/types.h"

namespace fa::sim {

// A discrete distribution over configuration values (e.g. CPU counts).
struct DiscreteSpec {
  std::vector<double> values;
  std::vector<double> weights;  // unnormalized
};

// Piecewise-constant hazard multiplier over attribute ranges: multiplier[i]
// applies to attribute values in [edges[i], edges[i+1]).
struct MultiplierCurve {
  std::vector<double> edges;
  std::vector<double> multipliers;

  double at(double x) const;
};

// Per-(subsystem, machine-type) failure volume targets.
struct PopulationSpec {
  int pm_count = 0;
  int vm_count = 0;
  int all_tickets = 0;       // crash + background problem tickets
  int pm_crash_tickets = 0;  // target crash tickets on PMs
  int vm_crash_tickets = 0;  // target crash tickets on VMs
  // Probability that a crash ticket is written too vaguely to classify
  // (recorded as "other"); Fig. 1 reports 35%/68%/68%/61%/29%.
  double other_fraction = 0.5;
  // Root-cause mix over the five real classes (hardware, network, power,
  // reboot, software), conditioned on the ticket being classifiable.
  std::array<double, 5> class_mix = {0.2, 0.2, 0.2, 0.2, 0.2};
};

// Aftershock (recurrent-failure) process: after each server failure, with
// probability `probability` the same server fails again after a LogNormal
// delay; the chain continues geometrically.
struct AftershockSpec {
  double probability = 0.2;
  double delay_median_minutes = 1440.0;  // 1 day
  double delay_sigma = 2.32;             // log-scale sigma
  // Probability the follow-up keeps the same root-cause class, per cause
  // (hardware, network, power, reboot, software). Software problems recur
  // as software (Table III: short same-class gaps), while a repaired disk
  // rarely fails again soon (long same-class gaps for hw/net/power).
  std::array<double, 5> same_class_probability = {0.1, 0.1, 0.15, 0.5, 0.7};
};

// Incident spatial expansion for one failure class. When an incident is
// "multi", the number of extra affected servers follows a discretized Pareto
// clamped to [1, max_extra]; P(extra = k) = k^-alpha - (k+1)^-alpha, with the
// tail mass on max_extra. The expected extra count is then the generalized
// harmonic number H_{max_extra}(alpha), which calibration exploits.
struct IncidentSizeSpec {
  double multi_probability = 0.1;  // P(incident affects >= 2 servers)
  double pareto_alpha = 1.2;       // tail index of the extra-server count
  int max_extra = 9;               // cap on extra servers

  // E[total servers per incident] = 1 + multi_probability * H(alpha).
  double expected_size() const;
};

struct RepairSpec {
  double mean_hours = 10.0;
  double median_hours = 2.0;
};

// Ticket queueing delay before the repair starts (Section IV-C: down time
// includes a usually-short queueing interval). Added to every crash repair.
struct QueueingSpec {
  double median_hours = 0.25;
  double sigma = 0.8;  // log-scale sigma of the LogNormal delay
};

struct SimulationConfig {
  std::uint64_t seed = 42;

  std::array<PopulationSpec, trace::kSubsystemCount> systems;

  // Machine-type modifiers applied to the class mix: VMs see relatively more
  // unexpected reboots (hosting-box reboots), PMs more hardware failures.
  std::array<double, 5> pm_class_boost = {1.0, 1.0, 1.0, 1.0, 1.0};
  std::array<double, 5> vm_class_boost = {1.0, 1.0, 1.0, 1.0, 1.0};

  AftershockSpec pm_aftershock;
  AftershockSpec vm_aftershock;

  // Indexed by FailureClass (including kOther). Incidents rooted on VMs
  // expand more readily (host-level causes take down co-hosted VMs), which
  // is what drives the paper's higher spatial dependency for VMs
  // (Table VI: 26% vs 16%).
  std::array<IncidentSizeSpec, trace::kFailureClassCount> incident_size;
  std::array<IncidentSizeSpec, trace::kFailureClassCount> incident_size_vm;
  QueueingSpec queueing;

  const IncidentSizeSpec& incident_size_for(trace::MachineType root_type,
                                            trace::FailureClass cls) const {
    const auto idx = static_cast<std::size_t>(cls);
    return root_type == trace::MachineType::kVirtual ? incident_size_vm[idx]
                                                     : incident_size[idx];
  }
  std::array<RepairSpec, trace::kFailureClassCount> repair;

  // ---- configuration samplers ----
  DiscreteSpec pm_cpu_count;
  DiscreteSpec vm_cpu_count;
  DiscreteSpec pm_memory_gb;
  DiscreteSpec vm_memory_gb;
  DiscreteSpec vm_disk_gb;
  DiscreteSpec vm_disk_count;
  // Average monthly on/off frequency classes for VMs.
  DiscreteSpec vm_onoff_per_month;
  // Box capacity classes (max consolidation level of the hosting box).
  DiscreteSpec box_capacity;

  // ---- mean-usage samplers (percent; network in kbps) ----
  DiscreteSpec cpu_util_mixture;     // both types
  DiscreteSpec pm_mem_util_mixture;  // PMs skew higher (Section V-B.1)
  DiscreteSpec vm_mem_util_mixture;
  DiscreteSpec vm_disk_util_mixture;
  DiscreteSpec vm_net_kbps_mixture;

  // ---- hazard multiplier curves (Figs. 7-10 trends) ----
  MultiplierCurve pm_cpu_curve;
  MultiplierCurve vm_cpu_curve;
  MultiplierCurve pm_mem_curve;
  MultiplierCurve vm_mem_curve;
  MultiplierCurve vm_disk_cap_curve;
  MultiplierCurve vm_disk_count_curve;
  MultiplierCurve pm_cpu_util_curve;
  MultiplierCurve vm_cpu_util_curve;
  MultiplierCurve pm_mem_util_curve;
  MultiplierCurve vm_mem_util_curve;
  MultiplierCurve vm_disk_util_curve;
  MultiplierCurve vm_net_curve;
  MultiplierCurve vm_consolidation_curve;
  MultiplierCurve vm_onoff_curve;
  // Weak positive VM age trend (Fig. 6): multiplier vs age in days.
  MultiplierCurve vm_age_curve;

  // Fraction of VMs created before the monitoring DB begins (left-censored
  // ages; the paper keeps ~75% of VMs after filtering).
  double vm_precreated_fraction = 0.25;

  // Weekly usage AR(1)-style jitter around each machine's mean (stddev in
  // percentage points / relative for network).
  double usage_weekly_jitter = 5.0;

  // Tickets in large incidents can be lost when the incident takes down the
  // monitoring server itself (Section IV-E: 48 of ~2300 tickets).
  int monitoring_loss_min_size = 10;
  double monitoring_loss_probability = 0.10;

  // Multipliers on the primary-incident counts compensating systematic
  // generative-vs-analytic mismatches: aftershock-chain truncation at the
  // window end, monitoring losses, propagation pools limited by eligibility
  // (VM creation dates) -- all of which vary with each stratum's class mix.
  // Fitted empirically against the Table II crash targets.
  std::array<double, trace::kSubsystemCount> pm_calibration_boost = {
      1.10, 1.22, 1.26, 0.95, 1.20};
  std::array<double, trace::kSubsystemCount> vm_calibration_boost = {
      0.92, 1.00, 1.03, 1.00, 1.05};

  fa::text::TextStyleOptions text_style;

  // Returns the paper-calibrated default configuration.
  static SimulationConfig paper_defaults();

  // A proportionally scaled copy (populations and ticket volumes scaled by
  // `factor`): shrunk for fast tests, grown (factor > 1) for out-of-core
  // scale runs.
  SimulationConfig scaled(double factor) const;

  // Stable 64-bit fingerprint over every field (including the seed): equal
  // fingerprints <=> simulate() produces the identical trace. Used as the
  // memoization key of fa::analysis::ArtifactCache.
  std::uint64_t fingerprint() const;
};

}  // namespace fa::sim
