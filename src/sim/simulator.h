// Top-level simulation entry point: turns a SimulationConfig into a fully
// populated, finalized TraceDatabase — the synthetic stand-in for the
// paper's joined ticket/inventory/monitoring data sources.
#pragma once

#include "src/sim/config.h"
#include "src/trace/database.h"

namespace fa::sim {

// Runs the full pipeline: fleet construction, hazard calibration, failure
// generation, ticketing (crash + background), and monitoring-DB content.
// Deterministic for a given config (including its seed).
trace::TraceDatabase simulate(const SimulationConfig& config);

}  // namespace fa::sim
