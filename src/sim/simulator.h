// Top-level simulation entry point: turns a SimulationConfig into a fully
// populated trace — either the classic in-memory TraceDatabase or any
// streaming trace::TraceWriter sink (e.g. a columnar file on disk).
#pragma once

#include "src/sim/config.h"
#include "src/trace/database.h"
#include "src/trace/trace_writer.h"

namespace fa::sim {

// Runs the full pipeline into `writer`: fleet construction, hazard
// calibration, failure generation, ticketing (crash + background), and
// monitoring-DB content, then calls writer.finish(). Deterministic for a
// given config (including its seed) at any thread count; peak memory is
// bounded by the fleet plus one render block, not by the emitted tables,
// so large fleets can stream straight to disk via ColumnarTraceWriter.
void simulate_to(const SimulationConfig& config, trace::TraceWriter& writer);

// Convenience wrapper: simulate into an in-memory database and finalize it.
trace::TraceDatabase simulate(const SimulationConfig& config);

}  // namespace fa::sim
