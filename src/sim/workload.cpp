#include "src/sim/workload.h"

#include <algorithm>
#include <cmath>

#include "src/sim/seed_streams.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::sim {
namespace {

double clamp_util(double v) { return std::clamp(v, 0.1, 100.0); }

// Servers are rendered in parallel blocks and committed serially after each
// block, so peak memory is one block of rows even when the writer streams
// to disk. Streams are keyed by server id: block size cannot affect output.
constexpr std::size_t kServerBlock = 4096;

}  // namespace

void emit_weekly_usage(const SimulationConfig& config, const Fleet& fleet,
                       trace::TraceWriter& writer) {
  const ObservationWindow year = ticket_window();
  const int weeks = year.week_count();
  // One stream per server: usage synthesis is embarrassingly parallel, and
  // rows are committed in server order so the table layout is unchanged.
  std::vector<std::vector<trace::WeeklyUsage>> rows(
      std::min(kServerBlock, fleet.servers.size()));
  for (std::size_t block = 0; block < fleet.servers.size();
       block += kServerBlock) {
    const std::size_t n = std::min(kServerBlock, fleet.servers.size() - block);
    parallel_for(n, [&](std::size_t j) {
      const std::size_t i = block + j;
      const trace::ServerRecord& s = fleet.servers[i];
      const MachineProfile& p = fleet.profiles[i];
      rows[j].clear();
      Rng rng = stream_rng(config.seed, SeedStream::kWeeklyUsage,
                           static_cast<std::uint64_t>(s.id.value));
      for (int w = 0; w < weeks; ++w) {
        const TimePoint week_end =
            year.begin + static_cast<Duration>(w + 1) * kMinutesPerWeek;
        if (s.first_record >= week_end) continue;  // VM not yet visible
        trace::WeeklyUsage u;
        u.server = s.id;
        u.week = w;
        u.cpu_util = clamp_util(
            p.mean_cpu_util + rng.normal(0.0, config.usage_weekly_jitter));
        u.mem_util = clamp_util(
            p.mean_mem_util + rng.normal(0.0, config.usage_weekly_jitter));
        if (p.mean_disk_util) {
          u.disk_util = clamp_util(*p.mean_disk_util +
                                   rng.normal(0.0, config.usage_weekly_jitter));
        }
        if (p.mean_net_kbps) {
          // Network volume jitter is multiplicative (volumes span decades).
          u.net_kbps = *p.mean_net_kbps * std::exp(rng.normal(0.0, 0.25));
        }
        rows[j].push_back(u);
      }
    });
    for (std::size_t j = 0; j < n; ++j) {
      for (const trace::WeeklyUsage& u : rows[j]) writer.add_weekly_usage(u);
    }
  }
}

void emit_monthly_snapshots(const Fleet& fleet, trace::TraceWriter& writer) {
  const ObservationWindow year = ticket_window();
  const int months = year.month_count();
  for (std::size_t i = 0; i < fleet.servers.size(); ++i) {
    const trace::ServerRecord& s = fleet.servers[i];
    if (s.type != trace::MachineType::kVirtual) continue;
    const MachineProfile& p = fleet.profiles[i];
    for (int m = 0; m < months; ++m) {
      const TimePoint month_end =
          year.begin + static_cast<Duration>(m + 1) * kMinutesPerMonth;
      if (s.first_record >= month_end) continue;
      trace::MonthlySnapshot snap;
      snap.server = s.id;
      snap.month = m;
      snap.box = s.host_box;
      snap.consolidation = p.consolidation;
      writer.add_monthly_snapshot(snap);
    }
  }
}

void emit_power_events(const SimulationConfig& config, const Fleet& fleet,
                       trace::TraceWriter& writer) {
  const ObservationWindow window = onoff_window();
  const double window_months =
      static_cast<double>(window.length()) / kMinutesPerMonth;
  std::vector<std::vector<trace::PowerEvent>> rows(
      std::min(kServerBlock, fleet.servers.size()));
  for (std::size_t block = 0; block < fleet.servers.size();
       block += kServerBlock) {
    const std::size_t n = std::min(kServerBlock, fleet.servers.size() - block);
    parallel_for(n, [&](std::size_t j) {
      const std::size_t i = block + j;
      rows[j].clear();
      const trace::ServerRecord& s = fleet.servers[i];
      if (s.type != trace::MachineType::kVirtual) return;
      const MachineProfile& p = fleet.profiles[i];
      if (p.onoff_per_month <= 0.0) return;
      Rng rng = stream_rng(config.seed, SeedStream::kPowerEvents,
                           static_cast<std::uint64_t>(s.id.value));

      const auto cycles = rng.poisson(p.onoff_per_month * window_months);
      if (cycles == 0) return;

      // Draw cycle start times, sort, and emit non-overlapping off/on pairs.
      std::vector<TimePoint> starts;
      starts.reserve(cycles);
      for (std::uint64_t c = 0; c < cycles; ++c) {
        starts.push_back(window.begin +
                         static_cast<Duration>(rng.uniform(
                             0.0, static_cast<double>(window.length() - 1))));
      }
      std::sort(starts.begin(), starts.end());
      TimePoint busy_until = window.begin;
      for (TimePoint off_at : starts) {
        if (off_at < busy_until) continue;  // overlapping cycle; drop
        // Downtime: LogNormal around 2 hours.
        const double down_minutes = 120.0 * std::exp(rng.normal(0.0, 1.0));
        const TimePoint on_at =
            off_at + std::max<Duration>(kMinutesPerSample,
                                        static_cast<Duration>(down_minutes));
        if (on_at >= window.end) break;
        rows[j].push_back({s.id, off_at, false});
        rows[j].push_back({s.id, on_at, true});
        busy_until = on_at;
      }
    });
    for (std::size_t j = 0; j < n; ++j) {
      for (const trace::PowerEvent& e : rows[j]) writer.add_power_event(e);
    }
  }
}

}  // namespace fa::sim
