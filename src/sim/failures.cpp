#include "src/sim/failures.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/sim/seed_streams.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::sim {
namespace {

// Number of extra servers when an incident is multi-server: discretized
// Pareto clamped to [1, max_extra] (see IncidentSizeSpec).
int sample_extra_count(const IncidentSizeSpec& spec, Rng& rng) {
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  const double x = std::pow(u, -1.0 / spec.pareto_alpha);
  const int k = static_cast<int>(x);
  return std::clamp(k, 1, spec.max_extra);
}

trace::FailureClass sample_real_class(const std::array<double, 5>& mix,
                                      Rng& rng) {
  const std::vector<double> weights(mix.begin(), mix.end());
  return static_cast<trace::FailureClass>(rng.weighted_index(weights));
}

// Related servers an incident of `recorded` class can spread to, ordered by
// plausibility: box siblings for host-level causes, application-group peers
// for software, the power domain for electrical/network causes.
std::vector<trace::ServerId> related_servers(const Fleet& fleet,
                                             trace::ServerId root,
                                             trace::FailureClass recorded) {
  const trace::ServerRecord& server = fleet.server(root);
  const MachineProfile& profile = fleet.profile(root);
  std::vector<trace::ServerId> pool;
  const auto add_box_siblings = [&] {
    if (!server.host_box.valid()) return;
    for (trace::ServerId id :
         fleet.box_members[static_cast<std::size_t>(server.host_box.value)]) {
      if (id != root) pool.push_back(id);
    }
  };
  const auto add_app_group = [&] {
    if (profile.app_group < 0) return;
    for (trace::ServerId id :
         fleet
             .app_group_members[static_cast<std::size_t>(profile.app_group)]) {
      if (id != root) pool.push_back(id);
    }
  };
  const auto add_power_domain = [&] {
    for (trace::ServerId id :
         fleet.power_domain_members[static_cast<std::size_t>(
             profile.power_domain)]) {
      if (id != root) pool.push_back(id);
    }
  };

  switch (recorded) {
    case trace::FailureClass::kPower:
      add_power_domain();
      break;
    case trace::FailureClass::kReboot:
    case trace::FailureClass::kHardware:
      // Host-level causes: co-hosted VMs first, then the shared domain.
      add_box_siblings();
      add_power_domain();
      break;
    case trace::FailureClass::kSoftware:
      // Virtualized application stacks co-locate service tiers with their
      // middleware: co-hosted VMs are the most likely co-victims.
      if (server.type == trace::MachineType::kVirtual) {
        add_box_siblings();
        add_app_group();
      } else {
        add_app_group();
        add_box_siblings();
      }
      break;
    case trace::FailureClass::kNetwork:
      add_power_domain();  // shared rack/switch proxy
      break;
    case trace::FailureClass::kOther:
      add_box_siblings();
      add_app_group();
      add_power_domain();
      break;
  }
  // De-duplicate while preserving plausibility order.
  std::vector<trace::ServerId> unique;
  for (trace::ServerId id : pool) {
    if (std::find(unique.begin(), unique.end(), id) == unique.end()) {
      unique.push_back(id);
    }
  }
  return unique;
}

// One primary incident planned ahead of the parallel generation pass. The
// incident id is allocated serially (in stratum order, as before) so ids are
// independent of the execution schedule; everything random about the
// incident is drawn from its own counter-based stream.
struct IncidentPlan {
  trace::Subsystem sys = 0;
  trace::MachineType type = trace::MachineType::kPhysical;
  trace::IncidentId incident;
  std::array<double, 5> mix{};
  // Stream index encoding (stratum, local index): the draws of one stratum
  // stay fixed when another stratum's incident count changes (e.g. while
  // re-fitting one calibration boost).
  std::uint64_t stream = 0;
};

// Generates the full event set of one incident (root selection, timing,
// spatial expansion, aftershock chains) from the incident's private stream.
std::vector<FailureEvent> generate_incident(const SimulationConfig& config,
                                            const Fleet& fleet,
                                            const HazardModel& hazard,
                                            const IncidentPlan& plan,
                                            Rng& rng) {
  const ObservationWindow year = ticket_window();
  std::vector<FailureEvent> events;

  const auto emit_with_aftershocks = [&](trace::ServerId server,
                                         trace::FailureClass recorded,
                                         trace::FailureClass cause,
                                         TimePoint at,
                                         const AftershockSpec& shock) {
    events.push_back({server, plan.incident, recorded, cause, at, false});
    const bool vague = recorded == trace::FailureClass::kOther;
    TimePoint t = at;
    while (rng.bernoulli(shock.probability)) {
      const double delay_minutes =
          shock.delay_median_minutes *
          std::exp(shock.delay_sigma * rng.normal());
      t += std::max<Duration>(1, static_cast<Duration>(delay_minutes));
      if (t >= year.end) break;
      if (!rng.bernoulli(shock.same_class_probability[static_cast<std::size_t>(
              cause)])) {
        cause = sample_real_class(plan.mix, rng);
      }
      // Vague incidents stay vague: the same poorly-documented problem
      // keeps producing poorly-documented tickets.
      events.push_back(
          {server, plan.incident, vague ? trace::FailureClass::kOther : cause,
           cause, t, true});
    }
  };

  const PopulationSpec& pop = config.systems[plan.sys];
  const trace::ServerId root = hazard.sample_root(plan.sys, plan.type, rng);
  if (!root.valid()) return events;  // empty stratum
  const MachineProfile& root_profile = fleet.profile(root);

  // Failure instant: uniform within the root's exposure window.
  const TimePoint start = std::max(root_profile.creation, year.begin);
  const TimePoint at = start + static_cast<Duration>(rng.uniform(
                                   0.0, static_cast<double>(
                                            year.end - 1 - start)));

  const trace::FailureClass cause = sample_real_class(plan.mix, rng);
  const trace::FailureClass recorded =
      rng.bernoulli(pop.other_fraction) ? trace::FailureClass::kOther : cause;

  // Spatial expansion.
  std::vector<trace::ServerId> affected = {root};
  const IncidentSizeSpec& size_spec =
      config.incident_size_for(plan.type, recorded);
  if (rng.bernoulli(size_spec.multi_probability)) {
    const int extra = sample_extra_count(size_spec, rng);
    // Propagation follows the physical cause, even when the tickets
    // end up recorded as "other".
    auto pool = related_servers(fleet, root, cause);
    // Keep plausibility order but randomize ties within the pool by a
    // light shuffle of the tail beyond the most plausible few.
    if (pool.size() > 3) {
      std::vector<trace::ServerId> tail(pool.begin() + 3, pool.end());
      rng.shuffle(tail);
      std::copy(tail.begin(), tail.end(), pool.begin() + 3);
    }
    for (trace::ServerId id : pool) {
      if (static_cast<int>(affected.size()) > extra) break;
      // Only machines that already exist can fail.
      if (fleet.profile(id).creation <= at) affected.push_back(id);
    }
  }

  for (std::size_t a = 0; a < affected.size(); ++a) {
    // Co-affected servers fail within minutes of the root.
    const TimePoint t =
        a == 0 ? at
               : std::min<TimePoint>(
                     year.end - 1,
                     at + static_cast<Duration>(rng.uniform(0.0, 30.0)));
    const trace::ServerRecord& s = fleet.server(affected[a]);
    const AftershockSpec& shock =
        s.type == trace::MachineType::kPhysical ? config.pm_aftershock
                                                : config.vm_aftershock;
    emit_with_aftershocks(affected[a], recorded, cause, t, shock);
  }
  return events;
}

}  // namespace

std::vector<FailureEvent> generate_failures(const SimulationConfig& config,
                                            const Fleet& fleet,
                                            const HazardModel& hazard,
                                            trace::TraceWriter& writer) {
  // Serial planning pass: fix the incident count per stratum and allocate
  // incident ids in the canonical (subsystem, type, index) order.
  std::vector<IncidentPlan> plans;
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    for (int ti = 0; ti < trace::kMachineTypeCount; ++ti) {
      const auto type = static_cast<trace::MachineType>(ti);
      const auto mix = class_distribution(config, sys, type);
      const int n = hazard.primary_incident_count(sys, type);
      const auto stratum =
          static_cast<std::uint64_t>(sys) *
              static_cast<std::uint64_t>(trace::kMachineTypeCount) +
          static_cast<std::uint64_t>(ti);
      for (int i = 0; i < n; ++i) {
        const std::uint64_t stream =
            static_cast<std::uint64_t>(i) * 16 + stratum;
        plans.push_back({sys, type, writer.new_incident(), mix, stream});
      }
    }
  }

  // Parallel generation pass: each incident draws from its own stream, so
  // the result is independent of the thread count.
  std::vector<std::vector<FailureEvent>> per_incident(plans.size());
  parallel_for(plans.size(), [&](std::size_t i) {
    Rng rng = stream_rng(config.seed, SeedStream::kIncident, plans[i].stream);
    per_incident[i] = generate_incident(config, fleet, hazard, plans[i], rng);
  });

  obs::counter("fa.sim.incidents").add(plans.size());
  std::size_t aftershocks = 0;

  std::vector<FailureEvent> events;
  std::size_t total = 0;
  for (const auto& chunk : per_incident) {
    total += chunk.size();
    for (const FailureEvent& e : chunk) aftershocks += e.is_aftershock ? 1 : 0;
  }
  obs::counter("fa.sim.aftershock_events").add(aftershocks);
  events.reserve(total);
  for (auto& chunk : per_incident) {
    events.insert(events.end(), chunk.begin(), chunk.end());
  }

  std::sort(events.begin(), events.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.server != b.server) return a.server < b.server;
              // Total order: concurrent events on one server (possible
              // across incidents) must not depend on the pre-sort order.
              if (a.incident.value != b.incident.value) {
                return a.incident.value < b.incident.value;
              }
              return a.is_aftershock < b.is_aftershock;
            });
  return events;
}

}  // namespace fa::sim
