// Self-validation of a simulated trace against its configuration: the
// invariants every correctly generated TraceDatabase must satisfy,
// independent of seed. Used by the test suite and by `fa_trace simulate`
// as a post-generation doctor, and useful when editing calibration
// parameters.
#pragma once

#include <string>
#include <vector>

#include "src/sim/config.h"
#include "src/trace/database.h"

namespace fa::sim {

struct ValidationIssue {
  std::string check;    // short identifier, e.g. "population.sys2.vm"
  std::string message;  // human-readable description
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const { return issues.empty(); }
  std::string to_string() const;
};

// Checks, per subsystem and machine type:
//   * populations match the config exactly;
//   * total ticket volumes match Table II targets exactly;
//   * crash-ticket counts within `crash_tolerance` (relative) of targets;
//   * every crash ticket lies in the observation year with positive repair;
//   * VM records carry disk/box data, PM records do not;
//   * monitoring rows exist for every exposed server;
//   * power events only for VMs, inside the on/off window.
ValidationReport validate_trace(const trace::TraceDatabase& db,
                                const SimulationConfig& config,
                                double crash_tolerance = 0.35);

}  // namespace fa::sim
