// Named RNG stream tags for the simulation phases.
//
// Every parallel work unit of the simulator (an incident, a ticket, a
// server's monitoring records) owns an independent counter-based RNG stream
// `Rng(Rng::derive_seed(config.seed, tag, index))`. Because the stream of a
// unit depends only on (seed, tag, index) — never on which thread runs it or
// on how many units ran before it — the simulation output is bit-identical
// at any thread count. See docs/SCHEMA.md ("Determinism & seed derivation").
#pragma once

#include <cstdint>

#include "src/util/rng.h"

namespace fa::sim {

enum class SeedStream : std::uint64_t {
  kFleet = 1,             // fleet construction (serial; one stream)
  kIncident = 2,          // per primary incident: root, timing, aftershocks
  kCrashTicket = 3,       // per failure event: loss, repair draw, text
  kBackgroundTicket = 4,  // per background ticket: target, timing, text
  kWeeklyUsage = 5,       // per server: usage jitter
  kPowerEvents = 6,       // per server: on/off cycles
  // Fault-injection streams (src/inject/corruptor.h). Per-row / per-series
  // counter-based streams, so injection output is bit-reproducible at any
  // thread count, exactly like the simulation itself.
  kInjectTicket = 7,      // per ticket row: defect choice + parameters
  kInjectUsage = 8,       // per weekly-usage row: defect choice + parameters
  kInjectSeries = 9,      // per server: monitoring-series truncation
  // Storage-level I/O fault streams (src/inject/io_faults.h). Indexed by
  // the per-file operation counter, so a fault schedule depends only on
  // (seed, op index) — never on thread count or wall-clock timing.
  kInjectIoWrite = 10,    // per write op: short/transient/torn/crash draws
  kInjectIoRead = 11,     // per read op: transient errors + bit flips
};

inline Rng stream_rng(std::uint64_t seed, SeedStream stream,
                      std::uint64_t index = 0) {
  return Rng(Rng::derive_seed(seed, static_cast<std::uint64_t>(stream), index));
}

}  // namespace fa::sim
