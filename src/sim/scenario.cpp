#include "src/sim/scenario.h"

#include <cmath>

#include "src/sim/fleet.h"
#include "src/sim/hazard.h"
#include "src/util/error.h"

namespace fa::sim {
namespace {

MultiplierCurve flat() {
  return {{0.0, 1e12}, {1.0}};
}

}  // namespace

std::string_view to_string(Ablation ablation) {
  switch (ablation) {
    case Ablation::kNoAftershocks:
      return "no-aftershocks";
    case Ablation::kNoPropagation:
      return "no-propagation";
    case Ablation::kFlatCovariates:
      return "flat-covariates";
  }
  throw Error("to_string: invalid Ablation");
}

SimulationConfig apply_ablation(SimulationConfig config, Ablation ablation) {
  switch (ablation) {
    case Ablation::kNoAftershocks:
      config.pm_aftershock.probability = 0.0;
      config.vm_aftershock.probability = 0.0;
      break;
    case Ablation::kNoPropagation:
      for (auto& spec : config.incident_size) spec.multi_probability = 0.0;
      for (auto& spec : config.incident_size_vm) spec.multi_probability = 0.0;
      break;
    case Ablation::kFlatCovariates:
      config.pm_cpu_curve = flat();
      config.vm_cpu_curve = flat();
      config.pm_mem_curve = flat();
      config.vm_mem_curve = flat();
      config.vm_disk_cap_curve = flat();
      config.vm_disk_count_curve = flat();
      config.pm_cpu_util_curve = flat();
      config.vm_cpu_util_curve = flat();
      config.pm_mem_util_curve = flat();
      config.vm_mem_util_curve = flat();
      config.vm_disk_util_curve = flat();
      config.vm_net_curve = flat();
      config.vm_consolidation_curve = flat();
      config.vm_onoff_curve = flat();
      config.vm_age_curve = flat();
      break;
  }
  return config;
}

SimulationConfig with_vm_refresh(SimulationConfig config,
                                 double max_age_days) {
  require(max_age_days > 0.0, "with_vm_refresh: horizon must be positive");
  // Refreshed VMs never progress along the age curve beyond the refresh
  // horizon: clamp the curve there.
  MultiplierCurve& curve = config.vm_age_curve;
  if (max_age_days >= curve.edges.back()) return config;  // no-op horizon
  MultiplierCurve clamped;
  clamped.edges.push_back(curve.edges.front());
  for (std::size_t i = 0; i < curve.multipliers.size(); ++i) {
    const double hi = curve.edges[i + 1];
    if (hi >= max_age_days) break;
    clamped.edges.push_back(hi);
    clamped.multipliers.push_back(curve.multipliers[i]);
  }
  clamped.edges.push_back(curve.edges.back());
  clamped.multipliers.push_back(curve.at(max_age_days));
  // Handle a horizon before the first edge: one flat segment.
  if (clamped.multipliers.empty()) {
    clamped = {{curve.edges.front(), curve.edges.back()},
               {curve.at(max_age_days)}};
  }
  config.vm_age_curve = clamped;
  return config;
}

SimulationConfig rescale_vm_targets(SimulationConfig modified,
                                    const SimulationConfig& baseline) {
  require(modified.seed == baseline.seed,
          "rescale_vm_targets: configurations must share the seed");
  // The fleet depends only on population specs and samplers, which what-if
  // scenarios do not touch; the same seed therefore yields the same
  // machines under both configurations.
  Rng rng_a(baseline.seed);
  Rng fleet_rng = rng_a.fork(1);
  const Fleet fleet = build_fleet(baseline, fleet_rng);

  std::array<double, trace::kSubsystemCount> base_weight{}, mod_weight{};
  for (std::size_t i = 0; i < fleet.servers.size(); ++i) {
    const trace::ServerRecord& s = fleet.servers[i];
    if (s.type != trace::MachineType::kVirtual) continue;
    base_weight[s.subsystem] +=
        machine_weight(baseline, s, fleet.profiles[i]);
    mod_weight[s.subsystem] +=
        machine_weight(modified, s, fleet.profiles[i]);
  }
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    if (base_weight[sys] <= 0.0) continue;
    const double ratio = mod_weight[sys] / base_weight[sys];
    modified.systems[sys].vm_crash_tickets = static_cast<int>(std::lround(
        modified.systems[sys].vm_crash_tickets * ratio));
  }
  return modified;
}

}  // namespace fa::sim
