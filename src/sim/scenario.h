// What-if scenarios and ablations over the simulation configuration.
//
// The ablations switch off one generative mechanism at a time so the
// ablation benches can demonstrate that each measured phenomenon (recurrence
// ratios, spatial dependency, covariate trends) is driven by the
// corresponding mechanism and not an artifact of the analysis pipeline.
// The what-if scenarios implement the management actions the paper's
// conclusions suggest (e.g. periodically refreshing VM instances).
#pragma once

#include <string_view>

#include "src/sim/config.h"

namespace fa::sim {

enum class Ablation {
  // Disable the self-exciting aftershock process: failures become
  // independent primaries. Table V's recurrent/random ratio must collapse.
  kNoAftershocks,
  // Every incident affects exactly one server. Table VI's >= 2-server
  // share must drop to zero.
  kNoPropagation,
  // All hazard multiplier curves flattened to 1: failure rates become
  // independent of capacity/usage/management covariates; Fig. 7-10 factors
  // must collapse toward 1x.
  kFlatCovariates,
};

std::string_view to_string(Ablation ablation);

// Returns a copy of `config` with the ablated mechanism switched off.
SimulationConfig apply_ablation(SimulationConfig config, Ablation ablation);

// What-if: VMs are re-created from fresh images every `max_age_days`, so no
// VM accumulates age-related risk beyond that point (the paper's suggestion
// that periodic snapshots + re-instantiation can reduce VM failures).
SimulationConfig with_vm_refresh(SimulationConfig config,
                                 double max_age_days);

// Converts a covariate what-if into an absolute failure-volume change.
//
// The simulator calibrates each stratum's incident count to its configured
// crash-ticket target, so editing a hazard curve alone only *redistributes*
// failures. For what-if scenarios the edited hazard must also rescale the
// targets: this builds the fleet once under both configurations (same seed,
// hence identical machines) and scales each stratum's VM crash target by
// the ratio of total hazard weight modified/baseline.
SimulationConfig rescale_vm_targets(SimulationConfig modified,
                                    const SimulationConfig& baseline);

}  // namespace fa::sim
