#include "src/sim/config.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/error.h"

namespace fa::sim {

double MultiplierCurve::at(double x) const {
  require(edges.size() == multipliers.size() + 1,
          "MultiplierCurve: edges/multipliers size mismatch");
  if (x < edges.front()) return multipliers.front();
  if (x >= edges.back()) return multipliers.back();
  const auto it = std::upper_bound(edges.begin(), edges.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges.begin()) - 1;
  return multipliers[std::min(idx, multipliers.size() - 1)];
}

double IncidentSizeSpec::expected_size() const {
  double harmonic = 0.0;
  for (int k = 1; k <= max_extra; ++k) {
    harmonic += std::pow(static_cast<double>(k), -pareto_alpha);
  }
  return 1.0 + multi_probability * harmonic;
}

SimulationConfig SimulationConfig::paper_defaults() {
  SimulationConfig c;
  c.seed = 20140623;  // DSN'14 conference date

  // ---- Table II populations and ticket volumes; Fig. 1 class mixes ----
  // Crash ticket counts derive from Table II's "% crash tickets" rows; the
  // class mixes are conditional on the ticket being classifiable (not
  // "other") and follow the Fig. 1 bars / Section III-A prose.
  // Class order: hardware, network, power, reboot, software.
  c.systems[0] = {463, 1320, 7079, 337, 151, 0.35,
                  {0.262, 0.138, 0.062, 0.231, 0.307}};
  c.systems[1] = {2025, 52, 27577, 234, 0, 0.68,
                  {0.219, 0.188, 0.125, 0.094, 0.374}};
  c.systems[2] = {1114, 1971, 50157, 592, 411, 0.68,
                  {0.063, 0.031, 0.000, 0.406, 0.500}};
  c.systems[3] = {717, 313, 8382, 69, 40, 0.61,
                  {0.128, 0.077, 0.077, 0.333, 0.385}};
  c.systems[4] = {810, 636, 25940, 488, 368, 0.29,
                  {0.085, 0.056, 0.408, 0.282, 0.169}};

  // VM crashes skew toward unexpected reboots (~35% of VM failures,
  // Section IV-C) since hosting-box reboots surface as VM reboots, while
  // PMs take the hardware-replacement tickets.
  c.pm_class_boost = {1.6, 1.3, 1.0, 0.5, 0.9};
  c.vm_class_boost = {0.15, 0.6, 1.0, 3.0, 1.0};

  // ---- Table V / Fig. 5 recurrence ----
  // Weekly recurrent probability ~= probability * P(delay <= 7 days);
  // with a 1-day LogNormal median and sigma 2.32, P(<=7d) ~ 0.8, so the
  // targets 0.22 (PM) / 0.16 (VM) give 0.275 / 0.20. The per-cause
  // same-class probabilities come from AftershockSpec's defaults (software
  // recurs as software; hardware seldom recurs as hardware -- Table III).
  c.pm_aftershock.probability = 0.275;
  c.vm_aftershock.probability = 0.155;

  // ---- Tables VI/VII incident sizes ----
  // Expected extra counts equal H_max(alpha); chosen so the per-class mean
  // sizes match Table VII (hw 1.2, net 1.5, power 2.7, reboot 1.1, sw 1.7)
  // and the overall >=2-server fraction is ~22% (Table VI). VM-rooted
  // incidents expand more readily (shared hosting boxes), PM-rooted ones
  // less, so the blended per-class means still land on Table VII while the
  // VM spatial-dependency fraction exceeds the PM one.
  c.incident_size[0] = {0.06, 1.15, 9};   // hardware  -> mean ~1.2, max 10
  c.incident_size[1] = {0.20, 1.10, 8};   // network   -> mean ~1.5, max 9
  // Power is dialed above its analytic target (0.60 * H_20(0.95) would give
  // mean ~3.5) because realized sizes shrink: pool-eligibility limits,
  // monitoring losses on wide incidents, and classifier noise all erode the
  // measured Table VII mean toward the paper's 2.7.
  c.incident_size[2] = {0.60, 0.95, 20};  // power     -> mean ~2.7, max 21
  c.incident_size[3] = {0.01, 1.25, 14};  // reboot    -> mean ~1.1, max 15
  c.incident_size[4] = {0.26, 1.00, 9};   // software  -> mean ~1.7, max 10
  c.incident_size[5] = {0.15, 1.35, 33};  // other     -> mean ~1.5, max 34
  // VM-rooted expansion tails are capped tighter than PM ones: a hosting
  // box bounds how many VMs one root cause can reach, and the small VM
  // strata (Sys IV has 40 crash tickets) would otherwise be dominated by a
  // single wide incident.
  c.incident_size_vm = c.incident_size;
  c.incident_size_vm[0] = {0.15, 1.15, 9};   // host hardware hits siblings
  c.incident_size_vm[2] = {0.55, 1.00, 12};  // rack-local power feed
  c.incident_size_vm[3] = {0.06, 1.25, 12};  // host reboot hits siblings
  c.incident_size_vm[4] = {0.36, 1.00, 9};
  c.incident_size_vm[5] = {0.24, 1.35, 12};

  // ---- Table IV repair times (mean/median hours per class) ----
  c.repair[0] = {80.10, 8.28};   // hardware
  c.repair[1] = {67.60, 8.97};   // network
  c.repair[2] = {12.17, 0.83};   // power
  c.repair[3] = {18.03, 2.27};   // reboot
  c.repair[4] = {30.00, 22.37};  // software
  c.repair[5] = {25.00, 4.00};   // other (not reported; interpolated)

  // ---- configuration samplers (population shares from Section V prose) ---
  // 72% of PMs have at most 4 processors; VMs mostly 1-2 vCPUs.
  c.pm_cpu_count = {{1, 2, 4, 8, 16, 24, 32, 64},
                    {10, 30, 32, 12, 8, 4, 3, 1}};
  c.vm_cpu_count = {{1, 2, 4, 8}, {35, 45, 15, 5}};
  c.pm_memory_gb = {{2, 4, 8, 16, 32, 64, 128, 256},
                    {8, 15, 22, 20, 15, 10, 7, 3}};
  // Most VMs carry 1-2 GB.
  c.vm_memory_gb = {{0.25, 0.5, 1, 2, 4, 8, 16, 32},
                    {4, 8, 28, 30, 15, 8, 5, 2}};
  // ~15% of VMs below 32 GB disk; the rest up to 4 TB.
  c.vm_disk_gb = {{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
                  {4, 5, 6, 15, 20, 20, 15, 8, 5, 2}};
  // 83% of failures on VMs with at most 2 disks.
  c.vm_disk_count = {{1, 2, 3, 4, 5, 6}, {30, 45, 12, 7, 4, 2}};
  // 60% of VMs turned on/off at most once per month; 14% eight times.
  c.vm_onoff_per_month = {{0, 1, 2, 4, 8}, {30, 30, 12, 14, 14}};
  // Box capacities such that the VM population across consolidation levels
  // 1..32 rises from 0.6% (level 1) to ~32% (level 32), Fig. 9: the weight
  // of capacity k is (VM share at level k) / k.
  c.box_capacity = {{1, 2, 4, 8, 16, 32}, {0.6, 1.5, 2.5, 3.0, 1.875, 1.0}};

  // ---- mean-usage mixtures (Section V-B population notes) ----
  // More than half of both populations below 10% CPU.
  c.cpu_util_mixture = {{5, 15, 25, 40, 65, 85}, {55, 20, 10, 8, 4, 3}};
  // PM memory population increases with utilization; VMs mostly <= 10%.
  c.pm_mem_util_mixture = {{5, 15, 30, 50, 70, 90}, {5, 10, 15, 20, 25, 25}};
  c.vm_mem_util_mixture = {{5, 15, 30, 50, 70, 90}, {45, 20, 15, 10, 6, 4}};
  c.vm_disk_util_mixture = {{5, 20, 40, 60, 80, 95}, {25, 25, 20, 15, 10, 5}};
  // 45% between 2-64 kbps, 34% 128-512, 21% 1024-8192.
  c.vm_net_kbps_mixture = {{4, 16, 48, 192, 384, 1536, 4096},
                           {15, 15, 15, 17, 17, 11, 10}};

  // ---- hazard multiplier curves (Figs. 7-10 shapes) ----
  // PM rate rises ~5.5x from 1 to 24 CPUs, then drops for 32/64.
  c.pm_cpu_curve = {{0, 1.5, 3, 6, 12, 20, 28, 48, 128},
                    {0.55, 0.70, 0.85, 1.40, 2.20, 3.00, 1.20, 1.10}};
  // VM rate rises ~2.5x from 1 to 8 vCPUs. All VM curves are steeper than
  // the target trends because propagated (non-root) failures land on
  // machines regardless of their own covariates and dilute the measured
  // contrast.
  c.vm_cpu_curve = {{0, 1.5, 3, 6, 16}, {0.55, 0.85, 1.55, 2.30}};
  // PM memory bathtub: high <= 4 GB, low 8-32 GB, high again at 128-256 GB.
  c.pm_mem_curve = {{0, 6, 48, 96, 192, 512}, {3.0, 1.0, 1.5, 3.5, 4.5}};
  // VM memory: flat to 4 GB, dip 4-8 GB, rise to 32 GB (~3x span).
  c.vm_mem_curve = {{0, 6, 12, 24, 64}, {1.10, 0.30, 1.30, 1.95}};
  // VM disk capacity: steep rise below 32 GB, then steady (Fig. 7c).
  c.vm_disk_cap_curve = {{0, 12, 24, 48, 8192}, {0.06, 0.30, 0.75, 1.00}};
  // VM disk count: ~10x from 1 to 6 disks (Fig. 7d).
  c.vm_disk_count_curve = {{0, 1.5, 2.5, 3.5, 4.5, 5.5, 7},
                           {0.25, 1.00, 1.60, 2.00, 2.30, 2.50}};
  // PM CPU utilization: decreasing over 0-30%, bathtub overall (Fig. 8a).
  c.pm_cpu_util_curve = {{0, 10, 20, 30, 50, 70, 100},
                         {2.00, 1.00, 0.50, 0.40, 0.60, 1.20}};
  // VM CPU utilization: increasing ~order of magnitude over 0-30%.
  c.vm_cpu_util_curve = {{0, 10, 20, 30, 50, 100},
                         {0.50, 1.20, 2.20, 2.80, 3.00}};
  // Memory utilization: inverted bathtub for both types (Fig. 8b).
  c.pm_mem_util_curve = {{0, 20, 40, 60, 70, 100},
                         {0.60, 1.50, 2.20, 1.20, 0.50}};
  c.vm_mem_util_curve = {{0, 10, 25, 40, 50, 100},
                         {0.70, 1.50, 1.80, 1.20, 0.60}};
  // VM disk utilization: mild increase 0.001 -> 0.003 (Fig. 8c).
  c.vm_disk_util_curve = {{0, 10, 30, 50, 70, 100},
                          {0.50, 0.80, 1.00, 1.20, 1.50}};
  // VM network: rise up to 64 kbps, then decline (Fig. 8d).
  c.vm_net_curve = {{0, 2, 8, 64, 512, 2048, 10000},
                    {0.15, 0.65, 2.00, 1.05, 0.55, 0.30}};
  // Consolidation: failure rate decreases with level (Fig. 9). The curve is
  // steeper than the observed trend because box-sibling incident
  // propagation partially offsets it at high consolidation.
  c.vm_consolidation_curve = {{0, 1.5, 2.5, 4.5, 8.5, 16.5, 33},
                              {3.00, 2.20, 1.60, 1.00, 0.66, 0.30}};
  // On/off: rises from 0 to ~2 per month, then no clear trend (Fig. 10).
  c.vm_onoff_curve = {{0, 0.5, 1.5, 2.5, 5, 10},
                      {0.70, 1.05, 1.60, 1.45, 1.55}};
  // Weak positive age trend, no bathtub (Fig. 6). Steeper than the target
  // trend because the at-risk population declines with age (creations are
  // spread through the window), which pulls raw failure counts down.
  c.vm_age_curve = {{0, 180, 365, 550, 800}, {0.60, 0.95, 1.35, 1.90}};

  c.vm_precreated_fraction = 0.25;
  c.usage_weekly_jitter = 5.0;
  c.monitoring_loss_min_size = 10;
  c.monitoring_loss_probability = 0.10;
  return c;
}

SimulationConfig SimulationConfig::scaled(double factor) const {
  require(factor > 0.0, "SimulationConfig::scaled: factor must be > 0");
  SimulationConfig c = *this;
  const auto scale = [factor](int n) {
    if (n == 0) return 0;
    return std::max(1, static_cast<int>(std::lround(n * factor)));
  };
  for (auto& sys : c.systems) {
    sys.pm_count = scale(sys.pm_count);
    sys.vm_count = scale(sys.vm_count);
    sys.all_tickets = scale(sys.all_tickets);
    sys.pm_crash_tickets =
        sys.pm_crash_tickets == 0 ? 0 : scale(sys.pm_crash_tickets);
    sys.vm_crash_tickets =
        sys.vm_crash_tickets == 0 ? 0 : scale(sys.vm_crash_tickets);
  }
  return c;
}

namespace {

// FNV-1a-style accumulator with typed feeds; doubles are hashed by bit
// pattern, so the fingerprint is exact (no epsilon), matching the exactness
// of the simulation itself.
class Fingerprint {
 public:
  void feed(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
    }
  }
  void feed(int v) { feed(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))); }
  void feed(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    feed(bits);
  }
  template <typename T>
  void feed(const std::vector<T>& xs) {
    feed(static_cast<std::uint64_t>(xs.size()));
    for (const T& x : xs) feed(x);
  }
  template <typename T, std::size_t N>
  void feed(const std::array<T, N>& xs) {
    for (const T& x : xs) feed(x);
  }
  void feed(const DiscreteSpec& s) {
    feed(s.values);
    feed(s.weights);
  }
  void feed(const MultiplierCurve& c) {
    feed(c.edges);
    feed(c.multipliers);
  }
  void feed(const PopulationSpec& p) {
    feed(p.pm_count);
    feed(p.vm_count);
    feed(p.all_tickets);
    feed(p.pm_crash_tickets);
    feed(p.vm_crash_tickets);
    feed(p.other_fraction);
    feed(p.class_mix);
  }
  void feed(const AftershockSpec& a) {
    feed(a.probability);
    feed(a.delay_median_minutes);
    feed(a.delay_sigma);
    feed(a.same_class_probability);
  }
  void feed(const IncidentSizeSpec& s) {
    feed(s.multi_probability);
    feed(s.pareto_alpha);
    feed(s.max_extra);
  }
  void feed(const RepairSpec& r) {
    feed(r.mean_hours);
    feed(r.median_hours);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::uint64_t SimulationConfig::fingerprint() const {
  Fingerprint fp;
  fp.feed(seed);
  fp.feed(systems);
  fp.feed(pm_class_boost);
  fp.feed(vm_class_boost);
  fp.feed(pm_aftershock);
  fp.feed(vm_aftershock);
  fp.feed(incident_size);
  fp.feed(incident_size_vm);
  fp.feed(queueing.median_hours);
  fp.feed(queueing.sigma);
  fp.feed(repair);
  fp.feed(pm_cpu_count);
  fp.feed(vm_cpu_count);
  fp.feed(pm_memory_gb);
  fp.feed(vm_memory_gb);
  fp.feed(vm_disk_gb);
  fp.feed(vm_disk_count);
  fp.feed(vm_onoff_per_month);
  fp.feed(box_capacity);
  fp.feed(cpu_util_mixture);
  fp.feed(pm_mem_util_mixture);
  fp.feed(vm_mem_util_mixture);
  fp.feed(vm_disk_util_mixture);
  fp.feed(vm_net_kbps_mixture);
  fp.feed(pm_cpu_curve);
  fp.feed(vm_cpu_curve);
  fp.feed(pm_mem_curve);
  fp.feed(vm_mem_curve);
  fp.feed(vm_disk_cap_curve);
  fp.feed(vm_disk_count_curve);
  fp.feed(pm_cpu_util_curve);
  fp.feed(vm_cpu_util_curve);
  fp.feed(pm_mem_util_curve);
  fp.feed(vm_mem_util_curve);
  fp.feed(vm_disk_util_curve);
  fp.feed(vm_net_curve);
  fp.feed(vm_consolidation_curve);
  fp.feed(vm_onoff_curve);
  fp.feed(vm_age_curve);
  fp.feed(vm_precreated_fraction);
  fp.feed(usage_weekly_jitter);
  fp.feed(monitoring_loss_min_size);
  fp.feed(monitoring_loss_probability);
  fp.feed(pm_calibration_boost);
  fp.feed(vm_calibration_boost);
  fp.feed(text_style.signature_words);
  fp.feed(text_style.generic_words);
  fp.feed(text_style.confusion_probability);
  return fp.value();
}

}  // namespace fa::sim
