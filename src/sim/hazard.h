// Covariate-dependent hazard model.
//
// Every machine gets a static relative failure weight: the product of the
// multiplier curves over its configuration (CPU/memory/disk), its mean usage,
// and its management state (consolidation, on/off frequency, age), times its
// exposure fraction of the observation year. Per (subsystem, machine-type)
// the weights are normalized so the expected crash-ticket count matches the
// calibration target; the covariate *shapes* of Figs. 7-10 then emerge in
// the analysis without being hard-coded into it.
#pragma once

#include <array>
#include <vector>

#include "src/sim/config.h"
#include "src/sim/fleet.h"
#include "src/util/rng.h"

namespace fa::sim {

// Relative (unnormalized) hazard weight of one machine.
double machine_weight(const SimulationConfig& config,
                      const trace::ServerRecord& server,
                      const MachineProfile& profile);

// Fraction of the ticket year during which the machine exists.
double exposure_fraction(const trace::ServerRecord& server,
                         const MachineProfile& profile);

class HazardModel {
 public:
  HazardModel(const SimulationConfig& config, const Fleet& fleet);

  // Number of primary incidents to generate for (subsystem, type), derived
  // from the crash-ticket target divided by the expected tickets per
  // primary incident (spatial size times aftershock-chain inflation).
  int primary_incident_count(trace::Subsystem sys,
                             trace::MachineType type) const;

  // Draws a root machine for a primary incident, proportional to hazard
  // weight within (subsystem, type). Returns an invalid id when the stratum
  // is empty.
  trace::ServerId sample_root(trace::Subsystem sys, trace::MachineType type,
                              Rng& rng) const;

  // Expected tickets produced per primary incident in this stratum.
  double ticket_inflation(trace::Subsystem sys,
                          trace::MachineType type) const;

 private:
  struct Stratum {
    std::vector<trace::ServerId> members;
    std::vector<double> cumulative_weight;  // prefix sums
    int primary_count = 0;
    double inflation = 1.0;
  };

  const Stratum& stratum(trace::Subsystem sys, trace::MachineType type) const;

  std::array<std::array<Stratum, trace::kMachineTypeCount>,
             trace::kSubsystemCount>
      strata_;
};

// Class distribution over the five real root causes for (subsystem, type):
// the system mix modulated by the machine-type boosts, renormalized.
std::array<double, 5> class_distribution(const SimulationConfig& config,
                                         trace::Subsystem sys,
                                         trace::MachineType type);

}  // namespace fa::sim
