#include "src/sim/simulator.h"

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/failures.h"
#include "src/sim/fleet.h"
#include "src/sim/hazard.h"
#include "src/sim/seed_streams.h"
#include "src/sim/ticketing.h"
#include "src/sim/workload.h"
#include "src/util/error.h"

namespace fa::sim {

void simulate_to(const SimulationConfig& config, trace::TraceWriter& writer) {
  obs::Span simulate_span("sim.simulate");

  // Fleet construction stays serial (machines are cheap to draw and later
  // machines' host-box placement depends on earlier draws); every other
  // phase fans out over the thread pool with counter-based streams.
  Rng fleet_rng = stream_rng(config.seed, SeedStream::kFleet);
  Fleet fleet;
  {
    obs::Span phase("sim.build_fleet");
    fleet = build_fleet(config, fleet_rng);
    for (const trace::ServerRecord& s : fleet.servers) {
      const trace::ServerId assigned = writer.add_server(s);
      require(assigned == s.id, "simulate: fleet/writer id mismatch");
    }
  }
  obs::counter("fa.sim.servers").add(fleet.servers.size());

  const HazardModel hazard(config, fleet);
  std::size_t event_count = 0;
  std::vector<FailureEvent> events;
  {
    obs::Span phase("sim.generate_failures");
    events = generate_failures(config, fleet, hazard, writer);
    event_count = events.size();
  }
  std::array<int, trace::kSubsystemCount> crash_count{};
  {
    obs::Span phase("sim.emit_crash_tickets");
    crash_count = emit_crash_tickets(config, fleet, std::move(events), writer);
  }
  {
    obs::Span phase("sim.emit_background_tickets");
    emit_background_tickets(config, fleet, crash_count, writer);
  }
  {
    obs::Span phase("sim.emit_workload");
    emit_weekly_usage(config, fleet, writer);
    emit_monthly_snapshots(fleet, writer);
    emit_power_events(config, fleet, writer);
  }
  {
    obs::Span phase("sim.writer_finish");
    writer.finish();
  }

  obs::counter("fa.sim.failure_events").add(event_count);
  obs::counter("fa.sim.tickets").add(writer.ticket_count());
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    obs::counter("fa.sim.tickets_by_subsystem",
                 {{"subsystem", std::string(trace::subsystem_name(sys))}})
        .add(writer.ticket_count(sys));
  }
}

trace::TraceDatabase simulate(const SimulationConfig& config) {
  trace::TraceDatabase db;
  trace::DatabaseTraceWriter writer(db);
  simulate_to(config, writer);
  {
    obs::Span phase("sim.finalize");
    db.finalize();
  }
  return db;
}

}  // namespace fa::sim
