#include "src/sim/simulator.h"

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/failures.h"
#include "src/sim/fleet.h"
#include "src/sim/hazard.h"
#include "src/sim/seed_streams.h"
#include "src/sim/ticketing.h"
#include "src/sim/workload.h"
#include "src/util/error.h"

namespace fa::sim {

trace::TraceDatabase simulate(const SimulationConfig& config) {
  obs::Span simulate_span("sim.simulate");

  // Fleet construction stays serial (machines are cheap to draw and later
  // machines' host-box placement depends on earlier draws); every other
  // phase fans out over the thread pool with counter-based streams.
  Rng fleet_rng = stream_rng(config.seed, SeedStream::kFleet);
  trace::TraceDatabase db;
  Fleet fleet;
  {
    obs::Span phase("sim.build_fleet");
    fleet = build_fleet(config, fleet_rng);
    for (const trace::ServerRecord& s : fleet.servers) {
      const trace::ServerId assigned = db.add_server(s);
      require(assigned == s.id, "simulate: fleet/database id mismatch");
    }
  }
  obs::counter("fa.sim.servers").add(fleet.servers.size());

  const HazardModel hazard(config, fleet);
  std::size_t event_count = 0;
  std::vector<FailureEvent> events;
  {
    obs::Span phase("sim.generate_failures");
    events = generate_failures(config, fleet, hazard, db);
    event_count = events.size();
  }
  {
    obs::Span phase("sim.emit_crash_tickets");
    emit_crash_tickets(config, std::move(events), db);
  }
  {
    obs::Span phase("sim.emit_background_tickets");
    emit_background_tickets(config, fleet, db);
  }
  {
    obs::Span phase("sim.emit_workload");
    emit_weekly_usage(config, fleet, db);
    emit_monthly_snapshots(fleet, db);
    emit_power_events(config, fleet, db);
  }
  {
    obs::Span phase("sim.finalize");
    db.finalize();
  }

  obs::counter("fa.sim.failure_events").add(event_count);
  obs::counter("fa.sim.tickets").add(db.tickets().size());
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    obs::counter("fa.sim.tickets_by_subsystem",
                 {{"subsystem", std::string(trace::subsystem_name(sys))}})
        .add(db.ticket_count(sys));
  }
  return db;
}

}  // namespace fa::sim
