#include "src/sim/simulator.h"

#include "src/sim/failures.h"
#include "src/sim/fleet.h"
#include "src/sim/hazard.h"
#include "src/sim/ticketing.h"
#include "src/sim/workload.h"
#include "src/util/error.h"

namespace fa::sim {

trace::TraceDatabase simulate(const SimulationConfig& config) {
  Rng rng(config.seed);
  Rng fleet_rng = rng.fork(1);
  Rng failure_rng = rng.fork(2);
  Rng ticket_rng = rng.fork(3);
  Rng workload_rng = rng.fork(4);

  const Fleet fleet = build_fleet(config, fleet_rng);

  trace::TraceDatabase db;
  for (const trace::ServerRecord& s : fleet.servers) {
    const trace::ServerId assigned = db.add_server(s);
    require(assigned == s.id, "simulate: fleet/database id mismatch");
  }

  const HazardModel hazard(config, fleet);
  auto events = generate_failures(config, fleet, hazard, db, failure_rng);
  emit_crash_tickets(config, std::move(events), db, ticket_rng);
  emit_background_tickets(config, fleet, db, ticket_rng);

  emit_weekly_usage(config, fleet, db, workload_rng);
  emit_monthly_snapshots(fleet, db);
  emit_power_events(fleet, db, workload_rng);

  db.finalize();
  return db;
}

}  // namespace fa::sim
