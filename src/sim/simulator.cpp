#include "src/sim/simulator.h"

#include "src/sim/failures.h"
#include "src/sim/fleet.h"
#include "src/sim/hazard.h"
#include "src/sim/seed_streams.h"
#include "src/sim/ticketing.h"
#include "src/sim/workload.h"
#include "src/util/error.h"

namespace fa::sim {

trace::TraceDatabase simulate(const SimulationConfig& config) {
  // Fleet construction stays serial (machines are cheap to draw and later
  // machines' host-box placement depends on earlier draws); every other
  // phase fans out over the thread pool with counter-based streams.
  Rng fleet_rng = stream_rng(config.seed, SeedStream::kFleet);
  const Fleet fleet = build_fleet(config, fleet_rng);

  trace::TraceDatabase db;
  for (const trace::ServerRecord& s : fleet.servers) {
    const trace::ServerId assigned = db.add_server(s);
    require(assigned == s.id, "simulate: fleet/database id mismatch");
  }

  const HazardModel hazard(config, fleet);
  auto events = generate_failures(config, fleet, hazard, db);
  emit_crash_tickets(config, std::move(events), db);
  emit_background_tickets(config, fleet, db);

  emit_weekly_usage(config, fleet, db);
  emit_monthly_snapshots(fleet, db);
  emit_power_events(config, fleet, db);

  db.finalize();
  return db;
}

}  // namespace fa::sim
