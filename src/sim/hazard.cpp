#include "src/sim/hazard.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/util/error.h"

namespace fa::sim {
namespace {

// Age (days) of a VM at the middle of the ticket year, used as the static
// stand-in for the slowly varying age multiplier.
double midyear_age_days(const MachineProfile& profile) {
  const ObservationWindow year = ticket_window();
  const TimePoint mid = year.begin + year.length() / 2;
  return std::max(0.0, to_days(mid - profile.creation));
}

}  // namespace

double exposure_fraction(const trace::ServerRecord& server,
                         const MachineProfile& profile) {
  if (server.type == trace::MachineType::kPhysical) return 1.0;
  const ObservationWindow year = ticket_window();
  const TimePoint start = std::max(profile.creation, year.begin);
  if (start >= year.end) return 0.0;
  return static_cast<double>(year.end - start) /
         static_cast<double>(year.length());
}

double machine_weight(const SimulationConfig& config,
                      const trace::ServerRecord& server,
                      const MachineProfile& profile) {
  double w = 1.0;
  if (server.type == trace::MachineType::kPhysical) {
    w *= config.pm_cpu_curve.at(server.cpu_count);
    w *= config.pm_mem_curve.at(server.memory_gb);
    w *= config.pm_cpu_util_curve.at(profile.mean_cpu_util);
    w *= config.pm_mem_util_curve.at(profile.mean_mem_util);
  } else {
    w *= config.vm_cpu_curve.at(server.cpu_count);
    w *= config.vm_mem_curve.at(server.memory_gb);
    if (server.disk_gb) w *= config.vm_disk_cap_curve.at(*server.disk_gb);
    if (server.disk_count) {
      w *= config.vm_disk_count_curve.at(*server.disk_count);
    }
    w *= config.vm_cpu_util_curve.at(profile.mean_cpu_util);
    w *= config.vm_mem_util_curve.at(profile.mean_mem_util);
    if (profile.mean_disk_util) {
      w *= config.vm_disk_util_curve.at(*profile.mean_disk_util);
    }
    if (profile.mean_net_kbps) {
      w *= config.vm_net_curve.at(*profile.mean_net_kbps);
    }
    w *= config.vm_consolidation_curve.at(profile.consolidation);
    w *= config.vm_onoff_curve.at(profile.onoff_per_month);
    w *= config.vm_age_curve.at(midyear_age_days(profile));
  }
  return w * exposure_fraction(server, profile);
}

std::array<double, 5> class_distribution(const SimulationConfig& config,
                                         trace::Subsystem sys,
                                         trace::MachineType type) {
  require(sys < trace::kSubsystemCount, "class_distribution: bad subsystem");
  const auto& boost = type == trace::MachineType::kPhysical
                          ? config.pm_class_boost
                          : config.vm_class_boost;
  std::array<double, 5> dist{};
  double total = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    dist[i] = config.systems[sys].class_mix[i] * boost[i];
    total += dist[i];
  }
  require(total > 0.0, "class_distribution: degenerate class mix");
  for (double& d : dist) d /= total;
  return dist;
}

HazardModel::HazardModel(const SimulationConfig& config, const Fleet& fleet) {
  static obs::Counter& weight_evals = obs::counter("fa.sim.hazard_weight_evals");
  weight_evals.add(fleet.servers.size());
  for (std::size_t i = 0; i < fleet.servers.size(); ++i) {
    const trace::ServerRecord& s = fleet.servers[i];
    const double w = machine_weight(config, s, fleet.profiles[i]);
    if (w <= 0.0) continue;
    Stratum& st =
        strata_[s.subsystem][static_cast<std::size_t>(s.type)];
    st.members.push_back(s.id);
    const double prev =
        st.cumulative_weight.empty() ? 0.0 : st.cumulative_weight.back();
    st.cumulative_weight.push_back(prev + w);
  }

  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    for (int t = 0; t < trace::kMachineTypeCount; ++t) {
      const auto type = static_cast<trace::MachineType>(t);
      Stratum& st = strata_[sys][static_cast<std::size_t>(t)];

      // Expected tickets per primary incident: expected distinct servers per
      // incident (over the recorded-class mix, including the vague "other"
      // share) divided by (1 - aftershock probability), since every affected
      // server spawns a geometric chain of follow-up failures.
      const PopulationSpec& pop = config.systems[sys];
      const auto real_mix = class_distribution(config, sys, type);
      double expected_size =
          pop.other_fraction *
          config.incident_size_for(type, trace::FailureClass::kOther)
              .expected_size();
      for (std::size_t c = 0; c < 5; ++c) {
        expected_size +=
            (1.0 - pop.other_fraction) * real_mix[c] *
            config.incident_size_for(type, static_cast<trace::FailureClass>(c))
                .expected_size();
      }
      const AftershockSpec& shock = type == trace::MachineType::kPhysical
                                        ? config.pm_aftershock
                                        : config.vm_aftershock;
      st.inflation = expected_size / (1.0 - shock.probability);

      const int target = type == trace::MachineType::kPhysical
                             ? pop.pm_crash_tickets
                             : pop.vm_crash_tickets;
      const double boost = type == trace::MachineType::kPhysical
                               ? config.pm_calibration_boost[sys]
                               : config.vm_calibration_boost[sys];
      st.primary_count = static_cast<int>(
          std::lround(boost * static_cast<double>(target) / st.inflation));
      if (st.members.empty()) st.primary_count = 0;
    }
  }
}

const HazardModel::Stratum& HazardModel::stratum(
    trace::Subsystem sys, trace::MachineType type) const {
  require(sys < trace::kSubsystemCount, "HazardModel: bad subsystem");
  return strata_[sys][static_cast<std::size_t>(type)];
}

int HazardModel::primary_incident_count(trace::Subsystem sys,
                                        trace::MachineType type) const {
  return stratum(sys, type).primary_count;
}

double HazardModel::ticket_inflation(trace::Subsystem sys,
                                     trace::MachineType type) const {
  return stratum(sys, type).inflation;
}

trace::ServerId HazardModel::sample_root(trace::Subsystem sys,
                                         trace::MachineType type,
                                         Rng& rng) const {
  // Root draws happen inside parallel incident generation, but the count is
  // fixed by the incident plan, so the total stays deterministic.
  static obs::Counter& root_draws = obs::counter("fa.sim.hazard_root_draws");
  root_draws.add(1);
  const Stratum& st = stratum(sys, type);
  if (st.members.empty()) return trace::ServerId{};
  const double total = st.cumulative_weight.back();
  const double r = rng.uniform() * total;
  const auto it = std::upper_bound(st.cumulative_weight.begin(),
                                   st.cumulative_weight.end(), r);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - st.cumulative_weight.begin(),
                               static_cast<std::ptrdiff_t>(st.members.size()) - 1));
  return st.members[idx];
}

}  // namespace fa::sim
