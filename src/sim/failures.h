// Failure-event generation.
//
// Primary incidents are drawn per (subsystem, machine-type) stratum with
// hazard-weighted root selection; each incident may spread to related
// servers (same hosting box, power domain, or application group, depending
// on the root cause), and every affected server spawns a geometric chain of
// aftershock failures with heavy-tailed delays. Aftershocks share the
// incident id of the originating incident: they are follow-on failures of
// the same underlying problem, so they drive the recurrence statistics
// (Table V / Fig. 5) without inflating incident sizes (Tables VI / VII).
#pragma once

#include <vector>

#include "src/sim/config.h"
#include "src/sim/fleet.h"
#include "src/sim/hazard.h"
#include "src/trace/trace_writer.h"
#include "src/util/rng.h"

namespace fa::sim {

struct FailureEvent {
  trace::ServerId server;
  trace::IncidentId incident;
  // The class a support engineer would record: one of the five real causes,
  // or kOther when the ticket is written too vaguely to attribute.
  trace::FailureClass recorded_class = trace::FailureClass::kOther;
  // The true underlying root cause (never kOther). Repair effort follows
  // the cause even when the ticket text is too vague to name it.
  trace::FailureClass cause_class = trace::FailureClass::kSoftware;
  TimePoint at = 0;
  bool is_aftershock = false;
};

// Generates all failure events of the observation year, sorted by time.
// Incident ids are allocated from `writer`. Randomness is derived from
// `config.seed` via one counter-based stream per primary incident, and the
// per-incident generation fans out over the global thread pool — the output
// is bit-identical at any thread count.
std::vector<FailureEvent> generate_failures(const SimulationConfig& config,
                                            const Fleet& fleet,
                                            const HazardModel& hazard,
                                            trace::TraceWriter& writer);

}  // namespace fa::sim
