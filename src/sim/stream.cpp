#include "src/sim/stream.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/error.h"

namespace fa::sim {
namespace {

// Piecewise-constant relative intensity of the scenario over `window`:
// segment i covers [edges[i], edges[i+1]) with intensity factors[i].
struct Timeline {
  std::vector<TimePoint> edges;   // size n+1, edges.front()=begin, back()=end
  std::vector<double> factors;    // size n, all > 0
  std::vector<double> cum_mass;   // size n+1, cum_mass[i] = mass before edge i
  double total_mass = 0.0;
};

Timeline build_timeline(const StreamScenario& scenario,
                        const ObservationWindow& window) {
  Timeline tl;
  tl.edges.push_back(window.begin);
  tl.factors.push_back(1.0);
  TimePoint prev = window.begin;
  for (const HazardShift& s : scenario.shifts) {
    require(s.factor > 0.0, "emit_stream: hazard shift factor must be > 0");
    require(s.at > prev && s.at < window.end,
            "emit_stream: hazard shifts must be strictly increasing and "
            "inside the stream window");
    prev = s.at;
    tl.edges.push_back(s.at);
    tl.factors.push_back(s.factor);
  }
  tl.edges.push_back(window.end);
  tl.cum_mass.resize(tl.edges.size(), 0.0);
  for (std::size_t i = 0; i < tl.factors.size(); ++i) {
    tl.cum_mass[i + 1] =
        tl.cum_mass[i] +
        tl.factors[i] * static_cast<double>(tl.edges[i + 1] - tl.edges[i]);
  }
  tl.total_mass = tl.cum_mass.back();
  return tl;
}

// Maps window fraction u in [0, 1] to the point where the normalized
// integral of the timeline intensity reaches u (inverse-CDF of r / |r|).
TimePoint warp_fraction(const Timeline& tl, const ObservationWindow& window,
                        double u) {
  const double target = u * tl.total_mass;
  // Find the segment holding `target` mass (few segments: linear scan).
  std::size_t i = 0;
  while (i + 1 < tl.factors.size() && tl.cum_mass[i + 1] < target) ++i;
  const double within = (target - tl.cum_mass[i]) / tl.factors[i];
  const TimePoint warped =
      tl.edges[i] + static_cast<TimePoint>(std::llround(within));
  return std::clamp(warped, window.begin, window.end - 1);
}

struct Entry {
  TimePoint at = 0;
  trace::StreamEventKind kind = trace::StreamEventKind::kTicket;
  const trace::Ticket* ticket = nullptr;
  const trace::WeeklyUsage* usage = nullptr;
};

// Deterministic delivery order: time, then kind, then record identity.
bool entry_less(const Entry& a, const Entry& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.kind == trace::StreamEventKind::kTicket) {
    return a.ticket->id < b.ticket->id;
  }
  if (a.usage->server != b.usage->server) return a.usage->server < b.usage->server;
  return a.usage->week < b.usage->week;
}

}  // namespace

std::vector<TimePoint> StreamScenario::change_points() const {
  std::vector<TimePoint> points;
  double factor = 1.0;
  for (const HazardShift& s : shifts) {
    if (s.factor != factor) points.push_back(s.at);
    factor = s.factor;
  }
  return points;
}

TimePoint warp_time(const StreamScenario& scenario,
                    const ObservationWindow& window, TimePoint t) {
  if (scenario.shifts.empty() || !window.contains(t)) return t;
  const Timeline tl = build_timeline(scenario, window);
  const double u = static_cast<double>(t - window.begin) /
                   static_cast<double>(window.length());
  return warp_fraction(tl, window, u);
}

void emit_stream(const trace::TraceDatabase& db,
                 const StreamScenario& scenario, trace::StreamSink& sink) {
  obs::Span span("detect.emit_stream");
  require(db.finalized(), "emit_stream: database must be finalized");
  const ObservationWindow& window = db.window();
  const bool warp = !scenario.shifts.empty();
  Timeline tl;
  if (warp) tl = build_timeline(scenario, window);
  const TimePoint stream_end =
      scenario.cutoff > 0 ? scenario.cutoff : window.end;
  require(stream_end > window.begin && stream_end <= window.end,
          "emit_stream: cutoff must lie inside the stream window");

  trace::StreamMeta meta;
  meta.window = window;
  meta.server_count = db.servers().size();
  for (const trace::ServerRecord& s : db.servers()) {
    ++meta.servers_by_type[static_cast<std::size_t>(s.type)];
    ++meta.servers_by_subsystem[s.subsystem];
  }

  std::vector<Entry> entries;
  entries.reserve(db.tickets().size());
  for (const trace::Ticket& t : db.tickets()) {
    Entry e;
    e.kind = trace::StreamEventKind::kTicket;
    e.ticket = &t;
    e.at = t.opened;
    if (warp && window.contains(t.opened)) {
      const double u = static_cast<double>(t.opened - window.begin) /
                       static_cast<double>(window.length());
      e.at = warp_fraction(tl, window, u);
    }
    entries.push_back(e);
  }
  // A weekly average becomes available at the end of its week; the
  // monitoring cadence is wall-clock, so usage timestamps are never warped.
  for (const trace::ServerRecord& s : db.servers()) {
    for (const trace::WeeklyUsage& u : db.weekly_usage_for(s.id)) {
      Entry e;
      e.kind = trace::StreamEventKind::kUsage;
      e.usage = &u;
      e.at = std::min<TimePoint>(
          window.begin + static_cast<TimePoint>(u.week + 1) * kMinutesPerWeek,
          window.end);
      entries.push_back(e);
    }
  }
  std::sort(entries.begin(), entries.end(), entry_less);

  sink.begin(meta);
  std::size_t delivered = 0;
  for (const Entry& e : entries) {
    if (e.at >= stream_end) break;  // sorted: everything later is cut off too
    trace::StreamEvent event;
    event.kind = e.kind;
    event.at = e.at;
    if (e.kind == trace::StreamEventKind::kTicket) {
      event.ticket = *e.ticket;
      event.ticket.opened = e.at;
      event.ticket.closed = e.at + e.ticket->repair_time();
      event.machine_type = db.server(e.ticket->server).type;
    } else {
      event.usage = *e.usage;
      event.machine_type = db.server(e.usage->server).type;
    }
    sink.on_event(event);
    ++delivered;
  }
  sink.finish(stream_end);
  obs::counter("fa.detect.stream.emitted").add(delivered);
}

}  // namespace fa::sim
