#include "src/stats/pareto.h"

#include <cmath>
#include <limits>
#include <vector>

#include "src/stats/simd.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::stats {

Pareto::Pareto(double x_min, double alpha) : x_min_(x_min), alpha_(alpha) {
  require(x_min > 0.0, "Pareto: x_min must be positive");
  require(alpha > 0.0, "Pareto: alpha must be positive");
}

std::string Pareto::describe() const {
  return "Pareto(x_min=" + format_double(x_min_, 4) +
         ", alpha=" + format_double(alpha_, 4) + ")";
}

double Pareto::pdf(double x) const {
  if (x < x_min_) return 0.0;
  return alpha_ * std::pow(x_min_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::log_pdf(double x) const {
  if (x < x_min_) return -std::numeric_limits<double>::infinity();
  return std::log(alpha_) + alpha_ * std::log(x_min_) -
         (alpha_ + 1.0) * std::log(x);
}

double Pareto::log_likelihood(std::span<const double> xs) const {
  if (!detail::batch_domain_ok(xs, x_min_, /*open=*/false)) {
    return Distribution::log_likelihood(xs);
  }
  // ll = n (log alpha + alpha log x_min) - (alpha+1) sum(log x).
  const auto n = static_cast<double>(xs.size());
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log(xs[i]);
  return n * (std::log(alpha_) + alpha_ * std::log(x_min_)) -
         (alpha_ + 1.0) * simd::sum(lx);
}

double Pareto::cdf(double x) const {
  if (x <= x_min_) return 0.0;
  return 1.0 - std::pow(x_min_ / x, alpha_);
}

double Pareto::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Pareto::quantile: p must be in [0, 1)");
  return x_min_ / std::pow(1.0 - p, 1.0 / alpha_);
}

double Pareto::sample(Rng& rng) const {
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  return x_min_ / std::pow(u, 1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * x_min_ / (alpha_ - 1.0);
}

double Pareto::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double m = x_min_ / (alpha_ - 1.0);
  return m * m * alpha_ / (alpha_ - 2.0);
}

}  // namespace fa::stats
