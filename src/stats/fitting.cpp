#include "src/stats/fitting.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/stats/ks.h"
#include "src/stats/simd.h"
#include "src/stats/special.h"
#include "src/util/error.h"

namespace fa::stats {
namespace {

void check_positive(std::span<const double> xs, const char* who) {
  require(xs.size() >= 2, std::string(who) + ": need at least two samples");
  for (double x : xs) {
    require(x > 0.0, std::string(who) + ": samples must be positive");
  }
}

double sample_mean(std::span<const double> xs) {
  return simd::sum(xs) / static_cast<double>(xs.size());
}

std::vector<double> log_buffer(std::span<const double> xs) {
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log(xs[i]);
  return lx;
}

double mean_log(std::span<const double> xs) {
  const std::vector<double> lx = log_buffer(xs);
  return simd::sum(lx) / static_cast<double>(xs.size());
}

}  // namespace

Exponential fit_exponential(std::span<const double> xs) {
  check_positive(xs, "fit_exponential");
  return Exponential(1.0 / sample_mean(xs));
}

LogNormal fit_lognormal(std::span<const double> xs) {
  check_positive(xs, "fit_lognormal");
  const std::vector<double> lx = log_buffer(xs);
  const double mu = simd::sum(lx) / static_cast<double>(xs.size());
  const double ss = simd::sum_sq_dev(lx, mu);
  const double sigma = std::sqrt(ss / static_cast<double>(xs.size()));
  require(sigma > 0.0, "fit_lognormal: degenerate sample (all equal)");
  return LogNormal(mu, sigma);
}

GammaDist fit_gamma(std::span<const double> xs) {
  check_positive(xs, "fit_gamma");
  const double m = sample_mean(xs);
  const double s = std::log(m) - mean_log(xs);
  require(s > 0.0, "fit_gamma: degenerate sample (all equal)");
  // Minka's closed-form initializer, then Newton on
  // f(k) = ln k - digamma(k) - s.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
             (12.0 * s);
  if (!(k > 0.0) || !std::isfinite(k)) k = 0.5 / s;
  for (int i = 0; i < 100; ++i) {
    const double f = std::log(k) - digamma(k) - s;
    const double fp = 1.0 / k - trigamma(k);
    double next = k - f / fp;
    if (!(next > 0.0) || !std::isfinite(next)) next = k / 2.0;
    if (std::fabs(next - k) <= 1e-12 * k) {
      k = next;
      break;
    }
    k = next;
  }
  return GammaDist(k, m / k);
}

Weibull fit_weibull(std::span<const double> xs) {
  check_positive(xs, "fit_weibull");
  // Hoist log(x) out of the root iteration: each g(k) evaluation then costs
  // one exp per element (x^k = exp(k ln x)) plus two vector reductions,
  // instead of a pow and a log per element.
  const std::vector<double> lx = log_buffer(xs);
  const double mlog = simd::sum(lx) / static_cast<double>(xs.size());
  std::vector<double> xk(xs.size());
  // Profile-likelihood equation for the shape:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0,
  // g is increasing in k; bracket then bisect with Newton-like midpoints.
  const auto g = [&](double k) {
    for (std::size_t i = 0; i < lx.size(); ++i) xk[i] = std::exp(k * lx[i]);
    const double num = simd::dot(xk, lx);
    const double den = simd::sum(xk);
    return num / den - 1.0 / k - mlog;
  };
  double lo = 1e-3, hi = 1.0;
  while (g(hi) < 0.0 && hi < 1e6) hi *= 2.0;
  while (g(lo) > 0.0 && lo > 1e-9) lo /= 2.0;
  require(g(lo) <= 0.0 && g(hi) >= 0.0,
          "fit_weibull: failed to bracket the shape root");
  double k = 0.5 * (lo + hi);
  for (int i = 0; i < 200; ++i) {
    k = 0.5 * (lo + hi);
    const double v = g(k);
    if (std::fabs(v) < 1e-13 || (hi - lo) < 1e-12 * k) break;
    (v < 0.0 ? lo : hi) = k;
  }
  for (std::size_t i = 0; i < lx.size(); ++i) xk[i] = std::exp(k * lx[i]);
  const double scale =
      std::pow(simd::sum(xk) / static_cast<double>(xs.size()), 1.0 / k);
  return Weibull(k, scale);
}

std::vector<FitResult> fit_candidates(std::span<const double> xs) {
  check_positive(xs, "fit_candidates");
  std::vector<FitResult> results;
  const auto add = [&](DistributionPtr dist, int n_params) {
    FitResult r;
    r.log_likelihood = dist->log_likelihood(xs);
    r.aic = 2.0 * n_params - 2.0 * r.log_likelihood;
    r.ks_statistic = ks_statistic(xs, *dist);
    r.dist = std::move(dist);
    results.push_back(std::move(r));
  };
  add(std::make_unique<Exponential>(fit_exponential(xs)), 1);
  // Degenerate samples (all values equal) fit exponential only.
  try {
    add(std::make_unique<Weibull>(fit_weibull(xs)), 2);
    add(std::make_unique<GammaDist>(fit_gamma(xs)), 2);
    add(std::make_unique<LogNormal>(fit_lognormal(xs)), 2);
  } catch (const Error&) {
    // Keep whatever families fitted successfully.
  }
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) {
              return a.log_likelihood > b.log_likelihood;
            });
  return results;
}

FitResult fit_best(std::span<const double> xs) {
  auto results = fit_candidates(xs);
  require(!results.empty(), "fit_best: no family fitted");
  return std::move(results.front());
}

double amdahl_serial_fraction(std::span<const int> threads,
                              std::span<const double> times_ms) {
  require(threads.size() == times_ms.size(),
          "amdahl_serial_fraction: threads/times size mismatch");
  require(threads.size() >= 2,
          "amdahl_serial_fraction: need at least two measurements");
  double t1 = 0.0;
  bool have_t1 = false;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    require(threads[i] >= 1 && times_ms[i] > 0.0,
            "amdahl_serial_fraction: threads must be >= 1 and times positive");
    if (threads[i] == 1) {
      t1 = times_ms[i];
      have_t1 = true;
    }
  }
  require(have_t1, "amdahl_serial_fraction: need a 1-thread measurement");
  // T(p) = T1/p + s * T1 * (1 - 1/p) is linear in s; solve the normal
  // equation over the p > 1 measurements.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const double inv_p = 1.0 / static_cast<double>(threads[i]);
    const double a = t1 * (1.0 - inv_p);
    num += a * (times_ms[i] - t1 * inv_p);
    den += a * a;
  }
  if (den <= 0.0) return 1.0;  // only p == 1 measurements: no information
  return std::clamp(num / den, 0.0, 1.0);
}

}  // namespace fa::stats
