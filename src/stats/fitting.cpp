#include "src/stats/fitting.h"

#include <algorithm>
#include <cmath>

#include "src/stats/ks.h"
#include "src/stats/special.h"
#include "src/util/error.h"

namespace fa::stats {
namespace {

void check_positive(std::span<const double> xs, const char* who) {
  require(xs.size() >= 2, std::string(who) + ": need at least two samples");
  for (double x : xs) {
    require(x > 0.0, std::string(who) + ": samples must be positive");
  }
}

double sample_mean(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double mean_log(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return s / static_cast<double>(xs.size());
}

}  // namespace

Exponential fit_exponential(std::span<const double> xs) {
  check_positive(xs, "fit_exponential");
  return Exponential(1.0 / sample_mean(xs));
}

LogNormal fit_lognormal(std::span<const double> xs) {
  check_positive(xs, "fit_lognormal");
  const double mu = mean_log(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = std::log(x) - mu;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / static_cast<double>(xs.size()));
  require(sigma > 0.0, "fit_lognormal: degenerate sample (all equal)");
  return LogNormal(mu, sigma);
}

GammaDist fit_gamma(std::span<const double> xs) {
  check_positive(xs, "fit_gamma");
  const double m = sample_mean(xs);
  const double s = std::log(m) - mean_log(xs);
  require(s > 0.0, "fit_gamma: degenerate sample (all equal)");
  // Minka's closed-form initializer, then Newton on
  // f(k) = ln k - digamma(k) - s.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
             (12.0 * s);
  if (!(k > 0.0) || !std::isfinite(k)) k = 0.5 / s;
  for (int i = 0; i < 100; ++i) {
    const double f = std::log(k) - digamma(k) - s;
    const double fp = 1.0 / k - trigamma(k);
    double next = k - f / fp;
    if (!(next > 0.0) || !std::isfinite(next)) next = k / 2.0;
    if (std::fabs(next - k) <= 1e-12 * k) {
      k = next;
      break;
    }
    k = next;
  }
  return GammaDist(k, m / k);
}

Weibull fit_weibull(std::span<const double> xs) {
  check_positive(xs, "fit_weibull");
  const double mlog = mean_log(xs);
  // Profile-likelihood equation for the shape:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0,
  // g is increasing in k; bracket then bisect with Newton-like midpoints.
  const auto g = [&](double k) {
    double num = 0.0, den = 0.0;
    for (double x : xs) {
      const double xk = std::pow(x, k);
      num += xk * std::log(x);
      den += xk;
    }
    return num / den - 1.0 / k - mlog;
  };
  double lo = 1e-3, hi = 1.0;
  while (g(hi) < 0.0 && hi < 1e6) hi *= 2.0;
  while (g(lo) > 0.0 && lo > 1e-9) lo /= 2.0;
  require(g(lo) <= 0.0 && g(hi) >= 0.0,
          "fit_weibull: failed to bracket the shape root");
  double k = 0.5 * (lo + hi);
  for (int i = 0; i < 200; ++i) {
    k = 0.5 * (lo + hi);
    const double v = g(k);
    if (std::fabs(v) < 1e-13 || (hi - lo) < 1e-12 * k) break;
    (v < 0.0 ? lo : hi) = k;
  }
  double sum_xk = 0.0;
  for (double x : xs) sum_xk += std::pow(x, k);
  const double scale =
      std::pow(sum_xk / static_cast<double>(xs.size()), 1.0 / k);
  return Weibull(k, scale);
}

std::vector<FitResult> fit_candidates(std::span<const double> xs) {
  check_positive(xs, "fit_candidates");
  std::vector<FitResult> results;
  const auto add = [&](DistributionPtr dist, int n_params) {
    FitResult r;
    r.log_likelihood = dist->log_likelihood(xs);
    r.aic = 2.0 * n_params - 2.0 * r.log_likelihood;
    r.ks_statistic = ks_statistic(xs, *dist);
    r.dist = std::move(dist);
    results.push_back(std::move(r));
  };
  add(std::make_unique<Exponential>(fit_exponential(xs)), 1);
  // Degenerate samples (all values equal) fit exponential only.
  try {
    add(std::make_unique<Weibull>(fit_weibull(xs)), 2);
    add(std::make_unique<GammaDist>(fit_gamma(xs)), 2);
    add(std::make_unique<LogNormal>(fit_lognormal(xs)), 2);
  } catch (const Error&) {
    // Keep whatever families fitted successfully.
  }
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) {
              return a.log_likelihood > b.log_likelihood;
            });
  return results;
}

FitResult fit_best(std::span<const double> xs) {
  auto results = fit_candidates(xs);
  require(!results.empty(), "fit_best: no family fitted");
  return std::move(results.front());
}

}  // namespace fa::stats
