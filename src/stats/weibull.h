#pragma once

#include "src/stats/distribution.h"

namespace fa::stats {

// Weibull(shape k, scale lambda); pdf (k/l)(x/l)^{k-1} exp(-(x/l)^k).
// Shape < 1 captures the "bursty" inter-failure times reported for HPC
// systems; one of the three candidate families in the paper's fits.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  std::string name() const override { return "weibull"; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double log_likelihood(std::span<const double> xs) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace fa::stats
