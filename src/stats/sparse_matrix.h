// Compressed sparse row (CSR) matrix with cached per-row squared L2 norms.
//
// Built for the ticket-classification hot path: a TF-IDF document-term
// matrix where each row touches ~10 of thousands of columns. Rows are
// appended once (strictly increasing column indices) and the matrix is
// immutable afterwards, so it is safe to share across threads. The cached
// row norms feed the ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 expansion used
// by the sparse k-means overload (see kmeans.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fa::stats {

class SparseMatrix {
 public:
  struct RowView {
    std::span<const std::uint32_t> indices;  // strictly increasing
    std::span<const double> values;          // parallel to indices
    std::size_t size() const { return indices.size(); }
  };

  explicit SparseMatrix(std::size_t cols) : cols_(cols) {}

  // Appends one row. `indices` must be strictly increasing, < cols(), and
  // parallel to `values`. Zero-length rows (empty documents) are fine.
  void append_row(std::span<const std::uint32_t> indices,
                  std::span<const double> values);

  std::size_t rows() const { return row_offsets_.size() - 1; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  RowView row(std::size_t i) const;

  // Squared L2 norm of row i, computed once at append time.
  double row_norm_sq(std::size_t i) const { return norms_sq_[i]; }

  // Row i . y for a dense vector y of cols() entries.
  double dot_dense(std::size_t i, std::span<const double> y) const;

  // Densified copies — for k-means anchors, reseeding and tests; not for
  // hot loops.
  std::vector<double> row_dense(std::size_t i) const;
  std::vector<std::vector<double>> to_dense() const;

 private:
  std::size_t cols_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<double> values_;
  std::vector<std::size_t> row_offsets_{0};
  std::vector<double> norms_sq_;
};

}  // namespace fa::stats
