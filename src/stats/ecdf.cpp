#include "src/stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace fa::stats {

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  require(!sorted_.empty(), "Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  require(p > 0.0 && p <= 1.0, "Ecdf::quantile: p must be in (0, 1]");
  const auto n = sorted_.size();
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n))) - 1;
  return sorted_[std::min(idx, n - 1)];
}

std::vector<Ecdf::Point> Ecdf::curve(std::size_t max_points) const {
  require(max_points >= 2, "Ecdf::curve: need at least two points");
  const std::size_t n = sorted_.size();
  std::vector<Point> pts;
  const std::size_t count = std::min(max_points, n);
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Pick evenly spaced order statistics, always including the maximum.
    const std::size_t idx =
        count == 1 ? n - 1 : (i * (n - 1)) / (count - 1);
    pts.push_back({sorted_[idx], static_cast<double>(idx + 1) /
                                     static_cast<double>(n)});
  }
  return pts;
}

}  // namespace fa::stats
