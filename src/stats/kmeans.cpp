#include "src/stats/kmeans.h"

#include <cmath>
#include <limits>

#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::stats {
namespace {

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

std::vector<std::vector<double>> seed_plus_plus(
    std::span<const std::vector<double>> points, const KMeansOptions& options,
    Rng& rng) {
  const int k = options.k;
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  const auto n = static_cast<std::int64_t>(points.size());
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  if (options.anchors.empty()) {
    centroids.push_back(
        points[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  } else {
    // Anchors first; k-means++ continues conditioned on them.
    for (const auto& anchor : options.anchors) {
      if (static_cast<int>(centroids.size()) >= k) break;
      centroids.push_back(anchor);
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (const auto& c : centroids) {
        d2[i] = std::min(d2[i], squared_distance(points[i], c));
      }
    }
  }
  while (static_cast<int>(centroids.size()) < k) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], centroids.back()));
    }
    double total = 0.0;
    for (double d : d2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      r -= d2[i];
      if (r < 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult run_once(std::span<const std::vector<double>> points,
                      const KMeansOptions& options, Rng& rng) {
  const std::size_t dim = points.front().size();
  KMeansResult result;
  result.centroids = seed_plus_plus(points, options, rng);
  result.assignment.assign(points.size(), -1);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < options.k; ++c) {
        const double d =
            squared_distance(points[i], result.centroids[static_cast<std::size_t>(c)]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(options.k), std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(options.k), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < sums.size(); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(points.size()) - 1))];
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (prev_inertia - inertia <=
        options.tolerance * std::max(prev_inertia, 1e-300)) {
      result.converged = true;
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

KMeansResult kmeans(std::span<const std::vector<double>> points,
                    const KMeansOptions& options, Rng& rng) {
  require(options.k >= 1, "kmeans: k must be >= 1");
  require(points.size() >= static_cast<std::size_t>(options.k),
          "kmeans: need at least k points");
  require(options.restarts >= 1, "kmeans: need at least one restart");
  const std::size_t dim = points.front().size();
  require(dim >= 1, "kmeans: zero-dimensional points");
  for (const auto& p : points) {
    require(p.size() == dim, "kmeans: inconsistent point dimensionality");
  }

  // Derive one RNG per restart up front (serially, so the caller's generator
  // advances the same way at any thread count), then fan the restarts out.
  // The winner is picked by (inertia, restart index), which makes the result
  // independent of completion order.
  std::vector<Rng> restart_rngs;
  restart_rngs.reserve(static_cast<std::size_t>(options.restarts));
  for (int r = 0; r < options.restarts; ++r) {
    restart_rngs.push_back(rng.fork(static_cast<std::uint64_t>(r)));
  }
  std::vector<KMeansResult> runs(static_cast<std::size_t>(options.restarts));
  parallel_for(runs.size(), [&](std::size_t r) {
    runs[r] = run_once(points, options, restart_rngs[r]);
  });

  std::size_t best = 0;
  for (std::size_t r = 1; r < runs.size(); ++r) {
    if (runs[r].inertia < runs[best].inertia) best = r;
  }
  return std::move(runs[best]);
}

}  // namespace fa::stats
