#include "src/stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/metrics.h"
#include "src/stats/simd.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::stats {
namespace {

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  return simd::squared_distance(a, b);
}

std::vector<std::vector<double>> seed_plus_plus(
    std::span<const std::vector<double>> points, const KMeansOptions& options,
    Rng& rng) {
  const int k = options.k;
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  const auto n = static_cast<std::int64_t>(points.size());
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  if (options.anchors.empty()) {
    centroids.push_back(
        points[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  } else {
    // Anchors first; k-means++ continues conditioned on them.
    for (const auto& anchor : options.anchors) {
      if (static_cast<int>(centroids.size()) >= k) break;
      centroids.push_back(anchor);
    }
    // Anchors filling all k centroids leave nothing for k-means++ to draw:
    // the O(n * |anchors|) d2 pass below would be dead work.
    if (static_cast<int>(centroids.size()) >= k) return centroids;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (const auto& c : centroids) {
        d2[i] = std::min(d2[i], squared_distance(points[i], c));
      }
    }
  }
  while (static_cast<int>(centroids.size()) < k) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], centroids.back()));
    }
    double total = 0.0;
    for (double d : d2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      r -= d2[i];
      if (r < 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult run_once(std::span<const std::vector<double>> points,
                      const KMeansOptions& options, Rng& rng) {
  const std::size_t dim = points.front().size();
  KMeansResult result;
  result.centroids = seed_plus_plus(points, options, rng);
  result.assignment.assign(points.size(), -1);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < options.k; ++c) {
        const double d =
            squared_distance(points[i], result.centroids[static_cast<std::size_t>(c)]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.stats.distances_computed +=
        static_cast<std::uint64_t>(points.size()) *
        static_cast<std::uint64_t>(options.k);
    result.inertia = inertia;
    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(options.k), std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(options.k), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < sums.size(); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(points.size()) - 1))];
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    // iter 1 has no previous inertia to compare against (inf - x <= tol*inf
    // holds, which would declare convergence after a single Lloyd step).
    if (iter > 1 && prev_inertia - inertia <=
                        options.tolerance * std::max(prev_inertia, 1e-300)) {
      result.converged = true;
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Sparse fast path. Distances use ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2
// over each row's nonzeros; the assignment step keeps Hamerly-style bounds
// and runs over chunks whose boundaries depend only on n, with a serial
// in-order reduction, so results are bit-identical at any thread count.

double dense_dot(const std::vector<double>& a, const std::vector<double>& b) {
  return simd::dot(a, b);
}

double sparse_sq_dist(const SparseMatrix& points, std::size_t i,
                      const std::vector<double>& centroid,
                      double centroid_norm_sq) {
  const double d = points.row_norm_sq(i) -
                   2.0 * points.dot_dense(i, centroid) + centroid_norm_sq;
  return d > 0.0 ? d : 0.0;  // the expansion can go negative by rounding
}

// Fixed-size chunking for parallel loops over points: boundaries are a
// function of n alone (never of the thread count), which is what keeps the
// parallel assignment step deterministic.
constexpr std::size_t kAssignChunk = 2048;

void parallel_chunks(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t chunks = (n + kAssignChunk - 1) / kAssignChunk;
  parallel_for(chunks, [&](std::size_t c) {
    body(c * kAssignChunk, std::min(n, (c + 1) * kAssignChunk));
  });
}

std::vector<std::vector<double>> seed_plus_plus_sparse(
    const SparseMatrix& points, const KMeansOptions& options, Rng& rng) {
  const int k = options.k;
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  const auto n = static_cast<std::int64_t>(points.rows());
  std::vector<double> d2(points.rows(),
                         std::numeric_limits<double>::infinity());
  const auto lower_onto = [&](const std::vector<double>& c) {
    const double cn = dense_dot(c, c);
    parallel_chunks(points.rows(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        d2[i] = std::min(d2[i], sparse_sq_dist(points, i, c, cn));
      }
    });
  };
  if (options.anchors.empty()) {
    centroids.push_back(
        points.row_dense(static_cast<std::size_t>(rng.uniform_int(0, n - 1))));
  } else {
    // Anchors first; k-means++ continues conditioned on them. As in the
    // dense path, anchors filling all k centroids skip the d2 pass.
    for (const auto& anchor : options.anchors) {
      if (static_cast<int>(centroids.size()) >= k) break;
      centroids.push_back(anchor);
    }
    if (static_cast<int>(centroids.size()) >= k) return centroids;
    for (const auto& c : centroids) lower_onto(c);
  }
  while (static_cast<int>(centroids.size()) < k) {
    lower_onto(centroids.back());
    double total = 0.0;
    for (double d : d2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t chosen = points.rows() - 1;
    for (std::size_t i = 0; i < points.rows(); ++i) {
      r -= d2[i];
      if (r < 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points.row_dense(chosen));
  }
  return centroids;
}

KMeansResult run_once_sparse(const SparseMatrix& points,
                             const KMeansOptions& options, Rng& rng) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  const auto k = static_cast<std::size_t>(options.k);
  KMeansResult result;
  result.centroids = seed_plus_plus_sparse(points, options, rng);
  result.assignment.assign(n, -1);

  // Hamerly state, on Euclidean (not squared) distances. upper[i] is made
  // exact every iteration (the recomputation is only O(nnz(x)) and its
  // square is the point's inertia term); lower[i] bounds the distance to
  // the runner-up centroid from below; half_sep[c] is half the distance
  // from centroid c to its nearest other centroid. Invariant between
  // iterations: upper[i] >= d(x_i, c_assigned), lower[i] <= d(x_i, c) for
  // every c != assigned.
  std::vector<double> upper(n, 0.0), lower(n, 0.0), d_sq(n, 0.0);
  std::vector<double> centroid_norm_sq(k, 0.0);
  std::vector<double> half_sep(k, 0.0);
  std::vector<double> moved(k, 0.0);
  std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
  std::vector<std::size_t> counts(k, 0);

  // Prune accounting: per-chunk slots written only by the chunk's worker,
  // summed serially after the loop, so the totals are schedule-independent
  // (and integer, so they are bit-identical at any thread count).
  const std::size_t chunk_count = (n + kAssignChunk - 1) / kAssignChunk;
  std::vector<std::uint64_t> computed_per_chunk(chunk_count, 0);
  std::vector<std::uint64_t> pruned_per_chunk(chunk_count, 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    for (std::size_t c = 0; c < k; ++c) {
      centroid_norm_sq[c] =
          dense_dot(result.centroids[c], result.centroids[c]);
    }
    for (std::size_t c = 0; c < k; ++c) {
      double nearest = std::numeric_limits<double>::infinity();
      for (std::size_t o = 0; o < k; ++o) {
        if (o == c) continue;
        nearest = std::min(
            nearest, squared_distance(result.centroids[c], result.centroids[o]));
      }
      half_sep[c] = 0.5 * std::sqrt(nearest);
    }

    // Assignment step: chunk-parallel, every write lands in a per-point slot.
    parallel_chunks(n, [&](std::size_t b, std::size_t e) {
      std::uint64_t computed = 0, pruned = 0;
      for (std::size_t i = b; i < e; ++i) {
        const int a = result.assignment[i];
        if (a >= 0) {
          const auto ac = static_cast<std::size_t>(a);
          const double sq = sparse_sq_dist(points, i, result.centroids[ac],
                                           centroid_norm_sq[ac]);
          const double d_a = std::sqrt(sq);
          upper[i] = d_a;
          d_sq[i] = sq;
          ++computed;  // the exactness recompute against the assigned centroid
          // Hamerly test: the assigned centroid is certainly still nearest
          // when its exact distance is within both the runner-up lower
          // bound and half the separation to the nearest other centroid.
          if (d_a <= std::max(lower[i], half_sep[ac])) {
            pruned += k - 1;  // skipped the scan over every other centroid
            continue;
          }
        }
        computed += k;
        double best_sq = std::numeric_limits<double>::infinity();
        double second_sq = std::numeric_limits<double>::infinity();
        int best_c = 0;
        for (std::size_t c = 0; c < k; ++c) {
          const double sq =
              sparse_sq_dist(points, i, result.centroids[c],
                             centroid_norm_sq[c]);
          if (sq < best_sq) {
            second_sq = best_sq;
            best_sq = sq;
            best_c = static_cast<int>(c);
          } else if (sq < second_sq) {
            second_sq = sq;
          }
        }
        result.assignment[i] = best_c;
        upper[i] = std::sqrt(best_sq);
        lower[i] = std::sqrt(second_sq);
        d_sq[i] = best_sq;
      }
      computed_per_chunk[b / kAssignChunk] += computed;
      pruned_per_chunk[b / kAssignChunk] += pruned;
    });

    // Serial in-order reduction: inertia plus cluster sums/counts. This is
    // O(total nonzeros) — negligible next to the distance scans — and its
    // fixed order is what makes the result thread-count independent.
    double inertia = 0.0;
    for (auto& s : sums) std::fill(s.begin(), s.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      inertia += d_sq[i];
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      const auto row = points.row(i);
      auto& sum = sums[c];
      for (std::size_t e = 0; e < row.size(); ++e) {
        sum[row.indices[e]] += row.values[e];
      }
    }
    result.inertia = inertia;

    // Update step, tracking how far each centroid moved.
    double max_moved = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      auto& centroid = result.centroids[c];
      double moved_sq = 0.0;
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point; the movement
        // bookkeeping below keeps the bounds valid even for this jump.
        auto reseeded = points.row_dense(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
        moved_sq = squared_distance(centroid, reseeded);
        centroid = std::move(reseeded);
      } else {
        for (std::size_t d = 0; d < dim; ++d) {
          const double mean = sums[c][d] / static_cast<double>(counts[c]);
          const double diff = mean - centroid[d];
          moved_sq += diff * diff;
          centroid[d] = mean;
        }
      }
      moved[c] = std::sqrt(moved_sq);
      max_moved = std::max(max_moved, moved[c]);
    }

    // iter 1 has no previous inertia to compare against (inf - x <= tol*inf
    // holds, which would declare convergence after a single Lloyd step).
    if (iter > 1 && prev_inertia - inertia <=
                        options.tolerance * std::max(prev_inertia, 1e-300)) {
      result.converged = true;
      break;
    }
    prev_inertia = inertia;

    // Carry the bounds across the centroid move: the assigned centroid
    // moved by moved[a], every other centroid by at most max_moved.
    for (std::size_t i = 0; i < n; ++i) {
      upper[i] += moved[static_cast<std::size_t>(result.assignment[i])];
      lower[i] -= max_moved;
    }
  }
  for (std::uint64_t c : computed_per_chunk) {
    result.stats.distances_computed += c;
  }
  for (std::uint64_t p : pruned_per_chunk) result.stats.distances_pruned += p;
  return result;
}

// Records one kmeans() call's aggregated work accounting into the metrics
// registry (fa.kmeans.* families; all deterministic).
void record_kmeans_metrics(const IterationStats& stats) {
  static obs::Counter& runs = obs::counter("fa.kmeans.runs");
  static obs::Counter& restarts = obs::counter("fa.kmeans.restarts");
  static obs::Counter& iterations = obs::counter("fa.kmeans.iterations");
  static obs::Counter& computed =
      obs::counter("fa.kmeans.distances_computed");
  static obs::Counter& pruned = obs::counter("fa.kmeans.distances_pruned");
  runs.add(1);
  restarts.add(stats.iterations_per_restart.size());
  iterations.add(static_cast<std::uint64_t>(stats.total_iterations()));
  computed.add(stats.distances_computed);
  pruned.add(stats.distances_pruned);
}

}  // namespace

KMeansResult kmeans(std::span<const std::vector<double>> points,
                    const KMeansOptions& options, Rng& rng) {
  require(options.k >= 1, "kmeans: k must be >= 1");
  require(points.size() >= static_cast<std::size_t>(options.k),
          "kmeans: need at least k points");
  require(options.restarts >= 1, "kmeans: need at least one restart");
  const std::size_t dim = points.front().size();
  require(dim >= 1, "kmeans: zero-dimensional points");
  for (const auto& p : points) {
    require(p.size() == dim, "kmeans: inconsistent point dimensionality");
  }

  // Derive one RNG per restart up front (serially, so the caller's generator
  // advances the same way at any thread count), then fan the restarts out.
  // The winner is picked by (inertia, restart index), which makes the result
  // independent of completion order.
  std::vector<Rng> restart_rngs;
  restart_rngs.reserve(static_cast<std::size_t>(options.restarts));
  for (int r = 0; r < options.restarts; ++r) {
    restart_rngs.push_back(rng.fork(static_cast<std::uint64_t>(r)));
  }
  std::vector<KMeansResult> runs(static_cast<std::size_t>(options.restarts));
  parallel_for(runs.size(), [&](std::size_t r) {
    runs[r] = run_once(points, options, restart_rngs[r]);
  });

  IterationStats stats;
  stats.iterations_per_restart.reserve(runs.size());
  for (const KMeansResult& run : runs) {
    stats.iterations_per_restart.push_back(run.iterations);
    stats.distances_computed += run.stats.distances_computed;
    stats.distances_pruned += run.stats.distances_pruned;
  }
  std::size_t best = 0;
  for (std::size_t r = 1; r < runs.size(); ++r) {
    if (runs[r].inertia < runs[best].inertia) best = r;
  }
  KMeansResult result = std::move(runs[best]);
  result.stats = std::move(stats);
  record_kmeans_metrics(result.stats);
  return result;
}

KMeansResult kmeans(const SparseMatrix& points, const KMeansOptions& options,
                    Rng& rng) {
  require(options.k >= 1, "kmeans: k must be >= 1");
  require(points.rows() >= static_cast<std::size_t>(options.k),
          "kmeans: need at least k points");
  require(options.restarts >= 1, "kmeans: need at least one restart");
  require(points.cols() >= 1, "kmeans: zero-dimensional points");
  for (const auto& anchor : options.anchors) {
    require(anchor.size() == points.cols(),
            "kmeans: anchor dimensionality mismatch");
  }

  // Same restart discipline as the dense overload (restart RNGs forked
  // serially up front, winner picked by (inertia, restart index)), but the
  // restarts themselves run serially: the parallelism lives inside the
  // chunked assignment step, and nested parallel regions are unsupported.
  std::vector<Rng> restart_rngs;
  restart_rngs.reserve(static_cast<std::size_t>(options.restarts));
  for (int r = 0; r < options.restarts; ++r) {
    restart_rngs.push_back(rng.fork(static_cast<std::uint64_t>(r)));
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  IterationStats stats;
  stats.iterations_per_restart.reserve(restart_rngs.size());
  for (std::size_t r = 0; r < restart_rngs.size(); ++r) {
    auto run = run_once_sparse(points, options, restart_rngs[r]);
    stats.iterations_per_restart.push_back(run.iterations);
    stats.distances_computed += run.stats.distances_computed;
    stats.distances_pruned += run.stats.distances_pruned;
    if (r == 0 || run.inertia < best.inertia) best = std::move(run);
  }
  best.stats = std::move(stats);
  record_kmeans_metrics(best.stats);
  return best;
}

}  // namespace fa::stats
