#include "src/stats/distribution.h"

namespace fa::stats {

double Distribution::log_likelihood(std::span<const double> xs) const {
  double total = 0.0;
  for (double x : xs) total += log_pdf(x);
  return total;
}

}  // namespace fa::stats
