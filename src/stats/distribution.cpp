#include "src/stats/distribution.h"

#include <cmath>

namespace fa::stats {

double Distribution::log_likelihood(std::span<const double> xs) const {
  double total = 0.0;
  for (double x : xs) total += log_pdf(x);
  return total;
}

namespace detail {

bool batch_domain_ok(std::span<const double> xs, double lower, bool open) {
  for (double x : xs) {
    if (!std::isfinite(x)) return false;
    if (open ? x <= lower : x < lower) return false;
  }
  return true;
}

}  // namespace detail

}  // namespace fa::stats
