#pragma once

#include "src/stats/distribution.h"

namespace fa::stats {

// Exponential(rate): the memoryless baseline the paper's related work rejects
// for inter-failure times; included so the fitters can demonstrate that
// Gamma/Weibull/LogNormal beat it on likelihood.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);

  double rate() const { return rate_; }

  std::string name() const override { return "exponential"; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  double log_likelihood(std::span<const double> xs) const override;

 private:
  double rate_;
};

}  // namespace fa::stats
