// Dense k-means (k-means++ seeding, Lloyd iterations).
//
// Section III-A of the paper classifies problem tickets by running k-means on
// the description and resolution text; this is the clustering engine behind
// fa::analysis::TicketClassifier.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/stats/sparse_matrix.h"
#include "src/util/rng.h"

namespace fa::stats {

// Work accounting across all restarts of one kmeans() call. All fields are
// deterministic for a fixed input at any thread count: iteration counts and
// Hamerly-prune decisions depend only on per-point state, never on the
// schedule (see docs/PERF.md), so the prune ratio is a stable, continuously
// checkable figure rather than a one-off measurement.
struct IterationStats {
  // Lloyd iterations each restart ran (index = restart index).
  std::vector<int> iterations_per_restart;
  // Point-to-centroid distance evaluations performed in the assignment
  // steps of every restart, and evaluations skipped by the Hamerly bound
  // test (sparse path only; the dense reference path never prunes).
  std::uint64_t distances_computed = 0;
  std::uint64_t distances_pruned = 0;

  // Evaluations a prune-free assignment step would have performed.
  std::uint64_t distances_attempted() const {
    return distances_computed + distances_pruned;
  }
  double prune_ratio() const {
    const std::uint64_t attempted = distances_attempted();
    return attempted == 0
               ? 0.0
               : static_cast<double>(distances_pruned) /
                     static_cast<double>(attempted);
  }
  int total_iterations() const {
    int total = 0;
    for (int i : iterations_per_restart) total += i;
    return total;
  }
};

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  // k x dim
  std::vector<int> assignment;                 // one entry per point
  double inertia = 0.0;                        // sum of squared distances
  int iterations = 0;                          // winning restart's iterations
  bool converged = false;
  // Aggregated over all restarts (not just the winner).
  IterationStats stats;
};

struct KMeansOptions {
  int k = 2;
  int max_iterations = 100;
  // Restarts with different seedings; the lowest-inertia run is returned
  // (ties broken by restart index, so the result is schedule-independent).
  int restarts = 4;
  double tolerance = 1e-7;  // relative inertia improvement to keep iterating
  // Optional deterministic seed centroids (at most k, same dimensionality as
  // the points). Every restart starts from these; k-means++ draws only the
  // remaining k - anchors.size() centroids. Used to pin a centroid onto a
  // known small mode that random seeding would miss (e.g. the ~2% crash
  // tickets among all problem tickets).
  std::vector<std::vector<double>> anchors;
};

// points: n rows, all with the same dimensionality >= 1. Requires n >= k.
KMeansResult kmeans(std::span<const std::vector<double>> points,
                    const KMeansOptions& options, Rng& rng);

// Sparse fast path over a CSR document-term matrix: identical semantics and
// anchor handling to the dense overload (centroids stay dense, anchors are
// dense). Point-to-centroid distances use the
// ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 expansion over only the row's
// nonzeros, and the assignment step keeps Hamerly-style upper/lower bounds
// so points whose nearest centroid cannot have changed skip the full
// centroid scan. The assignment step is chunk-parallel with chunk
// boundaries fixed by n alone and a serial in-order reduction, so the
// result is bit-identical at any thread count (see docs/PERF.md). Restarts
// run serially; the per-point parallelism replaces the dense overload's
// per-restart parallelism.
KMeansResult kmeans(const SparseMatrix& points, const KMeansOptions& options,
                    Rng& rng);

}  // namespace fa::stats
