// Kolmogorov-Smirnov goodness-of-fit machinery used to validate the
// distribution fits of Figs. 3 and 4.
#pragma once

#include <span>

#include "src/stats/distribution.h"

namespace fa::stats {

// One-sample KS statistic: sup_x |F_n(x) - F(x)|.
double ks_statistic(std::span<const double> xs, const Distribution& dist);

// Asymptotic p-value for the one-sample KS test (Kolmogorov distribution),
// evaluated at sqrt(n) * D. Conservative for small n.
double ks_p_value(double statistic, std::size_t n);

struct KsResult {
  double statistic = 0.0;
  double p_value = 0.0;
};

KsResult ks_test(std::span<const double> xs, const Distribution& dist);

}  // namespace fa::stats
