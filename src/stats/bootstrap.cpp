#include "src/stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::stats {

BootstrapInterval bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng, int replicates, double confidence) {
  require(!xs.empty(), "bootstrap_ci: empty sample");
  require(replicates >= 10, "bootstrap_ci: need at least 10 replicates");
  require(confidence > 0.0 && confidence < 1.0,
          "bootstrap_ci: confidence must be in (0, 1)");

  BootstrapInterval result;
  result.point = statistic(xs);

  // One forked RNG per replicate (derived serially so the caller's generator
  // state is schedule-independent); the resamples then run in parallel, each
  // writing its statistic to its own slot.
  std::vector<Rng> replicate_rngs;
  replicate_rngs.reserve(static_cast<std::size_t>(replicates));
  for (int r = 0; r < replicates; ++r) {
    replicate_rngs.push_back(rng.fork(static_cast<std::uint64_t>(r)));
  }
  std::vector<double> stats(static_cast<std::size_t>(replicates));
  const auto n = static_cast<std::int64_t>(xs.size());
  parallel_for(stats.size(), [&](std::size_t r) {
    Rng& replicate_rng = replicate_rngs[r];
    std::vector<double> resample(xs.size());
    for (auto& v : resample) {
      v = xs[static_cast<std::size_t>(replicate_rng.uniform_int(0, n - 1))];
    }
    stats[r] = statistic(resample);
  });
  const double alpha = (1.0 - confidence) / 2.0;
  result.lo = percentile(stats, 100.0 * alpha);
  result.hi = percentile(stats, 100.0 * (1.0 - alpha));
  return result;
}

}  // namespace fa::stats
