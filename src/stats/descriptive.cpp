#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "src/stats/simd.h"
#include "src/util/error.h"

namespace fa::stats {

double mean(std::span<const double> xs) {
  require(!xs.empty(), "mean: empty sample");
  return simd::sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require(xs.size() >= 2, "variance: need at least two observations");
  const double m = mean(xs);
  return simd::sum_sq_dev(xs, m) / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

double min(std::span<const double> xs) {
  require(!xs.empty(), "min: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  require(!xs.empty(), "max: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  require(!xs.empty(), "percentile: empty sample");
  require(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> xs) {
  return percentile(xs, 50.0);
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  require(m != 0.0, "coefficient_of_variation: zero mean");
  return stddev(xs) / m;
}

Summary summarize(std::span<const double> xs) {
  require(!xs.empty(), "summarize: empty sample");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.median = median(xs);
  s.p25 = percentile(xs, 25.0);
  s.p75 = percentile(xs, 75.0);
  s.min = min(xs);
  s.max = max(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  return s;
}

}  // namespace fa::stats
