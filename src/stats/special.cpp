#include "src/stats/special.h"

#include <cmath>
#include <limits>

#include "src/util/error.h"

namespace fa::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series expansion of P(a, x), converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction (Lentz) for Q(a, x), converges quickly for x >= a + 1.
double gamma_q_cf(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  require(a > 0.0, "gamma_p: shape must be positive");
  require(x >= 0.0, "gamma_p: x must be non-negative");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  require(a > 0.0, "gamma_q: shape must be positive");
  require(x >= 0.0, "gamma_q: x must be non-negative");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double gamma_p_inv(double a, double p) {
  require(a > 0.0, "gamma_p_inv: shape must be positive");
  require(p >= 0.0 && p < 1.0, "gamma_p_inv: p must be in [0, 1)");
  if (p == 0.0) return 0.0;

  // Initial guess (Wilson-Hilferty), then safeguarded Newton.
  double x = 0.0;
  {
    const double g = normal_quantile(p);
    const double t = 1.0 - 1.0 / (9.0 * a) + g / (3.0 * std::sqrt(a));
    x = a * t * t * t;
    if (x <= 0.0) x = a * std::exp((std::log(p) + std::lgamma(a + 1.0)) / a);
    if (!(x > 0.0) || !std::isfinite(x)) x = a;
  }
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 200; ++i) {
    const double f = gamma_p(a, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    const double log_pdf = -x + (a - 1.0) * std::log(x) - std::lgamma(a);
    const double pdf = std::exp(log_pdf);
    double next = x - f / (pdf > 0.0 ? pdf : kEpsilon);
    if (!(next > lo) || !(next < hi) || !std::isfinite(next)) {
      next = std::isfinite(hi) ? 0.5 * (lo + hi) : 2.0 * x;
    }
    if (std::fabs(next - x) <= 1e-12 * (std::fabs(x) + 1e-300)) return next;
    x = next;
  }
  return x;
}

double digamma(double x) {
  require(x > 0.0, "digamma: x must be positive");
  double result = 0.0;
  // Recurrence to push x into the asymptotic regime.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // Asymptotic expansion: ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
  return result;
}

double trigamma(double x) {
  require(x > 0.0, "trigamma: x must be positive");
  double result = 0.0;
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 +
                   inv * (0.5 +
                          inv * (1.0 / 6.0 -
                                 inv2 * (1.0 / 30.0 -
                                         inv2 * (1.0 / 42.0 - inv2 / 30.0)))));
  return result;
}

double erf_inv(double y) {
  require(y > -1.0 && y < 1.0, "erf_inv: argument must be in (-1, 1)");
  if (y == 0.0) return 0.0;
  // Winitzki's approximation as the initial guess, refined by Newton steps
  // against std::erf to full double accuracy.
  constexpr double kA = 0.147;
  constexpr double kPi = 3.14159265358979323846;
  const double ln1my2 = std::log1p(-y * y);
  const double term = 2.0 / (kPi * kA) + 0.5 * ln1my2;
  double x = std::sqrt(std::sqrt(term * term - ln1my2 / kA) - term);
  if (y < 0.0) x = -x;
  // Newton refinement: f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) exp(-x^2).
  constexpr double kTwoOverSqrtPi = 1.1283791670955125739;
  for (int i = 0; i < 4; ++i) {
    const double err = std::erf(x) - y;
    x -= err / (kTwoOverSqrtPi * std::exp(-x * x));
  }
  return x;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  require(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0, 1)");
  return std::sqrt(2.0) * erf_inv(2.0 * p - 1.0);
}

}  // namespace fa::stats
