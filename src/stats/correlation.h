// Correlation and trend statistics used to quantify the covariate
// relationships of Sections V and VI (e.g. "failure rates show a positive
// correlation with the number of processors").
#pragma once

#include <span>

namespace fa::stats {

// Pearson product-moment correlation; requires two samples of equal size
// >= 2 with non-zero variance.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

// Spearman rank correlation (Pearson over mid-ranks; ties averaged).
double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys);

// Least-squares slope and intercept of y over x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  // Coefficient of determination.
  double r_squared = 0.0;
};

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

// Kendall-style monotonic-trend score of a series: (concordant -
// discordant) / total pairs, in [-1, 1]. +1 = strictly increasing.
double monotonic_trend(std::span<const double> ys);

}  // namespace fa::stats
