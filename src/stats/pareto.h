#pragma once

#include "src/stats/distribution.h"

namespace fa::stats {

// Pareto(x_m, alpha): heavy-tailed family used by the simulator for the
// long-tailed number of servers per failure incident (Table VI reports 22%
// of incidents spanning up to 34 servers).
class Pareto final : public Distribution {
 public:
  Pareto(double x_min, double alpha);

  double x_min() const { return x_min_; }
  double alpha() const { return alpha_; }

  std::string name() const override { return "pareto"; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double log_likelihood(std::span<const double> xs) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;

 private:
  double x_min_;
  double alpha_;
};

}  // namespace fa::stats
