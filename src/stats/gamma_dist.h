#pragma once

#include "src/stats/distribution.h"

namespace fa::stats {

// Gamma(shape k, scale theta); the family the paper finds best-fitting for
// both PM and VM inter-failure times (VM mean 37.22 days, Fig. 3).
class GammaDist final : public Distribution {
 public:
  GammaDist(double shape, double scale);

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  std::string name() const override { return "gamma"; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double log_likelihood(std::span<const double> xs) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  // Marsaglia-Tsang squeeze method (with boost for shape < 1).
  double sample(Rng& rng) const override;
  double mean() const override { return shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }

 private:
  double shape_;
  double scale_;
};

}  // namespace fa::stats
