#include "src/stats/exponential.h"

#include <cmath>
#include <limits>

#include "src/stats/simd.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::stats {

Exponential::Exponential(double rate) : rate_(rate) {
  require(rate > 0.0, "Exponential: rate must be positive");
}

std::string Exponential::describe() const {
  return "Exponential(rate=" + format_double(rate_, 6) + ")";
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(rate_) - rate_ * x;
}

double Exponential::cdf(double x) const {
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

double Exponential::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Exponential::quantile: p must be in [0, 1)");
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(Rng& rng) const {
  return rng.exponential(rate_);
}

double Exponential::log_likelihood(std::span<const double> xs) const {
  if (!detail::batch_domain_ok(xs, 0.0, /*open=*/false)) {
    return Distribution::log_likelihood(xs);
  }
  // Sufficient statistic: ll = n log(rate) - rate * sum(x).
  const auto n = static_cast<double>(xs.size());
  return n * std::log(rate_) - rate_ * simd::sum(xs);
}

}  // namespace fa::stats
