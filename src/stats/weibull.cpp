#include "src/stats/weibull.h"

#include <cmath>
#include <limits>
#include <vector>

#include "src/stats/simd.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::stats {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0, "Weibull: shape must be positive");
  require(scale > 0.0, "Weibull: scale must be positive");
}

std::string Weibull::describe() const {
  return "Weibull(shape=" + format_double(shape_, 4) +
         ", scale=" + format_double(scale_, 4) + ")";
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  return std::exp(log_pdf(x));
}

double Weibull::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double z = x / scale_;
  return std::log(shape_ / scale_) + (shape_ - 1.0) * std::log(z) -
         std::pow(z, shape_);
}

double Weibull::log_likelihood(std::span<const double> xs) const {
  if (!detail::batch_domain_ok(xs, 0.0, /*open=*/true)) {
    return Distribution::log_likelihood(xs);
  }
  // ll = n log(shape/scale) + (shape-1) sum(log z) - sum(z^shape), z = x/scale.
  // One log per element feeds both sums: z^shape = exp(shape * log z).
  const auto n = static_cast<double>(xs.size());
  std::vector<double> lz(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lz[i] = std::log(xs[i] / scale_);
  const double sum_lz = simd::sum(lz);
  for (double& v : lz) v = std::exp(shape_ * v);
  const double sum_pow = simd::sum(lz);
  return n * std::log(shape_ / scale_) + (shape_ - 1.0) * sum_lz - sum_pow;
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Weibull::quantile: p must be in [0, 1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::sample(Rng& rng) const {
  // Inverse transform: scale * (-ln U)^{1/shape}.
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::exp(std::lgamma(1.0 + 1.0 / shape_));
}

double Weibull::variance() const {
  const double g1 = std::exp(std::lgamma(1.0 + 1.0 / shape_));
  const double g2 = std::exp(std::lgamma(1.0 + 2.0 / shape_));
  return scale_ * scale_ * (g2 - g1 * g1);
}

}  // namespace fa::stats
