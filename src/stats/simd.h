// Vectorized inner kernels for the stats hot paths.
//
// Every kernel exists twice: the dispatched entry point (`simd::sum`, ...)
// and a scalar reference (`simd::scalar::sum`, ...). The dispatched
// implementation is selected at COMPILE time inside simd.cpp — AVX2+FMA on
// x86-64, NEON on aarch64, the scalar reference otherwise — governed by the
// `FA_SIMD` CMake option (OFF compiles every entry point to its scalar
// reference, which is also the portable fallback for hosts without the
// vector ISA). `dispatch_name()` reports which path a binary carries.
//
// Accuracy contract (pinned by tests/test_simd.cpp):
//  - order-insensitive kernels (max-style scans) are bit-identical to the
//    scalar reference;
//  - reassociating reductions (sums, dots, squared distances) agree with
//    the scalar reference to within 1e-12 relative error on well-scaled
//    inputs, and propagate NaN/inf the same way (every input element
//    feeds the accumulator in both paths);
//  - none of the kernels touch shared state, so results are independent
//    of the thread count at every call site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace fa::stats::simd {

// "avx2", "neon" or "scalar" — what the dispatched entry points run.
std::string_view dispatch_name();

// Sum of xs.
double sum(std::span<const double> xs);
// Sum of xs[i]^2.
double sum_sq(std::span<const double> xs);
// Sum of (xs[i] - mu)^2.
double sum_sq_dev(std::span<const double> xs, double mu);
// Dot product (a and b must have equal length).
double dot(std::span<const double> a, std::span<const double> b);
// Sum of (a[i] - b[i])^2 (equal length).
double squared_distance(std::span<const double> a, std::span<const double> b);
// Sparse row . dense vector: sum of values[e] * dense[indices[e]].
// `indices` must be in range of `dense`; AVX2 uses hardware gathers.
double sparse_dot(const double* values, const std::uint32_t* indices,
                  std::size_t n, const double* dense);
// Kolmogorov-Smirnov deviation scan over sorted-model CDF values f[i]:
// max over i of max(|f[i] - i/n|, |(i+1)/n - f[i]|). Exact (max only), so
// bit-identical across paths.
double ks_max_deviation(const double* f, std::size_t n);

// Scalar reference implementations: strict left-to-right accumulation,
// identical to what a FA_SIMD=OFF build dispatches to. Kept unconditionally
// so equivalence tests and the bench's `simd` block can compare paths
// inside one binary.
namespace scalar {
double sum(std::span<const double> xs);
double sum_sq(std::span<const double> xs);
double sum_sq_dev(std::span<const double> xs, double mu);
double dot(std::span<const double> a, std::span<const double> b);
double squared_distance(std::span<const double> a, std::span<const double> b);
double sparse_dot(const double* values, const std::uint32_t* indices,
                  std::size_t n, const double* dense);
double ks_max_deviation(const double* f, std::size_t n);
}  // namespace scalar

}  // namespace fa::stats::simd
