#include "src/stats/hazard_estimate.h"

#include <algorithm>

#include "src/util/error.h"

namespace fa::stats {

std::vector<HazardPoint> nelson_aalen(std::span<const double> durations) {
  require(!durations.empty(), "nelson_aalen: empty sample");
  std::vector<double> sorted(durations.begin(), durations.end());
  std::sort(sorted.begin(), sorted.end());
  require(sorted.front() >= 0.0, "nelson_aalen: negative duration");

  std::vector<HazardPoint> curve;
  double cumulative = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const auto deaths = static_cast<double>(j - i + 1);
    const auto at_risk = static_cast<double>(sorted.size() - i);
    cumulative += deaths / at_risk;
    curve.push_back({sorted[i], cumulative});
    i = j + 1;
  }
  return curve;
}

std::vector<double> binned_hazard_rate(std::span<const double> durations,
                                       std::span<const double> edges) {
  require(edges.size() >= 2, "binned_hazard_rate: need at least two edges");
  for (std::size_t i = 1; i < edges.size(); ++i) {
    require(edges[i] > edges[i - 1],
            "binned_hazard_rate: edges must be increasing");
  }
  const auto curve = nelson_aalen(durations);
  // Cumulative hazard evaluated at x (step function, right-continuous).
  const auto hazard_at = [&](double x) {
    double h = 0.0;
    for (const HazardPoint& p : curve) {
      if (p.time > x) break;
      h = p.cumulative_hazard;
    }
    return h;
  };
  const double max_time = curve.back().time;
  std::vector<double> rates;
  rates.reserve(edges.size() - 1);
  for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
    if (edges[b] >= max_time) {
      rates.push_back(0.0);
      continue;
    }
    const double hi = std::min(edges[b + 1], max_time);
    rates.push_back((hazard_at(hi) - hazard_at(edges[b])) /
                    (edges[b + 1] - edges[b]));
  }
  return rates;
}

double hazard_decrease_factor(std::span<const double> durations,
                              std::span<const double> edges) {
  const auto rates = binned_hazard_rate(durations, edges);
  double first = 0.0, last = 0.0;
  for (double r : rates) {
    if (r <= 0.0) continue;
    if (first == 0.0) first = r;
    last = r;
  }
  return last > 0.0 ? first / last : 0.0;
}

}  // namespace fa::stats
