#include "src/stats/gamma_dist.h"

#include <cmath>
#include <limits>
#include <vector>

#include "src/stats/simd.h"
#include "src/stats/special.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::stats {

GammaDist::GammaDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  require(shape > 0.0, "GammaDist: shape must be positive");
  require(scale > 0.0, "GammaDist: scale must be positive");
}

std::string GammaDist::describe() const {
  return "Gamma(shape=" + format_double(shape_, 4) +
         ", scale=" + format_double(scale_, 4) + ")";
}

double GammaDist::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  return std::exp(log_pdf(x));
}

double GammaDist::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  return (shape_ - 1.0) * std::log(x) - x / scale_ - std::lgamma(shape_) -
         shape_ * std::log(scale_);
}

double GammaDist::log_likelihood(std::span<const double> xs) const {
  if (!detail::batch_domain_ok(xs, 0.0, /*open=*/true)) {
    return Distribution::log_likelihood(xs);
  }
  // ll = (shape-1) sum(log x) - sum(x)/scale - n (lgamma(shape)
  //      + shape log(scale)).
  const auto n = static_cast<double>(xs.size());
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log(xs[i]);
  return (shape_ - 1.0) * simd::sum(lx) - simd::sum(xs) / scale_ -
         n * (std::lgamma(shape_) + shape_ * std::log(scale_));
}

double GammaDist::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return gamma_p(shape_, x / scale_);
}

double GammaDist::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "GammaDist::quantile: p must be in [0, 1)");
  return scale_ * gamma_p_inv(shape_, p);
}

double GammaDist::sample(Rng& rng) const {
  // Marsaglia-Tsang (2000). For shape < 1, sample with shape+1 and apply the
  // boost x * U^{1/shape}.
  double shape = shape_;
  double boost = 1.0;
  if (shape < 1.0) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    boost = std::pow(u, 1.0 / shape);
    shape += 1.0;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0, v = 0.0;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * scale_;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

}  // namespace fa::stats
