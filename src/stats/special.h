// Special functions needed by the distribution layer: regularized incomplete
// gamma (Gamma CDF), digamma/trigamma (Gamma MLE), inverse error function
// (Normal/LogNormal quantiles). Implementations follow the classical series /
// continued-fraction expansions (Abramowitz & Stegun; Numerical Recipes).
#pragma once

namespace fa::stats {

// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
// Domain: a > 0, x >= 0. P is the CDF of Gamma(shape=a, scale=1).
double gamma_p(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

// Inverse of P(a, .) : returns x with P(a, x) = p, for p in [0, 1).
double gamma_p_inv(double a, double p);

// Digamma (psi) function, valid for x > 0.
double digamma(double x);

// Trigamma (psi') function, valid for x > 0.
double trigamma(double x);

// Inverse error function: erf(erf_inv(y)) = y for y in (-1, 1).
double erf_inv(double y);

// Standard normal CDF and quantile.
double normal_cdf(double z);
double normal_quantile(double p);

}  // namespace fa::stats
