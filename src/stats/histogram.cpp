#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::stats {

BinSpec::BinSpec(std::vector<double> edges) : edges_(std::move(edges)) {
  require(edges_.size() >= 2, "BinSpec: need at least two edges");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    require(edges_[i] > edges_[i - 1], "BinSpec: edges must be increasing");
  }
}

BinSpec BinSpec::from_edges(std::vector<double> edges) {
  return BinSpec(std::move(edges));
}

BinSpec BinSpec::linear(double lo, double hi, int count) {
  require(count >= 1, "BinSpec::linear: need at least one bin");
  require(hi > lo, "BinSpec::linear: hi must exceed lo");
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(count) + 1);
  for (int i = 0; i <= count; ++i) {
    edges.push_back(lo + (hi - lo) * static_cast<double>(i) / count);
  }
  return BinSpec(std::move(edges));
}

BinSpec BinSpec::power_of_two(double lo, int count) {
  require(count >= 1, "BinSpec::power_of_two: need at least one bin");
  require(lo > 0.0, "BinSpec::power_of_two: lo must be positive");
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(count) + 1);
  double edge = lo;
  for (int i = 0; i <= count; ++i) {
    edges.push_back(edge);
    edge *= 2.0;
  }
  return BinSpec(std::move(edges));
}

std::optional<std::size_t> BinSpec::index_of(double x) const {
  if (x < edges_.front() || x >= edges_.back()) return std::nullopt;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

double BinSpec::center(std::size_t bin) const {
  require(bin < bin_count(), "BinSpec::center: bin out of range");
  return 0.5 * (edges_[bin] + edges_[bin + 1]);
}

std::string BinSpec::label(std::size_t bin) const {
  require(bin < bin_count(), "BinSpec::label: bin out of range");
  const double lo = edges_[bin];
  const double hi = edges_[bin + 1];
  const bool integral =
      lo == std::floor(lo) && hi == std::floor(hi);
  if (integral && hi - lo == 1.0) {
    return format_double(lo, 0);
  }
  const int prec = integral ? 0 : 2;
  return "[" + format_double(lo, prec) + ", " + format_double(hi, prec) + ")";
}

Histogram::Histogram(BinSpec spec)
    : spec_(std::move(spec)), counts_(spec_.bin_count(), 0) {}

bool Histogram::add(double x) {
  const auto bin = spec_.index_of(x);
  if (!bin) {
    ++out_of_range_;
    return false;
  }
  ++counts_[*bin];
  ++total_;
  return true;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::fraction(std::size_t bin) const {
  require(total_ > 0, "Histogram::fraction: empty histogram");
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

}  // namespace fa::stats
