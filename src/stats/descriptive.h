// Descriptive statistics used throughout the analysis: means, medians,
// percentiles (the paper reports mean + 25th/75th percentile bars in all
// failure-rate figures), and coefficient of variation (Section IV-C).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fa::stats {

double mean(std::span<const double> xs);
// Unbiased sample variance (n-1 denominator); requires n >= 2.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);
// Linear-interpolation percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);
// Coefficient of variation: stddev / mean.
double coefficient_of_variation(std::span<const double> xs);

// The five-number style summary the paper plots as bars with whiskers.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace fa::stats
