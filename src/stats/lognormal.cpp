#include "src/stats/lognormal.h"

#include <cmath>
#include <limits>
#include <vector>

#include "src/stats/simd.h"
#include "src/stats/special.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::stats {

namespace {
constexpr double kLogSqrt2Pi = 0.91893853320467274178;  // ln sqrt(2 pi)
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "LogNormal: sigma must be positive");
}

LogNormal LogNormal::from_mean_median(double mean, double median) {
  require(median > 0.0, "LogNormal::from_mean_median: median must be positive");
  require(mean > median,
          "LogNormal::from_mean_median: mean must exceed median");
  const double mu = std::log(median);
  const double sigma = std::sqrt(2.0 * std::log(mean / median));
  return LogNormal(mu, sigma);
}

std::string LogNormal::describe() const {
  return "LogNormal(mu=" + format_double(mu_, 4) +
         ", sigma=" + format_double(sigma_, 4) + ")";
}

double LogNormal::pdf(double x) const {
  return x <= 0.0 ? 0.0 : std::exp(log_pdf(x));
}

double LogNormal::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x * sigma_) - kLogSqrt2Pi;
}

double LogNormal::log_likelihood(std::span<const double> xs) const {
  if (!detail::batch_domain_ok(xs, 0.0, /*open=*/true)) {
    return Distribution::log_likelihood(xs);
  }
  // ll = -sum((log x - mu)^2) / (2 sigma^2) - sum(log x)
  //      - n (log sigma + log sqrt(2 pi)).
  const auto n = static_cast<double>(xs.size());
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log(xs[i]);
  return -0.5 * simd::sum_sq_dev(lx, mu_) / (sigma_ * sigma_) -
         simd::sum(lx) - n * (std::log(sigma_) + kLogSqrt2Pi);
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "LogNormal::quantile: p must be in [0, 1)");
  if (p == 0.0) return 0.0;
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

}  // namespace fa::stats
