// Empirical CDF — the workhorse behind the paper's Figs. 3, 4 and 6.
#pragma once

#include <span>
#include <vector>

namespace fa::stats {

class Ecdf {
 public:
  // Copies and sorts the sample; requires a non-empty sample.
  explicit Ecdf(std::span<const double> xs);

  // F_n(x) = fraction of observations <= x (right-continuous step function).
  double operator()(double x) const;

  // Empirical quantile (inverse CDF) for p in (0, 1].
  double quantile(double p) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_values() const { return sorted_; }

  // (x, F_n(x)) pairs subsampled to at most max_points, for plotting/reports.
  struct Point {
    double x;
    double p;
  };
  std::vector<Point> curve(std::size_t max_points = 128) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace fa::stats
