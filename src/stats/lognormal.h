#pragma once

#include "src/stats/distribution.h"

namespace fa::stats {

// LogNormal(mu, sigma) of the underlying normal; the family the paper finds
// best-fitting for repair times (Fig. 4). Note median = exp(mu) and
// mean = exp(mu + sigma^2/2), which lets the simulator solve (mu, sigma)
// exactly from the paper's reported per-class mean/median repair times.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  // Solves (mu, sigma) from a target mean and median (mean > median > 0).
  static LogNormal from_mean_median(double mean, double median);

  std::string name() const override { return "lognormal"; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double log_likelihood(std::span<const double> xs) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace fa::stats
