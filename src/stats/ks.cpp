#include "src/stats/ks.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/stats/simd.h"
#include "src/util/error.h"

namespace fa::stats {

double ks_statistic(std::span<const double> xs, const Distribution& dist) {
  require(!xs.empty(), "ks_statistic: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  // Evaluate the model CDF into the sorted buffer in place, then run the
  // vectorized deviation scan (max-only, so bit-identical to scalar).
  for (double& x : sorted) x = dist.cdf(x);
  return simd::ks_max_deviation(sorted.data(), sorted.size());
}

double ks_p_value(double statistic, std::size_t n) {
  require(statistic >= 0.0, "ks_p_value: negative statistic");
  require(n > 0, "ks_p_value: empty sample");
  // Q_KS(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2), with the
  // standard small-sample correction lambda = (sqrt(n)+0.12+0.11/sqrt(n)) D.
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * statistic;
  if (lambda < 1e-8) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> xs, const Distribution& dist) {
  const double d = ks_statistic(xs, dist);
  return {d, ks_p_value(d, xs.size())};
}

}  // namespace fa::stats
