// Percentile bootstrap confidence intervals, used to attach uncertainty to
// the failure-rate and probability estimates reported by the benches.
#pragma once

#include <functional>
#include <span>

#include "src/util/rng.h"

namespace fa::stats {

struct BootstrapInterval {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;
  double hi = 0.0;
};

// statistic must accept any non-empty sample of the same size as xs.
BootstrapInterval bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng, int replicates = 1000, double confidence = 0.95);

}  // namespace fa::stats
