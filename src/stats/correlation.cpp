#include "src/stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/util/error.h"

namespace fa::stats {
namespace {

void check_pair(std::span<const double> xs, std::span<const double> ys,
                const char* who) {
  require(xs.size() == ys.size(), std::string(who) + ": size mismatch");
  require(xs.size() >= 2, std::string(who) + ": need at least two points");
}

// Mid-ranks (ties share the average rank).
std::vector<double> ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> rank(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  return rank;
}

}  // namespace

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  check_pair(xs, ys, "pearson_correlation");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  require(sxx > 0.0 && syy > 0.0,
          "pearson_correlation: zero-variance input");
  return sxy / std::sqrt(sxx * syy);
}

double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys) {
  check_pair(xs, ys, "spearman_correlation");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson_correlation(rx, ry);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  check_pair(xs, ys, "linear_fit");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  require(denom != 0.0, "linear_fit: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    fit.r_squared = 1.0;  // constant y perfectly "explained"
  }
  return fit;
}

double monotonic_trend(std::span<const double> ys) {
  require(ys.size() >= 2, "monotonic_trend: need at least two points");
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    for (std::size_t j = i + 1; j < ys.size(); ++j) {
      if (ys[j] > ys[i]) ++concordant;
      if (ys[j] < ys[i]) ++discordant;
    }
  }
  const auto pairs =
      static_cast<double>(ys.size() * (ys.size() - 1)) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

}  // namespace fa::stats
