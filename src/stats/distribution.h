// Abstract interface for the continuous distributions used in the paper's
// reliability modelling (Section IV fits inter-failure times with Gamma and
// repair times with LogNormal, selected by log-likelihood among
// Weibull/Gamma/LogNormal).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/util/rng.h"

namespace fa::stats {

class Distribution {
 public:
  virtual ~Distribution() = default;

  // Family name, e.g. "gamma".
  virtual std::string name() const = 0;
  // Human-readable parameterization, e.g. "Gamma(shape=0.57, scale=65.2)".
  virtual std::string describe() const = 0;

  virtual double pdf(double x) const = 0;
  virtual double log_pdf(double x) const = 0;
  virtual double cdf(double x) const = 0;
  // Inverse CDF for p in [0, 1).
  virtual double quantile(double p) const = 0;
  virtual double sample(Rng& rng) const = 0;
  virtual double mean() const = 0;
  virtual double variance() const = 0;

  double median() const { return quantile(0.5); }

  // Sum of log_pdf over the sample. Families override this with a batch
  // sufficient-statistic evaluation (vectorized sums over a log buffer);
  // overrides fall back to this element-wise path whenever any input is
  // outside the family's support or non-finite, so NaN/-inf propagation is
  // exactly the per-element behaviour. Batch totals agree with the
  // element-wise sum to within 1e-12 relative (pinned by tests).
  virtual double log_likelihood(std::span<const double> xs) const;
};

using DistributionPtr = std::unique_ptr<Distribution>;

namespace detail {
// True iff every x is finite and above `lower` (strictly when `open`).
// Families use this to gate their batch log-likelihood paths: any
// out-of-domain or non-finite input routes to the element-wise loop.
bool batch_domain_ok(std::span<const double> xs, double lower, bool open);
}  // namespace detail

}  // namespace fa::stats
