// Binning utilities. The paper's Figs. 7-10 bucket machines by a resource
// attribute (CPU count, memory GB, utilization %, ...) and report the failure
// rate per bucket; BinSpec models those bucket schemes (linear, power-of-two,
// or explicit edges) and Histogram accumulates counts/values per bucket.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace fa::stats {

// A partition of the real line into labeled, half-open bins [lo, hi).
class BinSpec {
 public:
  // Bins with explicit edges: edges.size() >= 2, strictly increasing;
  // bin i is [edges[i], edges[i+1]).
  static BinSpec from_edges(std::vector<double> edges);
  // count equal-width bins covering [lo, hi).
  static BinSpec linear(double lo, double hi, int count);
  // Power-of-two bins [lo, 2*lo), [2*lo, 4*lo), ... with count bins.
  static BinSpec power_of_two(double lo, int count);

  // Index of the bin containing x, or nullopt when x is out of range.
  std::optional<std::size_t> index_of(double x) const;
  std::size_t bin_count() const { return edges_.size() - 1; }
  double lower_edge(std::size_t bin) const { return edges_[bin]; }
  double upper_edge(std::size_t bin) const { return edges_[bin + 1]; }
  double center(std::size_t bin) const;
  // "[4, 8)" style label, or "8" when the bin holds a single integer.
  std::string label(std::size_t bin) const;

 private:
  explicit BinSpec(std::vector<double> edges);
  std::vector<double> edges_;
};

// Counting histogram over a BinSpec.
class Histogram {
 public:
  explicit Histogram(BinSpec spec);

  // Returns true if x landed in a bin, false if out of range.
  bool add(double x);
  void add_all(std::span<const double> xs);

  const BinSpec& spec() const { return spec_; }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  std::uint64_t out_of_range() const { return out_of_range_; }
  // count(bin) / total(); requires total() > 0.
  double fraction(std::size_t bin) const;

 private:
  BinSpec spec_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t out_of_range_ = 0;
};

}  // namespace fa::stats
