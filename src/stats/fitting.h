// Maximum-likelihood fitting and model selection.
//
// The paper fits inter-failure times and repair times with Weibull, Gamma and
// LogNormal and picks the family by log-likelihood (Gamma wins for
// inter-failure times, LogNormal for repair times). These routines implement
// the MLE for each family plus the selection step.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/stats/distribution.h"
#include "src/stats/exponential.h"
#include "src/stats/gamma_dist.h"
#include "src/stats/lognormal.h"
#include "src/stats/weibull.h"

namespace fa::stats {

// All samples must be strictly positive; fitters throw fa::Error otherwise.
Exponential fit_exponential(std::span<const double> xs);
LogNormal fit_lognormal(std::span<const double> xs);
// Newton iteration on the shape via digamma/trigamma.
GammaDist fit_gamma(std::span<const double> xs);
// Safeguarded Newton/bisection on the profile likelihood shape equation.
Weibull fit_weibull(std::span<const double> xs);

struct FitResult {
  DistributionPtr dist;
  double log_likelihood = 0.0;
  double aic = 0.0;  // 2k - 2 lnL
  double ks_statistic = 0.0;
};

// Fits the candidate families used in the paper (Exponential, Weibull,
// Gamma, LogNormal) and returns results sorted by descending log-likelihood;
// the first entry is the selected model.
std::vector<FitResult> fit_candidates(std::span<const double> xs);

// Convenience: the best FitResult from fit_candidates.
FitResult fit_best(std::span<const double> xs);

// Least-squares Amdahl fit. Given wall times measured at several thread
// counts (one of which must be 1), estimates the serial fraction s of
// T(p) = T1 * (s + (1 - s) / p), clamped to [0, 1]. Used by the perf
// toolkit's thread-scaling mode and `fa_trace profile` to report how much
// of each stage resists parallelization.
double amdahl_serial_fraction(std::span<const int> threads,
                              std::span<const double> times_ms);

}  // namespace fa::stats
