#include "src/stats/simd.h"

// Compile-time dispatch: the CMake option FA_SIMD defines FA_SIMD_ENABLED
// for this translation unit only (and, on x86-64, adds -mavx2 -mfma to this
// file alone, so the rest of the library stays baseline-ISA). The selected
// vector path is baked into the binary; there is no runtime probing.
#if defined(FA_SIMD_ENABLED) && defined(__AVX2__)
#define FA_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(FA_SIMD_ENABLED) && defined(__ARM_NEON)
#define FA_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fa::stats::simd {

// ---- scalar references: strict left-to-right accumulation ----

namespace scalar {

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double sum_sq(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x * x;
  return s;
}

double sum_sq_dev(std::span<const double> xs, double mu) {
  double s = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    s += d * d;
  }
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double sparse_dot(const double* values, const std::uint32_t* indices,
                  std::size_t n, const double* dense) {
  double s = 0.0;
  for (std::size_t e = 0; e < n; ++e) s += values[e] * dense[indices[e]];
  return s;
}

double ks_max_deviation(const double* f, std::size_t n) {
  const double dn = static_cast<double>(n);
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lower = static_cast<double>(i) / dn;
    const double upper = static_cast<double>(i + 1) / dn;
    const double lo_dev = f[i] > lower ? f[i] - lower : lower - f[i];
    const double hi_dev = upper > f[i] ? upper - f[i] : f[i] - upper;
    const double dev = lo_dev > hi_dev ? lo_dev : hi_dev;
    if (dev > d) d = dev;
  }
  return d;
}

}  // namespace scalar

#if defined(FA_SIMD_AVX2)

std::string_view dispatch_name() { return "avx2"; }

namespace {

// The reductions run two independent accumulator chains (8 elements per
// iteration): FMA latency is several cycles, so a single chain caps the
// loop at one vector op per latency, not per issue slot. The combine order
// (acc0 + acc1, then the fixed-order hadd) depends only on n, never on the
// schedule, so results stay reproducible run to run.

// Fixed-order horizontal reduce: lane0 + lane1 + lane2 + lane3. The lane
// order never depends on input size, so results are reproducible run to run.
inline double hadd(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

inline double hmax(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  const double a = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  const double b = lanes[2] > lanes[3] ? lanes[2] : lanes[3];
  return a > b ? a : b;
}

}  // namespace

double sum(std::span<const double> xs) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(p + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(p + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(p + i));
  }
  double s = hadd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += p[i];
  return s;
}

double sum_sq(std::span<const double> xs) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(p + i);
    const __m256d v1 = _mm256_loadu_pd(p + i + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(p + i);
    acc0 = _mm256_fmadd_pd(v, v, acc0);
  }
  double s = hadd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += p[i] * p[i];
  return s;
}

double sum_sq_dev(std::span<const double> xs, double mu) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  const __m256d m = _mm256_set1_pd(mu);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(p + i), m);
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(p + i + 4), m);
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(p + i), m);
    acc0 = _mm256_fmadd_pd(d, d, acc0);
  }
  double s = hadd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = p[i] - mu;
    s += d * d;
  }
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = a.size();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa + i), _mm256_loadu_pd(pb + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(pa + i + 4),
                           _mm256_loadu_pd(pb + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa + i), _mm256_loadu_pd(pb + i),
                           acc0);
  }
  double s = hadd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += pa[i] * pb[i];
  return s;
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = a.size();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(pa + i), _mm256_loadu_pd(pb + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(pa + i + 4), _mm256_loadu_pd(pb + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(pa + i), _mm256_loadu_pd(pb + i));
    acc0 = _mm256_fmadd_pd(d, d, acc0);
  }
  double s = hadd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = pa[i] - pb[i];
    s += d * d;
  }
  return s;
}

double sparse_dot(const double* values, const std::uint32_t* indices,
                  std::size_t n, const double* dense) {
  // Masked gather with an explicit zero source: same all-lanes load as
  // _mm256_i32gather_pd, but avoids GCC's maybe-uninitialized warning on
  // the undefined-source form.
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t e = 0;
  for (; e + 8 <= n; e += 8) {
    const __m128i idx0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(indices + e));
    const __m128i idx1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(indices + e + 4));
    const __m256d g0 =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), dense, idx0, all, 8);
    const __m256d g1 =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), dense, idx1, all, 8);
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + e), g0, acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(values + e + 4), g1, acc1);
  }
  for (; e + 4 <= n; e += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(indices + e));
    const __m256d gathered =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), dense, idx, all, 8);
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(values + e), gathered, acc0);
  }
  double s = hadd(_mm256_add_pd(acc0, acc1));
  for (; e < n; ++e) s += values[e] * dense[indices[e]];
  return s;
}

double ks_max_deviation(const double* f, std::size_t n) {
  // Per-element math mirrors the scalar reference exactly (same divisions,
  // same |.| and max), and max-reduction is exact, so this path is
  // bit-identical to scalar::ks_max_deviation for finite inputs.
  const double dn = static_cast<double>(n);
  const __m256d vn = _mm256_set1_pd(dn);
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(
      static_cast<long long>(0x7fffffffffffffffULL)));
  __m256d idx = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256d step = _mm256_set1_pd(4.0);
  __m256d best = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d fv = _mm256_loadu_pd(f + i);
    const __m256d lower = _mm256_div_pd(idx, vn);
    const __m256d upper = _mm256_div_pd(_mm256_add_pd(idx, ones), vn);
    const __m256d lo_dev = _mm256_and_pd(_mm256_sub_pd(fv, lower), abs_mask);
    const __m256d hi_dev = _mm256_and_pd(_mm256_sub_pd(upper, fv), abs_mask);
    best = _mm256_max_pd(best, _mm256_max_pd(lo_dev, hi_dev));
    idx = _mm256_add_pd(idx, step);
  }
  double d = hmax(best);
  for (; i < n; ++i) {
    const double lower = static_cast<double>(i) / dn;
    const double upper = static_cast<double>(i + 1) / dn;
    const double lo_dev = f[i] > lower ? f[i] - lower : lower - f[i];
    const double hi_dev = upper > f[i] ? upper - f[i] : f[i] - upper;
    const double dev = lo_dev > hi_dev ? lo_dev : hi_dev;
    if (dev > d) d = dev;
  }
  return d;
}

#elif defined(FA_SIMD_NEON)

std::string_view dispatch_name() { return "neon"; }

namespace {

inline double hadd(float64x2_t v) {
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}

inline double hmax(float64x2_t v) {
  const double a = vgetq_lane_f64(v, 0);
  const double b = vgetq_lane_f64(v, 1);
  return a > b ? a : b;
}

}  // namespace

// Two accumulator chains, mirroring the AVX2 path (combine order is fixed:
// acc0 + acc1, then lane0 + lane1).

double sum(std::span<const double> xs) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_f64(acc0, vld1q_f64(p + i));
    acc1 = vaddq_f64(acc1, vld1q_f64(p + i + 2));
  }
  for (; i + 2 <= n; i += 2) acc0 = vaddq_f64(acc0, vld1q_f64(p + i));
  double s = hadd(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += p[i];
  return s;
}

double sum_sq(std::span<const double> xs) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t v0 = vld1q_f64(p + i);
    const float64x2_t v1 = vld1q_f64(p + i + 2);
    acc0 = vfmaq_f64(acc0, v0, v0);
    acc1 = vfmaq_f64(acc1, v1, v1);
  }
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(p + i);
    acc0 = vfmaq_f64(acc0, v, v);
  }
  double s = hadd(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += p[i] * p[i];
  return s;
}

double sum_sq_dev(std::span<const double> xs, double mu) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  const float64x2_t m = vdupq_n_f64(mu);
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(p + i), m);
    const float64x2_t d1 = vsubq_f64(vld1q_f64(p + i + 2), m);
    acc0 = vfmaq_f64(acc0, d0, d0);
    acc1 = vfmaq_f64(acc1, d1, d1);
  }
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(p + i), m);
    acc0 = vfmaq_f64(acc0, d, d);
  }
  double s = hadd(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = p[i] - mu;
    s += d * d;
  }
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = a.size();
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(pa + i), vld1q_f64(pb + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(pa + i + 2), vld1q_f64(pb + i + 2));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(pa + i), vld1q_f64(pb + i));
  }
  double s = hadd(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += pa[i] * pb[i];
  return s;
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = a.size();
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(pa + i), vld1q_f64(pb + i));
    const float64x2_t d1 =
        vsubq_f64(vld1q_f64(pa + i + 2), vld1q_f64(pb + i + 2));
    acc0 = vfmaq_f64(acc0, d0, d0);
    acc1 = vfmaq_f64(acc1, d1, d1);
  }
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(pa + i), vld1q_f64(pb + i));
    acc0 = vfmaq_f64(acc0, d, d);
  }
  double s = hadd(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = pa[i] - pb[i];
    s += d * d;
  }
  return s;
}

double sparse_dot(const double* values, const std::uint32_t* indices,
                  std::size_t n, const double* dense) {
  // NEON has no gather; pack two gathered lanes per step so the multiply
  // and accumulate still run two-wide.
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t e = 0;
  for (; e + 2 <= n; e += 2) {
    const double g[2] = {dense[indices[e]], dense[indices[e + 1]]};
    acc = vfmaq_f64(acc, vld1q_f64(values + e), vld1q_f64(g));
  }
  double s = hadd(acc);
  for (; e < n; ++e) s += values[e] * dense[indices[e]];
  return s;
}

double ks_max_deviation(const double* f, std::size_t n) {
  const double dn = static_cast<double>(n);
  const float64x2_t vn = vdupq_n_f64(dn);
  const float64x2_t ones = vdupq_n_f64(1.0);
  float64x2_t idx = {0.0, 1.0};
  const float64x2_t step = vdupq_n_f64(2.0);
  float64x2_t best = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t fv = vld1q_f64(f + i);
    const float64x2_t lower = vdivq_f64(idx, vn);
    const float64x2_t upper = vdivq_f64(vaddq_f64(idx, ones), vn);
    const float64x2_t lo_dev = vabsq_f64(vsubq_f64(fv, lower));
    const float64x2_t hi_dev = vabsq_f64(vsubq_f64(upper, fv));
    best = vmaxq_f64(best, vmaxq_f64(lo_dev, hi_dev));
    idx = vaddq_f64(idx, step);
  }
  double d = hmax(best);
  for (; i < n; ++i) {
    const double lower = static_cast<double>(i) / dn;
    const double upper = static_cast<double>(i + 1) / dn;
    const double lo_dev = f[i] > lower ? f[i] - lower : lower - f[i];
    const double hi_dev = upper > f[i] ? upper - f[i] : f[i] - upper;
    const double dev = lo_dev > hi_dev ? lo_dev : hi_dev;
    if (dev > d) d = dev;
  }
  return d;
}

#else  // scalar fallback (FA_SIMD=OFF, or no supported vector ISA)

std::string_view dispatch_name() { return "scalar"; }

double sum(std::span<const double> xs) { return scalar::sum(xs); }
double sum_sq(std::span<const double> xs) { return scalar::sum_sq(xs); }
double sum_sq_dev(std::span<const double> xs, double mu) {
  return scalar::sum_sq_dev(xs, mu);
}
double dot(std::span<const double> a, std::span<const double> b) {
  return scalar::dot(a, b);
}
double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  return scalar::squared_distance(a, b);
}
double sparse_dot(const double* values, const std::uint32_t* indices,
                  std::size_t n, const double* dense) {
  return scalar::sparse_dot(values, indices, n, dense);
}
double ks_max_deviation(const double* f, std::size_t n) {
  return scalar::ks_max_deviation(f, n);
}

#endif

}  // namespace fa::stats::simd
