// Non-parametric hazard estimation for duration samples (inter-failure
// times, repair times): the Nelson-Aalen cumulative hazard and a binned
// hazard-rate view. A decreasing hazard rate is the signature of the
// clustered, non-memoryless failures the paper reports; an exponential
// sample would show a flat one.
#pragma once

#include <span>
#include <vector>

namespace fa::stats {

struct HazardPoint {
  double time = 0.0;               // duration value
  double cumulative_hazard = 0.0;  // H(t) estimate at this value
};

// Nelson-Aalen estimator over a complete (uncensored) duration sample:
// H(t) = sum_{t_i <= t} d_i / n_i with d_i deaths at t_i and n_i at risk.
std::vector<HazardPoint> nelson_aalen(std::span<const double> durations);

// Average hazard rate within [edges[i], edges[i+1]): the increment of the
// cumulative hazard across the bin divided by the bin width. Bins beyond
// the largest observation report 0.
std::vector<double> binned_hazard_rate(std::span<const double> durations,
                                       std::span<const double> edges);

// Convenience: ratio of the average hazard in the first and last populated
// bins; >> 1 indicates a decreasing hazard (clustered failures).
double hazard_decrease_factor(std::span<const double> durations,
                              std::span<const double> edges);

}  // namespace fa::stats
