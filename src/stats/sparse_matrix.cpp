#include "src/stats/sparse_matrix.h"

#include "src/stats/simd.h"
#include "src/util/error.h"

namespace fa::stats {

void SparseMatrix::append_row(std::span<const std::uint32_t> indices,
                              std::span<const double> values) {
  require(indices.size() == values.size(),
          "SparseMatrix::append_row: indices/values size mismatch");
  for (std::size_t e = 0; e < indices.size(); ++e) {
    require(indices[e] < cols_,
            "SparseMatrix::append_row: column index out of range");
    require(e == 0 || indices[e] > indices[e - 1],
            "SparseMatrix::append_row: indices must be strictly increasing");
  }
  col_indices_.insert(col_indices_.end(), indices.begin(), indices.end());
  values_.insert(values_.end(), values.begin(), values.end());
  row_offsets_.push_back(col_indices_.size());
  norms_sq_.push_back(simd::sum_sq(values));
}

SparseMatrix::RowView SparseMatrix::row(std::size_t i) const {
  const std::size_t begin = row_offsets_[i];
  const std::size_t count = row_offsets_[i + 1] - begin;
  return {std::span(col_indices_).subspan(begin, count),
          std::span(values_).subspan(begin, count)};
}

double SparseMatrix::dot_dense(std::size_t i, std::span<const double> y) const {
  const std::size_t begin = row_offsets_[i];
  return simd::sparse_dot(values_.data() + begin, col_indices_.data() + begin,
                          row_offsets_[i + 1] - begin, y.data());
}

std::vector<double> SparseMatrix::row_dense(std::size_t i) const {
  std::vector<double> out(cols_, 0.0);
  for (std::size_t e = row_offsets_[i]; e < row_offsets_[i + 1]; ++e) {
    out[col_indices_[e]] = values_[e];
  }
  return out;
}

std::vector<std::vector<double>> SparseMatrix::to_dense() const {
  std::vector<std::vector<double>> out;
  out.reserve(rows());
  for (std::size_t i = 0; i < rows(); ++i) out.push_back(row_dense(i));
  return out;
}

}  // namespace fa::stats
