#include "src/trace/database.h"

#include <algorithm>
#include <map>

#include "src/util/error.h"

namespace fa::trace {
namespace {

template <typename Row, typename Key>
std::unordered_map<ServerId, std::pair<std::size_t, std::size_t>> build_ranges(
    std::vector<Row>& rows, Key key) {
  const auto less = [&](const Row& a, const Row& b) {
    if (a.server != b.server) return a.server < b.server;
    return key(a) < key(b);
  };
  // Loaders and the simulator emit rows grouped by server already; skip the
  // sort when the order holds.
  if (!std::is_sorted(rows.begin(), rows.end(), less)) {
    std::sort(rows.begin(), rows.end(), less);
  }
  std::unordered_map<ServerId, std::pair<std::size_t, std::size_t>> ranges;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= rows.size(); ++i) {
    if (i == rows.size() || (i > begin && rows[i].server != rows[begin].server)) {
      if (i > begin) ranges[rows[begin].server] = {begin, i};
      begin = i;
    }
  }
  return ranges;
}

}  // namespace

TraceDatabase::TraceDatabase()
    : window_(ticket_window()),
      monitoring_(monitoring_window()),
      onoff_(onoff_window()) {}

void TraceDatabase::set_windows(ObservationWindow ticket,
                                ObservationWindow monitoring,
                                ObservationWindow onoff_tracking) {
  require(!finalized_, "TraceDatabase::set_windows: called after finalize");
  require(ticket.begin < ticket.end && monitoring.begin < monitoring.end &&
              onoff_tracking.begin < onoff_tracking.end,
          "TraceDatabase::set_windows: empty window");
  require(monitoring.begin <= ticket.begin && ticket.end <= monitoring.end,
          "TraceDatabase::set_windows: ticket window outside monitoring "
          "coverage");
  require(ticket.begin <= onoff_tracking.begin &&
              onoff_tracking.end <= ticket.end,
          "TraceDatabase::set_windows: on/off window outside ticket window");
  window_ = ticket;
  monitoring_ = monitoring;
  onoff_ = onoff_tracking;
}

ServerId TraceDatabase::add_server(ServerRecord record) {
  require(!finalized_, "TraceDatabase: mutation after finalize");
  record.id = ServerId{static_cast<std::int32_t>(servers_.size())};
  servers_.push_back(std::move(record));
  return servers_.back().id;
}

TicketId TraceDatabase::add_ticket(Ticket ticket) {
  require(!finalized_, "TraceDatabase: mutation after finalize");
  ticket.id = TicketId{static_cast<std::int32_t>(tickets_.size())};
  tickets_.push_back(std::move(ticket));
  return tickets_.back().id;
}

void TraceDatabase::add_weekly_usage(WeeklyUsage usage) {
  require(!finalized_, "TraceDatabase: mutation after finalize");
  weekly_usage_.push_back(usage);
}

void TraceDatabase::add_power_event(PowerEvent event) {
  require(!finalized_, "TraceDatabase: mutation after finalize");
  power_events_.push_back(event);
}

void TraceDatabase::add_monthly_snapshot(MonthlySnapshot snapshot) {
  require(!finalized_, "TraceDatabase: mutation after finalize");
  snapshots_.push_back(snapshot);
}

void TraceDatabase::reserve(std::size_t servers, std::size_t tickets,
                            std::size_t weekly_usage,
                            std::size_t power_events, std::size_t snapshots) {
  require(!finalized_, "TraceDatabase: mutation after finalize");
  servers_.reserve(servers);
  tickets_.reserve(tickets);
  weekly_usage_.reserve(weekly_usage);
  power_events_.reserve(power_events);
  snapshots_.reserve(snapshots);
}

IncidentId TraceDatabase::new_incident() {
  return IncidentId{next_incident_++};
}

void TraceDatabase::finalize() {
  require(!finalized_, "TraceDatabase: finalize called twice");
  const auto n_servers = static_cast<std::int32_t>(servers_.size());
  const auto check_server = [&](ServerId id, const char* what) {
    require(id.valid() && id.value < n_servers,
            std::string("TraceDatabase::finalize: dangling server id in ") +
                what);
  };
  for (const Ticket& t : tickets_) {
    if (t.is_crash) {
      check_server(t.server, "ticket");
      require(t.incident.valid(),
              "TraceDatabase::finalize: crash ticket without incident");
    }
    require(t.closed >= t.opened,
            "TraceDatabase::finalize: ticket closed before opened");
  }
  for (const WeeklyUsage& u : weekly_usage_) check_server(u.server, "usage");
  for (const PowerEvent& e : power_events_) check_server(e.server, "power");
  for (const MonthlySnapshot& s : snapshots_) {
    check_server(s.server, "snapshot");
    require(s.consolidation >= 1,
            "TraceDatabase::finalize: consolidation must be >= 1");
  }

  usage_ranges_ =
      build_ranges(weekly_usage_, [](const WeeklyUsage& u) { return u.week; });
  power_ranges_ =
      build_ranges(power_events_, [](const PowerEvent& e) { return e.at; });
  snapshot_ranges_ = build_ranges(
      snapshots_, [](const MonthlySnapshot& s) { return s.month; });

  crash_by_server_.clear();
  for (std::size_t i = 0; i < tickets_.size(); ++i) {
    if (tickets_[i].is_crash) {
      crash_by_server_[tickets_[i].server].push_back(i);
    }
  }
  finalized_ = true;
}

void TraceDatabase::require_finalized() const {
  require(finalized_, "TraceDatabase: query before finalize");
}

const ServerRecord& TraceDatabase::server(ServerId id) const {
  require(id.valid() && static_cast<std::size_t>(id.value) < servers_.size(),
          "TraceDatabase::server: invalid id");
  return servers_[static_cast<std::size_t>(id.value)];
}

const Ticket& TraceDatabase::ticket(TicketId id) const {
  require(id.valid() && static_cast<std::size_t>(id.value) < tickets_.size(),
          "TraceDatabase::ticket: invalid id");
  return tickets_[static_cast<std::size_t>(id.value)];
}

std::vector<const Ticket*> TraceDatabase::crash_tickets() const {
  require_finalized();
  std::vector<const Ticket*> out;
  for (const Ticket& t : tickets_) {
    if (t.is_crash) out.push_back(&t);
  }
  return out;
}

std::vector<const Ticket*> TraceDatabase::crash_tickets_for(
    ServerId id) const {
  require_finalized();
  std::vector<const Ticket*> out;
  const auto it = crash_by_server_.find(id);
  if (it == crash_by_server_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t idx : it->second) out.push_back(&tickets_[idx]);
  return out;
}

std::vector<ServerId> TraceDatabase::servers_of(MachineType type) const {
  std::vector<ServerId> out;
  for (const ServerRecord& s : servers_) {
    if (s.type == type) out.push_back(s.id);
  }
  return out;
}

std::vector<ServerId> TraceDatabase::servers_of(MachineType type,
                                                Subsystem sys) const {
  std::vector<ServerId> out;
  for (const ServerRecord& s : servers_) {
    if (s.type == type && s.subsystem == sys) out.push_back(s.id);
  }
  return out;
}

std::size_t TraceDatabase::server_count(MachineType type) const {
  std::size_t n = 0;
  for (const ServerRecord& s : servers_) n += s.type == type;
  return n;
}

std::size_t TraceDatabase::server_count(MachineType type,
                                        Subsystem sys) const {
  std::size_t n = 0;
  for (const ServerRecord& s : servers_) {
    n += s.type == type && s.subsystem == sys;
  }
  return n;
}

std::size_t TraceDatabase::ticket_count(Subsystem sys) const {
  std::size_t n = 0;
  for (const Ticket& t : tickets_) n += t.subsystem == sys;
  return n;
}

std::vector<std::vector<const Ticket*>> TraceDatabase::incidents() const {
  require_finalized();
  std::map<IncidentId, std::vector<const Ticket*>> by_incident;
  for (const Ticket& t : tickets_) {
    if (t.is_crash) by_incident[t.incident].push_back(&t);
  }
  std::vector<std::vector<const Ticket*>> out;
  out.reserve(by_incident.size());
  for (auto& [id, group] : by_incident) out.push_back(std::move(group));
  return out;
}

std::span<const WeeklyUsage> TraceDatabase::weekly_usage_for(
    ServerId id) const {
  require_finalized();
  const auto it = usage_ranges_.find(id);
  if (it == usage_ranges_.end()) return {};
  return {weekly_usage_.data() + it->second.first,
          it->second.second - it->second.first};
}

std::span<const PowerEvent> TraceDatabase::power_events_for(
    ServerId id) const {
  require_finalized();
  const auto it = power_ranges_.find(id);
  if (it == power_ranges_.end()) return {};
  return {power_events_.data() + it->second.first,
          it->second.second - it->second.first};
}

std::span<const MonthlySnapshot> TraceDatabase::snapshots_for(
    ServerId id) const {
  require_finalized();
  const auto it = snapshot_ranges_.find(id);
  if (it == snapshot_ranges_.end()) return {};
  return {snapshots_.data() + it->second.first,
          it->second.second - it->second.first};
}

std::vector<bool> TraceDatabase::power_series_for(
    ServerId id, const ObservationWindow& window) const {
  require_finalized();
  const auto events = power_events_for(id);
  const auto samples =
      static_cast<std::size_t>(window.length() / kMinutesPerSample);
  std::vector<bool> series(samples, true);
  // State before the first event inside the window: last event before it,
  // or "on" when the machine has no events at all.
  bool state = true;
  std::size_t next = 0;
  while (next < events.size() && events[next].at < window.begin) {
    state = events[next].powered_on;
    ++next;
  }
  for (std::size_t i = 0; i < samples; ++i) {
    const TimePoint t =
        window.begin + static_cast<Duration>(i) * kMinutesPerSample;
    while (next < events.size() && events[next].at <= t) {
      state = events[next].powered_on;
      ++next;
    }
    series[i] = state;
  }
  return series;
}

int TraceDatabase::consolidation_at(ServerId id, TimePoint t) const {
  require_finalized();
  const int month = window_.month_index(t);
  if (month < 0) return 0;
  for (const MonthlySnapshot& s : snapshots_for(id)) {
    if (s.month == month) return s.consolidation;
  }
  return 0;
}

}  // namespace fa::trace
