#include "src/trace/csv_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "src/obs/span.h"
#include "src/util/csv.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::trace {
namespace {

std::string bracket_join(const std::vector<std::string>& fields) {
  std::string out = "[";
  out += join(fields, ",");
  out += "]";
  return out;
}

std::string opt_to_field(const std::optional<double>& v, int precision) {
  return v ? format_double(*v, precision) : "";
}

std::string opt_to_field(const std::optional<int>& v) {
  return v ? std::to_string(*v) : "";
}

std::optional<double> field_to_opt_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  return parse_finite_double(s);
}

std::optional<int> field_to_opt_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  return static_cast<int>(parse_int(s));
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_database: cannot open " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_database: cannot open " + path);
  return in;
}

}  // namespace

const std::vector<std::string>& meta_header() {
  static const std::vector<std::string> h = {"window", "begin", "end"};
  return h;
}

const std::vector<std::string>& servers_header() {
  static const std::vector<std::string> h = {
      "id",      "type",       "subsystem", "cpu_count",   "memory_gb",
      "disk_gb", "disk_count", "host_box",  "first_record"};
  return h;
}

const std::vector<std::string>& tickets_header() {
  static const std::vector<std::string> h = {
      "id",     "incident", "server", "subsystem",   "is_crash",
      "true_class", "opened",   "closed", "description", "resolution"};
  return h;
}

const std::vector<std::string>& weekly_usage_header() {
  static const std::vector<std::string> h = {
      "server", "week", "cpu_util", "mem_util", "disk_util", "net_kbps"};
  return h;
}

const std::vector<std::string>& power_events_header() {
  static const std::vector<std::string> h = {"server", "at", "powered_on"};
  return h;
}

const std::vector<std::string>& snapshots_header() {
  static const std::vector<std::string> h = {"server", "month", "box",
                                             "consolidation"};
  return h;
}

void expect_header(CsvReader& reader, const std::vector<std::string>& want,
                   const std::string& path) {
  std::vector<std::string> got;
  require(reader.read_row(got), "missing header in " + path);
  if (got == want) return;
  std::string msg = "unexpected header in " + path + ": expected " +
                    bracket_join(want) + ", got " + bracket_join(got);
  const std::size_t common = std::min(want.size(), got.size());
  std::size_t diff = common;
  for (std::size_t i = 0; i < common; ++i) {
    if (want[i] != got[i]) {
      diff = i;
      break;
    }
  }
  if (diff < common) {
    msg += "; column " + std::to_string(diff) + " is '" + got[diff] +
           "', expected '" + want[diff] + "'";
  } else if (got.size() < want.size()) {
    msg += "; missing column '" + want[got.size()] + "'";
  } else {
    msg += "; extra column '" + got[want.size()] + "'";
  }
  throw Error(msg);
}

void save_database(const TraceDatabase& db, const std::string& directory) {
  obs::Span span("trace.save_database");
  std::filesystem::create_directories(directory);

  {
    // Observation windows travel with the trace: real exports do not share
    // the paper's 2012-2013 spans.
    const std::string path = directory + "/" + kMetaFile;
    auto out = open_out(path);
    CsvWriter w(out, path);
    w.write_row(meta_header());
    const auto window_row = [&](const char* name,
                                const ObservationWindow& window) {
      w.write_row({name, std::to_string(window.begin),
                   std::to_string(window.end)});
    };
    window_row("ticket", db.window());
    window_row("monitoring", db.monitoring());
    window_row("onoff", db.onoff_tracking());
    w.flush();
  }
  {
    const std::string path = directory + "/" + kServersFile;
    auto out = open_out(path);
    CsvWriter w(out, path);
    w.write_row(servers_header());
    for (const ServerRecord& s : db.servers()) {
      w.write_row({std::to_string(s.id.value), std::string(to_string(s.type)),
                   std::to_string(s.subsystem), std::to_string(s.cpu_count),
                   format_double(s.memory_gb, 3), opt_to_field(s.disk_gb, 1),
                   opt_to_field(s.disk_count),
                   s.host_box.valid() ? std::to_string(s.host_box.value) : "",
                   std::to_string(s.first_record)});
    }
    w.flush();
  }
  {
    const std::string path = directory + "/" + kTicketsFile;
    auto out = open_out(path);
    CsvWriter w(out, path);
    w.write_row(tickets_header());
    for (const Ticket& t : db.tickets()) {
      w.write_row({std::to_string(t.id.value),
                   t.incident.valid() ? std::to_string(t.incident.value) : "",
                   t.server.valid() ? std::to_string(t.server.value) : "",
                   std::to_string(t.subsystem), t.is_crash ? "1" : "0",
                   std::string(to_string(t.true_class)),
                   std::to_string(t.opened), std::to_string(t.closed),
                   t.description, t.resolution});
    }
    w.flush();
  }
  {
    const std::string path = directory + "/" + kWeeklyUsageFile;
    auto out = open_out(path);
    CsvWriter w(out, path);
    w.write_row(weekly_usage_header());
    for (const ServerRecord& s : db.servers()) {
      for (const WeeklyUsage& u : db.weekly_usage_for(s.id)) {
        w.write_row({std::to_string(u.server.value), std::to_string(u.week),
                     format_double(u.cpu_util, 4), format_double(u.mem_util, 4),
                     opt_to_field(u.disk_util, 4),
                     opt_to_field(u.net_kbps, 4)});
      }
    }
    w.flush();
  }
  {
    const std::string path = directory + "/" + kPowerEventsFile;
    auto out = open_out(path);
    CsvWriter w(out, path);
    w.write_row(power_events_header());
    for (const ServerRecord& s : db.servers()) {
      for (const PowerEvent& e : db.power_events_for(s.id)) {
        w.write_row({std::to_string(e.server.value), std::to_string(e.at),
                     e.powered_on ? "1" : "0"});
      }
    }
    w.flush();
  }
  {
    const std::string path = directory + "/" + kSnapshotsFile;
    auto out = open_out(path);
    CsvWriter w(out, path);
    w.write_row(snapshots_header());
    for (const ServerRecord& s : db.servers()) {
      for (const MonthlySnapshot& snap : db.snapshots_for(s.id)) {
        w.write_row({std::to_string(snap.server.value),
                     std::to_string(snap.month),
                     snap.box.valid() ? std::to_string(snap.box.value) : "",
                     std::to_string(snap.consolidation)});
      }
    }
    w.flush();
  }
}

TraceDatabase load_database(const std::string& directory) {
  obs::Span span("trace.load_database");
  TraceDatabase db;
  std::vector<std::string> row;
  std::int32_t max_incident = -1;

  // meta.csv is optional for backward/hand-authored traces: absent, the
  // paper's default windows apply.
  if (std::filesystem::exists(directory + "/" + kMetaFile)) {
    const std::string path = directory + "/" + kMetaFile;
    auto in = open_in(path);
    CsvReader r(in);
    expect_header(r, meta_header(), path);
    ObservationWindow ticket = db.window();
    ObservationWindow monitoring = db.monitoring();
    ObservationWindow onoff = db.onoff_tracking();
    while (r.read_row(row)) {
      require(row.size() == 3, "load_database: bad row in " + path);
      const ObservationWindow window{parse_int(row[1]), parse_int(row[2])};
      if (row[0] == "ticket") {
        ticket = window;
      } else if (row[0] == "monitoring") {
        monitoring = window;
      } else if (row[0] == "onoff") {
        onoff = window;
      } else {
        throw Error("load_database: unknown window '" + row[0] + "' in " +
                    path);
      }
    }
    db.set_windows(ticket, monitoring, onoff);
  }

  {
    const std::string path = directory + "/" + kServersFile;
    auto in = open_in(path);
    CsvReader r(in);
    expect_header(r, servers_header(), path);
    while (r.read_row(row)) {
      require(row.size() == 9, "load_database: bad row in " + path);
      ServerRecord s;
      s.type = machine_type_from_string(row[1]);
      s.subsystem = static_cast<Subsystem>(parse_int(row[2]));
      s.cpu_count = static_cast<int>(parse_int(row[3]));
      s.memory_gb = parse_finite_double(row[4]);
      s.disk_gb = field_to_opt_double(row[5]);
      s.disk_count = field_to_opt_int(row[6]);
      if (!row[7].empty()) {
        s.host_box = BoxId{static_cast<std::int32_t>(parse_int(row[7]))};
      }
      s.first_record = parse_int(row[8]);
      const ServerId assigned = db.add_server(s);
      require(assigned.value == static_cast<std::int32_t>(parse_int(row[0])),
              "load_database: non-contiguous server ids in " + path);
    }
  }
  {
    const std::string path = directory + "/" + kTicketsFile;
    auto in = open_in(path);
    CsvReader r(in);
    expect_header(r, tickets_header(), path);
    while (r.read_row(row)) {
      require(row.size() == 10, "load_database: bad row in " + path);
      Ticket t;
      if (!row[1].empty()) {
        t.incident = IncidentId{static_cast<std::int32_t>(parse_int(row[1]))};
        max_incident = std::max(max_incident, t.incident.value);
      }
      if (!row[2].empty()) {
        t.server = ServerId{static_cast<std::int32_t>(parse_int(row[2]))};
      }
      t.subsystem = static_cast<Subsystem>(parse_int(row[3]));
      t.is_crash = parse_int(row[4]) != 0;
      t.true_class = failure_class_from_string(row[5]);
      t.opened = parse_int(row[6]);
      t.closed = parse_int(row[7]);
      t.description = row[8];
      t.resolution = row[9];
      const TicketId assigned = db.add_ticket(std::move(t));
      require(assigned.value == static_cast<std::int32_t>(parse_int(row[0])),
              "load_database: non-contiguous ticket ids in " + path);
    }
  }
  {
    const std::string path = directory + "/" + kWeeklyUsageFile;
    auto in = open_in(path);
    CsvReader r(in);
    expect_header(r, weekly_usage_header(), path);
    while (r.read_row(row)) {
      require(row.size() == 6, "load_database: bad row in " + path);
      WeeklyUsage u;
      u.server = ServerId{static_cast<std::int32_t>(parse_int(row[0]))};
      u.week = static_cast<int>(parse_int(row[1]));
      u.cpu_util = parse_finite_double(row[2]);
      u.mem_util = parse_finite_double(row[3]);
      u.disk_util = field_to_opt_double(row[4]);
      u.net_kbps = field_to_opt_double(row[5]);
      db.add_weekly_usage(u);
    }
  }
  {
    const std::string path = directory + "/" + kPowerEventsFile;
    auto in = open_in(path);
    CsvReader r(in);
    expect_header(r, power_events_header(), path);
    while (r.read_row(row)) {
      require(row.size() == 3, "load_database: bad row in " + path);
      PowerEvent e;
      e.server = ServerId{static_cast<std::int32_t>(parse_int(row[0]))};
      e.at = parse_int(row[1]);
      e.powered_on = parse_int(row[2]) != 0;
      db.add_power_event(e);
    }
  }
  {
    const std::string path = directory + "/" + kSnapshotsFile;
    auto in = open_in(path);
    CsvReader r(in);
    expect_header(r, snapshots_header(), path);
    while (r.read_row(row)) {
      require(row.size() == 4, "load_database: bad row in " + path);
      MonthlySnapshot s;
      s.server = ServerId{static_cast<std::int32_t>(parse_int(row[0]))};
      s.month = static_cast<int>(parse_int(row[1]));
      if (!row[2].empty()) {
        s.box = BoxId{static_cast<std::int32_t>(parse_int(row[2]))};
      }
      s.consolidation = static_cast<int>(parse_int(row[3]));
      db.add_monthly_snapshot(s);
    }
  }

  // Restore the incident counter past the highest loaded id.
  for (std::int32_t i = 0; i <= max_incident; ++i) db.new_incident();
  db.finalize();
  return db;
}

}  // namespace fa::trace
