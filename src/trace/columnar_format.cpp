#include "src/trace/columnar_format.h"

#include <cstring>

#include "src/util/error.h"

namespace fa::trace::format {

namespace {

using columnar::ChunkInfo;
using columnar::ColumnBlockInfo;
using columnar::Encoding;
using columnar::Table;
using columnar::kTableCount;
using columnar::table_schema;

struct PayloadWriter {
  std::vector<std::byte> bytes;

  template <typename T>
  void put(T v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(T));
  }
};

struct PayloadParser {
  const std::byte* p;
  const std::byte* end;
  const std::string& path;

  template <typename T>
  T get() {
    require(p + sizeof(T) <= end, "columnar: " + path + " footer truncated");
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

}  // namespace

void write_frame_header(const FrameHeader& header, std::byte* out) {
  std::memcpy(out, kFrameMagic.data(), 4);
  out[4] = static_cast<std::byte>(header.kind);
  out[5] = static_cast<std::byte>(header.table);
  const std::uint16_t reserved = 0;
  std::memcpy(out + 6, &reserved, 2);
  std::memcpy(out + 8, &header.rows, 4);
  const std::uint32_t pad = 0;
  std::memcpy(out + 12, &pad, 4);
  std::memcpy(out + 16, &header.payload_size, 8);
  std::memcpy(out + 24, &header.checksum, 8);
}

bool parse_frame_header(const std::byte* p, FrameHeader& header) {
  if (std::memcmp(p, kFrameMagic.data(), 4) != 0) return false;
  const auto kind = static_cast<std::uint8_t>(p[4]);
  if (kind > static_cast<std::uint8_t>(FrameKind::kCheckpoint)) return false;
  header.kind = static_cast<FrameKind>(kind);
  header.table = static_cast<std::uint8_t>(p[5]);
  const bool checkpoint = header.kind == FrameKind::kCheckpoint;
  if (checkpoint ? header.table != kNoTable
                 : header.table >= kTableCount) {
    return false;
  }
  std::memcpy(&header.rows, p + 8, 4);
  std::memcpy(&header.payload_size, p + 16, 8);
  std::memcpy(&header.checksum, p + 24, 8);
  if (header.kind == FrameKind::kChunk && header.rows == 0) return false;
  if (header.payload_size == 0) return false;
  return true;
}

std::vector<std::byte> serialize_footer_payload(const FooterImage& image) {
  PayloadWriter f;
  f.put<std::int64_t>(image.window.begin);
  f.put<std::int64_t>(image.window.end);
  f.put<std::int64_t>(image.monitoring.begin);
  f.put<std::int64_t>(image.monitoring.end);
  f.put<std::int64_t>(image.onoff.begin);
  f.put<std::int64_t>(image.onoff.end);
  f.put<std::int32_t>(image.next_incident);
  f.put<std::uint32_t>(image.chunk_rows);
  for (int t = 0; t < kTableCount; ++t) {
    f.put<std::uint64_t>(image.row_counts[t]);
    f.put<std::uint32_t>(
        static_cast<std::uint32_t>(image.directory[t].size()));
    for (const ChunkInfo& chunk : image.directory[t]) {
      f.put<std::uint64_t>(chunk.offset);
      f.put<std::uint64_t>(chunk.size);
      f.put<std::uint32_t>(chunk.rows);
      f.put<std::uint64_t>(chunk.checksum);
      f.put<std::uint32_t>(static_cast<std::uint32_t>(chunk.columns.size()));
      for (const ColumnBlockInfo& block : chunk.columns) {
        f.put<std::uint64_t>(block.offset);
        f.put<std::uint64_t>(block.size);
        f.put<std::uint32_t>(block.extra);
        f.put<std::uint8_t>(block.stats.has_minmax ? 1 : 0);
        f.put<std::int64_t>(block.stats.min);
        f.put<std::int64_t>(block.stats.max);
      }
    }
  }
  return std::move(f.bytes);
}

FooterImage parse_footer_payload(const std::byte* data, std::size_t size,
                                 std::uint64_t data_end,
                                 const std::string& path) {
  FooterImage image;
  PayloadParser p{data, data + size, path};
  image.window.begin = p.get<std::int64_t>();
  image.window.end = p.get<std::int64_t>();
  image.monitoring.begin = p.get<std::int64_t>();
  image.monitoring.end = p.get<std::int64_t>();
  image.onoff.begin = p.get<std::int64_t>();
  image.onoff.end = p.get<std::int64_t>();
  image.next_incident = p.get<std::int32_t>();
  image.chunk_rows = p.get<std::uint32_t>();
  for (int t = 0; t < kTableCount; ++t) {
    const Table table = columnar::kAllTables[t];
    image.row_counts[t] = p.get<std::uint64_t>();
    const std::uint32_t chunk_count = p.get<std::uint32_t>();
    std::uint64_t rows_seen = 0;
    image.directory[t].reserve(chunk_count);
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
      ChunkInfo chunk;
      chunk.offset = p.get<std::uint64_t>();
      chunk.size = p.get<std::uint64_t>();
      chunk.rows = p.get<std::uint32_t>();
      chunk.checksum = p.get<std::uint64_t>();
      const std::uint32_t column_count = p.get<std::uint32_t>();
      require(column_count == table_schema(table).size(),
              "columnar: " + path +
                  " chunk directory column count mismatch");
      require(chunk.offset % 8 == 0 && chunk.offset >= kHeaderBytes &&
                  chunk.size <= data_end &&
                  chunk.offset <= data_end - chunk.size,
              "columnar: " + path + " chunk escapes the data region");
      chunk.columns.resize(column_count);
      for (ColumnBlockInfo& block : chunk.columns) {
        block.offset = p.get<std::uint64_t>();
        block.size = p.get<std::uint64_t>();
        block.extra = p.get<std::uint32_t>();
        block.stats.has_minmax = p.get<std::uint8_t>() != 0;
        block.stats.min = p.get<std::int64_t>();
        block.stats.max = p.get<std::int64_t>();
      }
      rows_seen += chunk.rows;
      image.directory[t].push_back(std::move(chunk));
    }
    require(rows_seen == image.row_counts[t],
            "columnar: " + path +
                " chunk rows disagree with table row count");
  }
  require(p.p == p.end,
          "columnar: " + path + " footer has trailing bytes");
  return image;
}

columnar::ChunkInfo reconstruct_chunk_info(Table table, std::uint32_t rows,
                                           std::span<const std::byte> payload,
                                           const std::string& path) {
  const auto fail = [&](const char* what) -> void {
    throw Error("columnar: " + path + ": cannot reconstruct " +
                std::string(columnar::table_name(table)) + " chunk (" + what +
                ")");
  };

  ChunkInfo info;
  info.offset = 0;
  info.size = payload.size();
  info.rows = rows;
  info.checksum = columnar::fnv1a(payload.data(), payload.size());

  const auto& schema = table_schema(table);
  std::uint64_t cursor = 0;
  const std::uint64_t bitmap_bytes = padded((rows + 7) / 8, 8);
  for (const columnar::ColumnSpec& spec : schema) {
    ColumnBlockInfo block;
    block.offset = cursor;
    switch (spec.encoding) {
      case Encoding::kInt64:
      case Encoding::kFloat64:
        block.size = std::uint64_t{rows} * 8;
        break;
      case Encoding::kInt32:
        block.size = std::uint64_t{rows} * 4;
        break;
      case Encoding::kUInt8:
        block.size = rows;
        break;
      case Encoding::kOptFloat64:
        block.size = bitmap_bytes + std::uint64_t{rows} * 8;
        break;
      case Encoding::kOptInt32:
        block.size = bitmap_bytes + std::uint64_t{rows} * 4;
        break;
      case Encoding::kStringDict: {
        // u32 dict_count | u32 offsets[dict_count+1] | blob (pad 4) |
        // u32 indices[rows]
        if (cursor + 4 > payload.size()) fail("dictionary header truncated");
        std::uint32_t dict_count = 0;
        std::memcpy(&dict_count, payload.data() + cursor, 4);
        const std::uint64_t offsets_end =
            cursor + 4 + (std::uint64_t{dict_count} + 1) * 4;
        if (offsets_end > payload.size()) fail("dictionary offsets truncated");
        std::uint32_t blob_size = 0;
        std::memcpy(&blob_size, payload.data() + offsets_end - 4, 4);
        const std::uint64_t indices_start =
            padded(4 + (std::uint64_t{dict_count} + 1) * 4 + blob_size, 4);
        block.size = indices_start + std::uint64_t{rows} * 4;
        block.extra = dict_count;
        break;
      }
    }
    if (block.offset + block.size > payload.size()) {
      fail("column block escapes the payload");
    }
    cursor = padded(block.offset + block.size, 8);
    info.columns.push_back(block);
  }
  if (cursor != payload.size()) fail("trailing bytes after the last column");
  return info;
}

}  // namespace fa::trace::format
