// Chunked binary columnar codec underneath the ".fac" trace format
// (columnar_io.h). One chunk holds up to N rows of one table as per-column
// blocks: fixed-width numerics stored raw (zero-copy viewable), optional
// columns behind a presence bitmap, and free-text columns dictionary-coded
// per chunk. Every integer-like column carries a min/max footer so readers
// can skip chunks that cannot match a predicate (predicate pushdown,
// filters.h).
//
// Layout of an encoded chunk (all integers little-endian, blocks 8-aligned):
//   column block 0 | pad | column block 1 | pad | ...
// Block payload by encoding:
//   kInt64 / kFloat64   rows x 8 bytes
//   kInt32              rows x 4 bytes
//   kUInt8              rows x 1 byte
//   kOptFloat64         presence bitmap (ceil(rows/8), padded to 8) + rows x 8
//   kOptInt32           presence bitmap (ceil(rows/8), padded to 8) + rows x 4
//   kStringDict         u32 dict_count | u32 offsets[dict_count+1] |
//                       dict bytes (padded to 4) | u32 indices[rows]
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/trace/types.h"
#include "src/util/error.h"
#include "src/util/sim_time.h"

namespace fa::trace::columnar {

static_assert(std::endian::native == std::endian::little,
              "the columnar trace format assumes a little-endian host");

// The five tables of the CSV schema (docs/SCHEMA.md), in file order.
enum class Table : std::uint8_t {
  kServers = 0,
  kTickets = 1,
  kWeeklyUsage = 2,
  kPowerEvents = 3,
  kSnapshots = 4,
};
inline constexpr int kTableCount = 5;
inline constexpr std::array<Table, kTableCount> kAllTables = {
    Table::kServers, Table::kTickets, Table::kWeeklyUsage,
    Table::kPowerEvents, Table::kSnapshots};
std::string_view table_name(Table table);

enum class Encoding : std::uint8_t {
  kInt64 = 0,
  kInt32 = 1,
  kUInt8 = 2,
  kFloat64 = 3,
  kOptFloat64 = 4,
  kOptInt32 = 5,
  kStringDict = 6,
};
std::string_view encoding_name(Encoding encoding);

struct ColumnSpec {
  std::string_view name;
  Encoding encoding;
};

// Column order mirrors the CSV headers minus the regenerable row-index id
// columns (servers.id / tickets.id are their row positions).
const std::vector<ColumnSpec>& table_schema(Table table);

// Column indexes, so pushdown/aggregation code never hard-codes positions.
namespace col {
enum ServersCol { kServerType = 0, kServerSubsystem, kServerCpuCount,
                  kServerMemoryGb, kServerDiskGb, kServerDiskCount,
                  kServerHostBox, kServerFirstRecord };
enum TicketsCol { kTicketIncident = 0, kTicketServer, kTicketSubsystem,
                  kTicketIsCrash, kTicketTrueClass, kTicketOpened,
                  kTicketClosed, kTicketDescription, kTicketResolution };
enum UsageCol { kUsageServer = 0, kUsageWeek, kUsageCpuUtil,
                kUsageMemUtil, kUsageDiskUtil, kUsageNetKbps };
enum PowerCol { kPowerServer = 0, kPowerAt, kPowerOn };
enum SnapshotsCol { kSnapServer = 0, kSnapMonth, kSnapBox,
                    kSnapConsolidation };
}  // namespace col

// Min/max footer of one integer-like column block (over present values for
// optional columns; absent when the chunk holds no present value).
struct ColumnStats {
  bool has_minmax = false;
  std::int64_t min = 0;
  std::int64_t max = 0;
};

// Directory entry of one encoded column block, stored in the file footer.
struct ColumnBlockInfo {
  std::uint64_t offset = 0;  // absolute file offset of the block
  std::uint64_t size = 0;    // unpadded payload size in bytes
  std::uint32_t extra = 0;   // kStringDict: dictionary cardinality
  ColumnStats stats;
};

// Directory entry of one chunk, stored in the file footer.
struct ChunkInfo {
  std::uint64_t offset = 0;     // absolute file offset (8-aligned)
  std::uint64_t size = 0;       // total padded chunk size in bytes
  std::uint32_t rows = 0;
  std::uint64_t checksum = 0;   // FNV-1a over the chunk's bytes
  std::vector<ColumnBlockInfo> columns;
};

// FNV-1a over a byte range (chunk + footer integrity checks).
std::uint64_t fnv1a(const std::byte* data, std::size_t size);

// ---- encoding ----

// Accumulates rows of one table column-wise, then encodes one chunk.
// Typed appends must follow the column's declared encoding; next_row()
// validates that every column advanced exactly once.
class ChunkBuilder {
 public:
  explicit ChunkBuilder(Table table);

  Table table() const { return table_; }
  std::uint32_t rows() const { return rows_; }

  void add_int(std::size_t column, std::int64_t v);      // kInt64/kInt32/kUInt8
  void add_double(std::size_t column, double v);         // kFloat64
  void add_opt_double(std::size_t column, const std::optional<double>& v);
  void add_opt_int(std::size_t column, const std::optional<std::int32_t>& v);
  void add_string(std::size_t column, std::string_view v);  // kStringDict
  void next_row();

  // ---- batch appends (column-at-a-time) ----
  // Fill one column with the next n rows' values in one call: the checks the
  // per-value methods repeat per call happen once per batch. Each column's
  // state is disjoint, so different columns of the same batch may be filled
  // from different threads; finish the batch with a single advance_rows(n)
  // (from one thread) once every column received exactly n values. Dictionary
  // insertion order stays the row order within the column, so the encoded
  // bytes are identical to n per-value appends.
  template <typename Getter>  // Getter(i) -> std::int64_t for rows [0, n)
  void fill_ints(std::size_t column, std::size_t n, Getter&& get) {
    Column& c = batch_column(column);
    const Encoding e = c.encoding;
    require(e == Encoding::kInt64 || e == Encoding::kInt32 ||
                e == Encoding::kUInt8,
            "columnar: fill_ints on a non-integer column");
    c.ints.reserve(c.ints.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t v = get(i);
      if (e == Encoding::kInt32) {
        require(v >= INT32_MIN && v <= INT32_MAX,
                "columnar: value out of int32 range");
      } else if (e == Encoding::kUInt8) {
        require(v >= 0 && v <= UINT8_MAX, "columnar: value out of uint8 range");
      }
      c.ints.push_back(v);
    }
    c.size += n;
  }
  template <typename Getter>  // Getter(i) -> std::string_view for rows [0, n)
  void fill_strings(std::size_t column, std::size_t n, Getter&& get) {
    Column& c = batch_column(column);
    require(c.encoding == Encoding::kStringDict,
            "columnar: fill_strings on a non-dictionary column");
    c.indices.reserve(c.indices.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      c.indices.push_back(dict_slot(c, get(i)));
    }
    c.size += n;
  }
  // Completes a batch of n rows (the batch counterpart of next_row()).
  void advance_rows(std::size_t n);

  // Appends the encoded chunk to `out` (which must be 8-aligned at its
  // current size; encode pads its own tail to 8) and returns the directory
  // entry with offsets relative to the chunk start. Clears the builder for
  // the next chunk.
  ChunkInfo encode(std::vector<std::byte>& out);

 private:
  // Heterogeneous hashing so dictionary probes take a string_view and only
  // materialize a std::string for strings entering the dictionary.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view v) const noexcept {
      return std::hash<std::string_view>{}(v);
    }
  };

  struct Column {
    Encoding encoding;
    std::vector<std::int64_t> ints;      // int-like values (0 when absent)
    std::vector<double> doubles;         // kFloat64 / kOptFloat64
    std::vector<std::uint8_t> present;   // optional columns, 1 per row
    std::vector<std::uint32_t> indices;  // kStringDict row -> dict slot
    std::vector<std::string> dict;       // kStringDict slot -> string
    std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
        dict_lookup;
    std::size_t size = 0;                // rows appended so far
  };

  Column& column_for(std::size_t index, Encoding expected);
  Column& batch_column(std::size_t index);
  static std::uint32_t dict_slot(Column& c, std::string_view v);
  [[noreturn]] void fail_encoding(std::size_t index, Encoding expected) const;
  [[noreturn]] void fail_row_incomplete() const;

  Table table_;
  std::vector<Column> columns_;
  std::uint32_t rows_ = 0;
};

// ---- decoding ----

// Zero-copy view of one decoded column block. Spans point into the chunk's
// backing bytes (an mmap region or the reader's buffer) — the owning
// ChunkView/ChunkReader must outlive them.
class ColumnView {
 public:
  Encoding encoding() const { return encoding_; }
  std::uint32_t rows() const { return rows_; }

  // Generic accessors (valid per encoding; bounds unchecked on the row).
  std::int64_t int_at(std::uint32_t row) const;
  double double_at(std::uint32_t row) const;
  bool present_at(std::uint32_t row) const;  // non-optional: always true
  std::string_view string_at(std::uint32_t row) const;

  // Typed zero-copy spans (throw on encoding mismatch).
  std::span<const std::int64_t> i64_span() const;
  std::span<const std::int32_t> i32_span() const;
  std::span<const std::uint8_t> u8_span() const;
  std::span<const double> f64_span() const;

  std::uint32_t dict_size() const { return dict_count_; }

 private:
  friend class ChunkView;

  Encoding encoding_ = Encoding::kInt64;
  std::uint32_t rows_ = 0;
  const std::byte* values_ = nullptr;    // numeric payload
  const std::byte* bitmap_ = nullptr;    // optional columns
  // kStringDict:
  std::uint32_t dict_count_ = 0;
  const std::uint32_t* dict_offsets_ = nullptr;
  const char* dict_bytes_ = nullptr;
  const std::uint32_t* indices_ = nullptr;
};

// One decoded chunk: per-column views over its backing bytes. When `owned`
// is non-empty the view carries its own copy (buffered reads); otherwise it
// borrows the reader's mapping.
class ChunkView {
 public:
  // `base` must point at the chunk start and stay valid for the view's
  // lifetime; `info.columns[i].offset` are absolute file offsets, and
  // `chunk_file_offset` anchors them.
  ChunkView(Table table, const ChunkInfo& info, const std::byte* base,
            std::vector<std::byte> owned = {});

  Table table() const { return table_; }
  std::uint32_t rows() const { return rows_; }
  std::size_t column_count() const { return columns_.size(); }
  const ColumnView& column(std::size_t index) const;

 private:
  Table table_;
  std::uint32_t rows_ = 0;
  std::vector<ColumnView> columns_;
  std::vector<std::byte> owned_;
};

}  // namespace fa::trace::columnar
