// Flat record types of the three data sources the paper joins:
// the inventory (server configuration) DB, the ticket DB, and the resource
// monitoring DB. Fields the paper reports as unavailable for PMs (disk
// capacity/count, disk/network usage) are std::optional and left empty by
// the simulator for PMs, so the analysis faces the same data gaps.
#pragma once

#include <optional>
#include <string>

#include "src/trace/types.h"
#include "src/util/sim_time.h"

namespace fa::trace {

// Inventory DB row: one machine and its (static) configuration.
struct ServerRecord {
  ServerId id;
  MachineType type = MachineType::kPhysical;
  Subsystem subsystem = 0;

  int cpu_count = 1;       // processors (PM) / vCPUs (VM)
  double memory_gb = 1.0;  // memory size in GB
  // Disk configuration is only recorded for VMs in the paper's dataset.
  std::optional<double> disk_gb;
  std::optional<int> disk_count;

  // VMs: hosting box; PMs are stand-alone (invalid BoxId).
  BoxId host_box;

  // First occurrence in the monitoring DB; the paper's proxy for the VM
  // creation date (Section III-B). Records starting exactly at the DB begin
  // are left-censored and excluded from age analysis.
  TimePoint first_record = 0;
};

// Ticket DB row. `true_class` is simulation ground truth carried for
// classifier evaluation only; the analysis pipeline classifies from the
// description/resolution text exactly as the paper does.
struct Ticket {
  TicketId id;
  IncidentId incident;   // tickets of one failure incident share this
  ServerId server;       // affected machine (valid for crash tickets)
  Subsystem subsystem = 0;
  bool is_crash = false;  // crash tickets vs background problem tickets
  FailureClass true_class = FailureClass::kOther;

  TimePoint opened = 0;  // failure timestamp (ticket issuing time)
  TimePoint closed = 0;  // ticket closing time; repair time = closed - opened

  std::string description;
  std::string resolution;

  Duration repair_time() const { return closed - opened; }
};

// Monitoring DB row: weekly average resource usage for one machine.
// Disk and network usage are only collected for VMs (paper Section V-B.2).
struct WeeklyUsage {
  ServerId server;
  int week = 0;            // index within the ticket observation year
  double cpu_util = 0.0;   // [0, 100] %
  double mem_util = 0.0;   // [0, 100] %
  std::optional<double> disk_util;  // [0, 100] %
  std::optional<double> net_kbps;   // transfer volume
};

// Monitoring DB row: power-state transition reconstructed from the 15-min
// samples (the simulator stores transitions; the 15-min series can be
// expanded on demand).
struct PowerEvent {
  ServerId server;
  TimePoint at = 0;
  bool powered_on = false;  // state after the event
};

// Monitoring DB row: monthly placement snapshot for a VM; `consolidation` is
// the number of VMs on the same hosting box during that month.
struct MonthlySnapshot {
  ServerId server;
  int month = 0;  // index within the ticket observation year
  BoxId box;
  int consolidation = 1;
};

}  // namespace fa::trace
