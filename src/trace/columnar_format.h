// Shared low-level pieces of the ".fac" columnar format (version 2),
// used by the writer/reader (columnar_io.cpp) and by crash recovery
// (recovery.cpp).
//
// v2 file layout (little-endian):
//   "FACT" magic | u32 version                          -- 8-byte header
//   frame | frame | ...                                 -- 8-aligned stream
//   footer payload | u64 size | u64 checksum | "FACT" | u32 version  -- tail
//
// Every stream element between header and final footer is a *frame*: a
// 32-byte self-describing header followed by its payload (padded to 8).
// Two frame kinds exist: data chunks (chunk.h encoding) and periodic
// footer *checkpoints* (a full footer payload snapshot). Frames make a
// footer-less file salvageable: a scanner can walk the stream from byte 8,
// verify each payload against the frame checksum, and stop at the first
// byte that is not a valid frame — everything before it is intact data.
// The final footer is intentionally NOT framed, so a clean tail remains
// the unambiguous "writer finished" marker.
//
// Frame header layout (kFrameBytes = 32):
//   "FACK" (4) | u8 kind | u8 table | u16 reserved |
//   u32 rows | u32 pad | u64 payload_size | u64 checksum(payload, FNV-1a)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/trace/chunk.h"
#include "src/trace/types.h"

namespace fa::trace::format {

inline constexpr std::array<char, 4> kFrameMagic = {'F', 'A', 'C', 'K'};
inline constexpr std::size_t kFrameBytes = 32;
inline constexpr std::size_t kHeaderBytes = 8;  // file magic + version
inline constexpr std::size_t kTailBytes = 24;   // size + checksum + magic

enum class FrameKind : std::uint8_t {
  kChunk = 0,
  kCheckpoint = 1,
};

// Table slot used by checkpoint frames (they belong to no table).
inline constexpr std::uint8_t kNoTable = 0xff;

struct FrameHeader {
  FrameKind kind = FrameKind::kChunk;
  std::uint8_t table = kNoTable;
  std::uint32_t rows = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

// Serializes `header` into exactly kFrameBytes at `out`.
void write_frame_header(const FrameHeader& header, std::byte* out);

// Parses kFrameBytes at `p`. Returns false (without throwing) when the
// bytes are not a structurally plausible frame header — wrong magic,
// unknown kind, or a table byte that matches neither a real table nor
// kNoTable. Payload checksum verification is the caller's job.
bool parse_frame_header(const std::byte* p, FrameHeader& header);

// Rounds `n` up to a multiple of `align` (a power of two).
inline std::uint64_t padded(std::uint64_t n, std::uint64_t align) {
  return (n + align - 1) & ~(align - 1);
}

// ---- footer payload ----

// Everything a footer (or checkpoint) records, independent of where it
// sits in the file. Chunk/column offsets inside `directory` are absolute
// file offsets of the *payloads* (not the frame headers).
struct FooterImage {
  ObservationWindow window;
  ObservationWindow monitoring;
  ObservationWindow onoff;
  std::int32_t next_incident = 0;
  std::uint32_t chunk_rows = 0;
  std::array<std::uint64_t, columnar::kTableCount> row_counts{};
  std::array<std::vector<columnar::ChunkInfo>, columnar::kTableCount>
      directory;
};

std::vector<std::byte> serialize_footer_payload(const FooterImage& image);

// Parses a footer payload. `data_end` bounds the data region chunks may
// occupy (the footer start for a final footer; the checkpoint's own frame
// offset when parsing a checkpoint). `path` labels error messages.
FooterImage parse_footer_payload(const std::byte* data, std::size_t size,
                                 std::uint64_t data_end,
                                 const std::string& path);

// ---- footer-less chunk reconstruction ----

// Rebuilds the per-column directory of one chunk payload from the payload
// bytes alone, using the schema's deterministic block layout (chunk.h).
// Offsets in the returned ChunkInfo are relative to the payload start
// (info.offset == 0) and min/max stats are absent — recovery re-encodes
// salvaged rows, which regenerates stats. Throws fa::Error when the bytes
// do not parse as `rows` rows of `table`.
columnar::ChunkInfo reconstruct_chunk_info(columnar::Table table,
                                           std::uint32_t rows,
                                           std::span<const std::byte> payload,
                                           const std::string& path);

}  // namespace fa::trace::format
