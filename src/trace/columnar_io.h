// Chunked binary columnar persistence of a trace (".fac" files).
//
// One file holds all five tables of the CSV schema as a sequence of
// independent chunks (chunk.h), followed by a footer directory that records
// observation windows, the incident counter, and per-chunk/per-column
// offsets, checksums and min/max statistics. Readers locate everything from
// the footer, so chunks stream out in generation order and analysis can
// skip chunks wholesale via the min/max stats (predicate pushdown,
// filters.h).
//
// File layout (version 2, little-endian; framing in columnar_format.h):
//   "FACT" magic | u32 version                        -- 8-byte header
//   frame | frame | ...    (32-byte "FACK" frame header + 8-aligned payload;
//                           chunks and periodic footer checkpoints)
//   footer payload (directory; columnar_format.h)
//   u64 footer_size | u64 footer_checksum | "FACT" | u32 version  -- tail
//
// The tail duplicates the magic so truncation anywhere — mid-chunk,
// mid-footer, or of the tail itself — is detected before any chunk is
// trusted; the per-frame checksums make a footer-less file salvageable
// (recovery.h). CSV (csv_io.h) remains the canonical interchange format;
// this format exists for out-of-core scale (docs/SCHEMA.md).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/trace/chunk.h"
#include "src/trace/database.h"
#include "src/util/io.h"

namespace fa::trace {

inline constexpr std::array<char, 4> kColumnarMagic = {'F', 'A', 'C', 'T'};
inline constexpr std::uint32_t kColumnarVersion = 2;
inline constexpr std::uint32_t kDefaultChunkRows = 65536;

// True when `path` names an existing regular file starting with the
// columnar magic (used by CLI surfaces to dispatch CSV-dir vs columnar).
bool is_columnar_file(const std::string& path);

// ---- size/compression report (fa_trace convert / info) ----

struct ColumnReport {
  columnar::Table table;
  std::string name;
  columnar::Encoding encoding;
  std::uint64_t bytes = 0;           // payload bytes across all chunks
  std::uint64_t dict_entries = 0;    // kStringDict: summed per-chunk sizes
  std::uint64_t max_dict_entries = 0;  // kStringDict: largest per-chunk dict
};

struct FileReport {
  std::array<std::uint64_t, columnar::kTableCount> rows{};
  std::array<std::uint64_t, columnar::kTableCount> chunks{};
  std::uint64_t data_bytes = 0;    // chunk payloads, padding included
  std::uint64_t footer_bytes = 0;  // directory + tail
  std::vector<ColumnReport> columns;  // table-major, schema order
};

// ---- located read errors / degraded reads ----

// Why a chunk could not be served.
enum class ReadDefect : std::uint8_t {
  kChecksumMismatch = 0,  // payload bytes disagree with the directory
  kTruncated = 1,         // chunk range escapes the file
  kDecodeError = 2,       // checksum passed but blocks failed to parse
  kIoError = 3,           // the underlying read failed permanently
};
inline constexpr int kReadDefectCount = 4;
const char* read_defect_name(ReadDefect defect);

// Error from ChunkReader::chunk() carrying the location of the failure:
// table, chunk index, and absolute file offset/size of the chunk payload.
class ChunkError : public Error {
 public:
  ChunkError(const std::string& path, columnar::Table table,
             std::size_t index, std::uint64_t offset, std::uint64_t size,
             ReadDefect defect, const std::string& detail);

  columnar::Table table() const noexcept { return table_; }
  std::size_t index() const noexcept { return index_; }
  std::uint64_t offset() const noexcept { return offset_; }
  ReadDefect defect() const noexcept { return defect_; }

 private:
  columnar::Table table_;
  std::size_t index_;
  std::uint64_t offset_;
  ReadDefect defect_;
};

// Accumulates what a lenient (degraded) read skipped, per table and per
// defect class, so analysis output can be annotated as partial.
struct DegradedReadReport {
  std::array<std::uint64_t, columnar::kTableCount> chunks_skipped{};
  std::array<std::uint64_t, columnar::kTableCount> rows_skipped{};
  std::array<std::uint64_t, kReadDefectCount> by_defect{};
  // Rows dropped by the lenient loader because they referenced rows in
  // skipped chunks (dangling ticket -> server references).
  std::uint64_t rows_dropped_dangling = 0;

  void record(const ChunkError& error, std::uint32_t rows);
  bool degraded() const;
  std::uint64_t total_rows_skipped() const;
  std::string to_string() const;
};

// ---- streaming writer ----

// Writer knobs. `checkpoint_every_chunks` > 0 embeds a full footer snapshot
// as a checkpoint frame after every N flushed chunks: a crash then loses at
// most the rows after the last checkpoint (at most one chunk per table when
// N == 1; see recovery.h). 0 disables checkpoints (byte-compatible with the
// plain stream, minus durability).
struct WriterOptions {
  std::uint32_t chunk_rows = kDefaultChunkRows;
  std::uint32_t checkpoint_every_chunks = 0;
  io::RetryPolicy retry;
  io::Clock* clock = nullptr;  // nullptr: real clock
};

// Appends records of any table in any order, cutting a chunk whenever a
// table accumulates `chunk_rows` rows; finish() flushes partial chunks and
// writes the footer. Record ids are implicit (row position), so callers
// must append servers/tickets in id order — the simulator and the CSV
// bridge both do. Not thread-safe; the streaming simulator commits from
// its serial sections only, which also keeps files bit-identical at any
// --threads setting.
class ColumnarWriter {
 public:
  explicit ColumnarWriter(const std::string& path,
                          std::uint32_t chunk_rows = kDefaultChunkRows);
  ColumnarWriter(const std::string& path, const WriterOptions& options);
  // Writes through a caller-supplied file (fault injection, tests).
  ColumnarWriter(std::unique_ptr<io::WritableFile> file,
                 const WriterOptions& options = {});
  ~ColumnarWriter();
  ColumnarWriter(const ColumnarWriter&) = delete;
  ColumnarWriter& operator=(const ColumnarWriter&) = delete;

  // Defaults to the paper windows; call before finish() to override.
  void set_windows(ObservationWindow ticket, ObservationWindow monitoring,
                   ObservationWindow onoff_tracking);
  // Records the incident counter persisted in the footer (the next fresh
  // incident id; max referenced id + 1).
  void set_next_incident(std::int32_t next) { next_incident_ = next; }

  void add_server(const ServerRecord& record);
  void add_ticket(const Ticket& ticket);
  // Batch ticket append: encodes the nine ticket columns concurrently on the
  // global ThreadPool (each column's builder state is disjoint, so the bytes
  // are identical to per-ticket appends at any thread count), splitting the
  // batch at chunk boundaries.
  void add_tickets(std::span<const Ticket> tickets);
  void add_weekly_usage(const WeeklyUsage& usage);
  void add_power_event(const PowerEvent& event);
  void add_monthly_snapshot(const MonthlySnapshot& snapshot);

  // Flushes pending chunks and writes the footer + tail. Without this call
  // the file has no valid tail and strict readers reject it (recovery.h
  // salvages it).
  void finish();
  bool finished() const { return finished_; }

  // Valid after finish().
  const FileReport& report() const;

 private:
  void append_rows_metric(columnar::Table table);
  void flush_chunk(columnar::Table table);
  void write_checkpoint();
  void write_footer();

  std::string path_;
  io::CheckedWriter out_;
  std::uint32_t chunk_rows_;
  std::uint32_t checkpoint_every_chunks_;
  std::uint32_t chunks_since_checkpoint_ = 0;
  ObservationWindow window_;
  ObservationWindow monitoring_;
  ObservationWindow onoff_;
  std::int32_t next_incident_ = 0;
  std::vector<columnar::ChunkBuilder> builders_;
  std::array<std::vector<columnar::ChunkInfo>, columnar::kTableCount>
      directory_;
  std::array<std::uint64_t, columnar::kTableCount> row_counts_{};
  std::vector<std::byte> scratch_;
  bool finished_ = false;
  FileReport report_;
};

// ---- reader ----

// Opens a columnar file, validates header/tail/footer, and decodes chunks
// on demand. Prefers mmap (zero-copy column views into the mapping); falls
// back to buffered pread reads when mapping fails or `use_mmap` is false,
// in which case each ChunkView owns a copy of just its chunk — memory
// stays bounded by chunk size either way. Every chunk() call verifies the
// chunk's checksum before returning a view; failures throw ChunkError
// naming the table, chunk index and file offset.
class ChunkReader {
 public:
  explicit ChunkReader(const std::string& path, bool use_mmap = true);
  // Reads through a caller-supplied file (fault injection, tests); always
  // buffered.
  explicit ChunkReader(std::unique_ptr<io::ReadableFile> file,
                       io::RetryPolicy retry = {},
                       io::Clock* clock = nullptr);
  ~ChunkReader();
  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  const std::string& path() const { return path_; }
  bool mmapped() const { return mapping_ != nullptr; }

  const ObservationWindow& window() const { return window_; }
  const ObservationWindow& monitoring() const { return monitoring_; }
  const ObservationWindow& onoff_tracking() const { return onoff_; }
  std::int32_t next_incident() const { return next_incident_; }
  // The writer's chunk size (footer metadata).
  std::uint32_t chunk_rows() const { return chunk_rows_; }

  std::uint64_t row_count(columnar::Table table) const;
  std::size_t chunk_count(columnar::Table table) const;
  // Footer directory entry (min/max stats for pushdown) — no chunk IO.
  const columnar::ChunkInfo& chunk_info(columnar::Table table,
                                        std::size_t index) const;
  // Decodes chunk `index` of `table`, verifying its checksum. Throws
  // ChunkError on damage.
  columnar::ChunkView chunk(columnar::Table table, std::size_t index) const;
  // Lenient variant: a damaged chunk yields std::nullopt instead of
  // throwing, recorded in `report` (which may be nullptr).
  std::optional<columnar::ChunkView> try_chunk(
      columnar::Table table, std::size_t index,
      DegradedReadReport* report) const;

  // Size/compression report reconstructed from the footer (no chunk IO).
  FileReport report() const;

 private:
  void open_footer();

  std::string path_;
  std::uint64_t file_size_ = 0;
  const std::byte* mapping_ = nullptr;  // non-null in mmap mode
  std::uint64_t mapping_size_ = 0;
  std::unique_ptr<io::CheckedReader> reader_;  // buffered mode
  ObservationWindow window_;
  ObservationWindow monitoring_;
  ObservationWindow onoff_;
  std::int32_t next_incident_ = 0;
  std::uint32_t chunk_rows_ = 0;
  std::uint64_t footer_bytes_ = 0;
  std::array<std::vector<columnar::ChunkInfo>, columnar::kTableCount>
      directory_;
  std::array<std::uint64_t, columnar::kTableCount> row_counts_{};
};

// ---- record bridge (shared by the loader, converter and tests) ----

// Appends one record as the builder's next row (schema order, chunk.h).
void append_record(columnar::ChunkBuilder& builder, const ServerRecord& r);
void append_record(columnar::ChunkBuilder& builder, const Ticket& t);
void append_record(columnar::ChunkBuilder& builder, const WeeklyUsage& u);
void append_record(columnar::ChunkBuilder& builder, const PowerEvent& e);
void append_record(columnar::ChunkBuilder& builder, const MonthlySnapshot& s);

// Decodes row `row` of a chunk into a record. `first_row_id` is the file-wide
// row index of the chunk's first row (ids are implicit row positions).
ServerRecord decode_server(const columnar::ChunkView& view, std::uint32_t row,
                           std::int64_t first_row_id);
Ticket decode_ticket(const columnar::ChunkView& view, std::uint32_t row,
                     std::int64_t first_row_id);
WeeklyUsage decode_weekly_usage(const columnar::ChunkView& view,
                                std::uint32_t row);
PowerEvent decode_power_event(const columnar::ChunkView& view,
                              std::uint32_t row);
MonthlySnapshot decode_snapshot(const columnar::ChunkView& view,
                                std::uint32_t row);

// ---- whole-database convenience ----

// Streams every table of a finalized database through `writer` (windows +
// incident counter included); the caller still owns finish().
void write_columnar(const TraceDatabase& db, ColumnarWriter& writer);

// Writes a finalized database to `path`; returns the size report.
FileReport save_columnar(const TraceDatabase& db, const std::string& path,
                         std::uint32_t chunk_rows = kDefaultChunkRows);

// Loads a columnar file into a finalized in-memory database (the
// compatibility path; see analysis/out_of_core.h for the streaming path).
TraceDatabase load_columnar(const std::string& path, bool use_mmap = true);

// Degraded-mode load: skips damaged chunks instead of throwing, recording
// them in `report`. Skipping a chunk of an id-bearing table shifts nothing —
// later chunks keep their original row positions — but rows referencing ids
// inside skipped server chunks are dropped (counted as dangling). The
// servers table keeps only its longest undamaged chunk prefix, because a
// gap there would orphan every later positional id.
TraceDatabase load_columnar_lenient(const std::string& path,
                                    DegradedReadReport& report,
                                    bool use_mmap = true);

}  // namespace fa::trace
