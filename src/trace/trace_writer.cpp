#include "src/trace/trace_writer.h"

#include "src/util/error.h"

namespace fa::trace {

ServerId TraceWriter::add_server(ServerRecord record) {
  const ServerId id{next_server_++};
  record.id = id;
  do_add_server(record);
  return id;
}

TicketId TraceWriter::add_ticket(Ticket ticket) {
  const TicketId id{next_ticket_++};
  ticket.id = id;
  require(ticket.subsystem < kSubsystemCount,
          "TraceWriter: ticket with invalid subsystem");
  ++tickets_by_subsystem_[ticket.subsystem];
  do_add_ticket(std::move(ticket));
  return id;
}

void TraceWriter::add_tickets(std::span<Ticket> tickets) {
  for (Ticket& ticket : tickets) {
    ticket.id = TicketId{next_ticket_++};
    require(ticket.subsystem < kSubsystemCount,
            "TraceWriter: ticket with invalid subsystem");
    ++tickets_by_subsystem_[ticket.subsystem];
  }
  do_add_tickets(tickets);
}

void TraceWriter::do_add_tickets(std::span<Ticket> tickets) {
  for (Ticket& ticket : tickets) do_add_ticket(std::move(ticket));
}

void TraceWriter::add_weekly_usage(const WeeklyUsage& usage) {
  do_add_weekly_usage(usage);
}

void TraceWriter::add_power_event(const PowerEvent& event) {
  do_add_power_event(event);
}

void TraceWriter::add_monthly_snapshot(const MonthlySnapshot& snapshot) {
  do_add_monthly_snapshot(snapshot);
}

IncidentId TraceWriter::new_incident() { return IncidentId{next_incident_++}; }

void DatabaseTraceWriter::do_add_server(const ServerRecord& record) {
  const ServerId assigned = db_.add_server(record);
  require(assigned == record.id,
          "DatabaseTraceWriter: writer/database server id mismatch");
}

void DatabaseTraceWriter::do_add_ticket(Ticket ticket) {
  const TicketId expected = ticket.id;
  const TicketId assigned = db_.add_ticket(std::move(ticket));
  require(assigned == expected,
          "DatabaseTraceWriter: writer/database ticket id mismatch");
}

void DatabaseTraceWriter::do_add_tickets(std::span<Ticket> tickets) {
  for (Ticket& ticket : tickets) do_add_ticket(std::move(ticket));
}

}  // namespace fa::trace
