// CSV persistence of a TraceDatabase: one file per table, mirroring flat
// exports of the paper's ticket / inventory / monitoring databases. This is
// also the adapter surface for running the analysis on real trace exports.
#pragma once

#include <string>

#include "src/trace/database.h"

namespace fa::trace {

// Writes servers.csv, tickets.csv, weekly_usage.csv, power_events.csv and
// snapshots.csv into `directory` (created if missing).
void save_database(const TraceDatabase& db, const std::string& directory);

// Loads the files written by save_database and returns a finalized database.
TraceDatabase load_database(const std::string& directory);

}  // namespace fa::trace
