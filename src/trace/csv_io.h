// CSV persistence of a TraceDatabase: one file per table, mirroring flat
// exports of the paper's ticket / inventory / monitoring databases. This is
// also the adapter surface for running the analysis on real trace exports.
#pragma once

#include <string>
#include <vector>

#include "src/trace/database.h"
#include "src/util/csv.h"

namespace fa::trace {

// Canonical file names and header rows of the on-disk schema, shared by the
// strict loader, the lenient sanitizer (sanitize.h) and the fault injector
// (src/inject/corruptor.h).
inline const std::string kMetaFile = "meta.csv";
inline const std::string kServersFile = "servers.csv";
inline const std::string kTicketsFile = "tickets.csv";
inline const std::string kWeeklyUsageFile = "weekly_usage.csv";
inline const std::string kPowerEventsFile = "power_events.csv";
inline const std::string kSnapshotsFile = "snapshots.csv";

const std::vector<std::string>& meta_header();
const std::vector<std::string>& servers_header();
const std::vector<std::string>& tickets_header();
const std::vector<std::string>& weekly_usage_header();
const std::vector<std::string>& power_events_header();
const std::vector<std::string>& snapshots_header();

// Reads the header row of `reader` and throws fa::Error unless it equals
// `want`; the message names the file, both headers, and the first
// difference (missing/extra/mismatched column).
void expect_header(CsvReader& reader, const std::vector<std::string>& want,
                   const std::string& path);

// Writes servers.csv, tickets.csv, weekly_usage.csv, power_events.csv and
// snapshots.csv into `directory` (created if missing).
void save_database(const TraceDatabase& db, const std::string& directory);

// Loads the files written by save_database and returns a finalized database.
// Strict: the first malformed field, duplicate/non-contiguous id, dangling
// reference or non-finite numeric throws fa::Error. See sanitize.h for the
// lenient, repairing loader.
TraceDatabase load_database(const std::string& directory);

}  // namespace fa::trace
