#include "src/trace/columnar_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/trace/columnar_format.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::trace {
namespace {

using columnar::ChunkInfo;
using columnar::ChunkView;
using columnar::ColumnBlockInfo;
using columnar::Encoding;
using columnar::Table;
using columnar::fnv1a;
using columnar::kTableCount;
using columnar::table_schema;

using format::kFrameBytes;
using format::kHeaderBytes;
using format::kTailBytes;

obs::Counter& chunks_written_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.chunks_written");
  return c;
}
obs::Counter& rows_written_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.rows_written");
  return c;
}
obs::Counter& chunks_read_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.chunks_read");
  return c;
}
obs::Counter& checkpoints_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.checkpoints");
  return c;
}
obs::Counter& chunks_skipped_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.chunks_skipped");
  return c;
}

FileReport build_report(
    const std::array<std::vector<ChunkInfo>, kTableCount>& directory,
    const std::array<std::uint64_t, kTableCount>& row_counts,
    std::uint64_t footer_bytes) {
  FileReport report;
  report.footer_bytes = footer_bytes;
  for (int t = 0; t < kTableCount; ++t) {
    const Table table = columnar::kAllTables[t];
    report.rows[t] = row_counts[t];
    report.chunks[t] = directory[t].size();
    for (const ChunkInfo& chunk : directory[t]) {
      report.data_bytes += chunk.size;
    }
    const auto& schema = table_schema(table);
    for (std::size_t ci = 0; ci < schema.size(); ++ci) {
      ColumnReport col;
      col.table = table;
      col.name = std::string(schema[ci].name);
      col.encoding = schema[ci].encoding;
      for (const ChunkInfo& chunk : directory[t]) {
        const ColumnBlockInfo& block = chunk.columns[ci];
        col.bytes += block.size;
        if (schema[ci].encoding == Encoding::kStringDict) {
          col.dict_entries += block.extra;
          col.max_dict_entries =
              std::max<std::uint64_t>(col.max_dict_entries, block.extra);
        }
      }
      report.columns.push_back(std::move(col));
    }
  }
  return report;
}

format::FooterImage make_footer_image(
    const ObservationWindow& window, const ObservationWindow& monitoring,
    const ObservationWindow& onoff, std::int32_t next_incident,
    std::uint32_t chunk_rows,
    const std::array<std::uint64_t, kTableCount>& row_counts,
    const std::array<std::vector<ChunkInfo>, kTableCount>& directory) {
  format::FooterImage image;
  image.window = window;
  image.monitoring = monitoring;
  image.onoff = onoff;
  image.next_incident = next_incident;
  image.chunk_rows = chunk_rows;
  image.row_counts = row_counts;
  image.directory = directory;
  return image;
}

}  // namespace

bool is_columnar_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == 4 &&
         std::memcmp(magic, kColumnarMagic.data(), 4) == 0;
}

// ---- located read errors / degraded reads ----

const char* read_defect_name(ReadDefect defect) {
  switch (defect) {
    case ReadDefect::kChecksumMismatch:
      return "checksum_mismatch";
    case ReadDefect::kTruncated:
      return "truncated";
    case ReadDefect::kDecodeError:
      return "decode_error";
    case ReadDefect::kIoError:
      return "io_error";
  }
  return "unknown";
}

ChunkError::ChunkError(const std::string& path, columnar::Table table,
                       std::size_t index, std::uint64_t offset,
                       std::uint64_t size, ReadDefect defect,
                       const std::string& detail)
    : Error("columnar: " + path + ": " +
            std::string(columnar::table_name(table)) + " chunk " +
            std::to_string(index) + " at offset " + std::to_string(offset) +
            " (" + std::to_string(size) + " B): " + detail),
      table_(table),
      index_(index),
      offset_(offset),
      defect_(defect) {}

void DegradedReadReport::record(const ChunkError& error, std::uint32_t rows) {
  const auto t = static_cast<std::size_t>(error.table());
  ++chunks_skipped[t];
  rows_skipped[t] += rows;
  ++by_defect[static_cast<std::size_t>(error.defect())];
  chunks_skipped_counter().add(1);
}

bool DegradedReadReport::degraded() const {
  for (int t = 0; t < kTableCount; ++t) {
    if (chunks_skipped[t] != 0) return true;
  }
  return rows_dropped_dangling != 0;
}

std::uint64_t DegradedReadReport::total_rows_skipped() const {
  std::uint64_t total = 0;
  for (int t = 0; t < kTableCount; ++t) total += rows_skipped[t];
  return total;
}

std::string DegradedReadReport::to_string() const {
  if (!degraded()) return "degraded read: clean (no chunks skipped)\n";
  std::string out = "degraded read: PARTIAL DATA\n";
  for (int t = 0; t < kTableCount; ++t) {
    if (chunks_skipped[t] == 0) continue;
    out += "  " + std::string(columnar::table_name(columnar::kAllTables[t])) +
           ": skipped " + std::to_string(chunks_skipped[t]) + " chunk(s), " +
           std::to_string(rows_skipped[t]) + " row(s)\n";
  }
  for (int d = 0; d < kReadDefectCount; ++d) {
    if (by_defect[d] == 0) continue;
    out += "  defect " + std::string(read_defect_name(
                             static_cast<ReadDefect>(d))) +
           ": " + std::to_string(by_defect[d]) + " chunk(s)\n";
  }
  if (rows_dropped_dangling != 0) {
    out += "  dangling rows dropped: " +
           std::to_string(rows_dropped_dangling) + "\n";
  }
  return out;
}

// ---- ColumnarWriter ----

ColumnarWriter::ColumnarWriter(const std::string& path,
                               std::uint32_t chunk_rows)
    : ColumnarWriter(path, WriterOptions{.chunk_rows = chunk_rows}) {}

ColumnarWriter::ColumnarWriter(const std::string& path,
                               const WriterOptions& options)
    : ColumnarWriter(std::make_unique<io::PosixWritableFile>(path), options) {}

ColumnarWriter::ColumnarWriter(std::unique_ptr<io::WritableFile> file,
                               const WriterOptions& options)
    : path_(file->path()),
      out_(std::move(file), options.retry, options.clock),
      chunk_rows_(options.chunk_rows),
      checkpoint_every_chunks_(options.checkpoint_every_chunks),
      window_(ticket_window()),
      monitoring_(monitoring_window()),
      onoff_(onoff_window()) {
  require(chunk_rows_ > 0, "columnar: chunk_rows must be positive");
  builders_.reserve(kTableCount);
  for (Table table : columnar::kAllTables) builders_.emplace_back(table);
  std::array<std::byte, kHeaderBytes> header;
  std::memcpy(header.data(), kColumnarMagic.data(), 4);
  const std::uint32_t version = kColumnarVersion;
  std::memcpy(header.data() + 4, &version, sizeof(version));
  out_.write(header.data(), header.size());
}

ColumnarWriter::~ColumnarWriter() = default;

void ColumnarWriter::set_windows(ObservationWindow ticket,
                                 ObservationWindow monitoring,
                                 ObservationWindow onoff_tracking) {
  require(!finished_, "columnar: set_windows after finish");
  window_ = ticket;
  monitoring_ = monitoring;
  onoff_ = onoff_tracking;
}

void ColumnarWriter::append_rows_metric(Table table) {
  const auto t = static_cast<std::size_t>(table);
  ++row_counts_[t];
  rows_written_counter().add(1);
  if (builders_[t].rows() >= chunk_rows_) flush_chunk(table);
}

void ColumnarWriter::add_server(const ServerRecord& record) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kServers)], record);
  append_rows_metric(Table::kServers);
}

void ColumnarWriter::add_ticket(const Ticket& ticket) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kTickets)], ticket);
  append_rows_metric(Table::kTickets);
}

void ColumnarWriter::add_tickets(std::span<const Ticket> tickets) {
  require(!finished_, "columnar: write after finish");
  using namespace columnar::col;
  const auto t = static_cast<std::size_t>(Table::kTickets);
  columnar::ChunkBuilder& b = builders_[t];
  std::size_t done = 0;
  while (done < tickets.size()) {
    const std::size_t room = chunk_rows_ - b.rows();
    const std::size_t n = std::min(room, tickets.size() - done);
    const std::span<const Ticket> batch = tickets.subspan(done, n);
    // One task per ticket column. Each fills only its own column's state, so
    // scheduling order cannot affect the encoded bytes; dictionary slots
    // still follow row order within each text column.
    parallel_for(9, [&](std::size_t ci) {
      switch (ci) {
        case kTicketIncident:
          b.fill_ints(kTicketIncident, n,
                      [&](std::size_t i) { return batch[i].incident.value; });
          break;
        case kTicketServer:
          b.fill_ints(kTicketServer, n,
                      [&](std::size_t i) { return batch[i].server.value; });
          break;
        case kTicketSubsystem:
          b.fill_ints(kTicketSubsystem, n, [&](std::size_t i) {
            return static_cast<std::int64_t>(batch[i].subsystem);
          });
          break;
        case kTicketIsCrash:
          b.fill_ints(kTicketIsCrash, n, [&](std::size_t i) {
            return static_cast<std::int64_t>(batch[i].is_crash ? 1 : 0);
          });
          break;
        case kTicketTrueClass:
          b.fill_ints(kTicketTrueClass, n, [&](std::size_t i) {
            return static_cast<std::int64_t>(batch[i].true_class);
          });
          break;
        case kTicketOpened:
          b.fill_ints(kTicketOpened, n,
                      [&](std::size_t i) { return batch[i].opened; });
          break;
        case kTicketClosed:
          b.fill_ints(kTicketClosed, n,
                      [&](std::size_t i) { return batch[i].closed; });
          break;
        case kTicketDescription:
          b.fill_strings(kTicketDescription, n, [&](std::size_t i) {
            return std::string_view(batch[i].description);
          });
          break;
        case kTicketResolution:
          b.fill_strings(kTicketResolution, n, [&](std::size_t i) {
            return std::string_view(batch[i].resolution);
          });
          break;
      }
    });
    b.advance_rows(n);
    row_counts_[t] += n;
    rows_written_counter().add(n);
    done += n;
    if (b.rows() >= chunk_rows_) flush_chunk(Table::kTickets);
  }
}

void ColumnarWriter::add_weekly_usage(const WeeklyUsage& usage) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kWeeklyUsage)],
                usage);
  append_rows_metric(Table::kWeeklyUsage);
}

void ColumnarWriter::add_power_event(const PowerEvent& event) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kPowerEvents)],
                event);
  append_rows_metric(Table::kPowerEvents);
}

void ColumnarWriter::add_monthly_snapshot(const MonthlySnapshot& snapshot) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kSnapshots)],
                snapshot);
  append_rows_metric(Table::kSnapshots);
}

void ColumnarWriter::flush_chunk(Table table) {
  const auto t = static_cast<std::size_t>(table);
  if (builders_[t].rows() == 0) return;
  // The chunk payload is encoded right after space reserved for its frame
  // header, so header + payload hit the file in one write.
  scratch_.assign(kFrameBytes, std::byte{0});
  ChunkInfo info = builders_[t].encode(scratch_);
  format::FrameHeader frame;
  frame.kind = format::FrameKind::kChunk;
  frame.table = static_cast<std::uint8_t>(table);
  frame.rows = info.rows;
  frame.payload_size = info.size;
  frame.checksum = info.checksum;
  format::write_frame_header(frame, scratch_.data());
  // encode() offsets are relative to the frame start (payload at
  // kFrameBytes); rebase onto the file position of this frame.
  const std::uint64_t base = out_.offset();
  info.offset += base;
  for (ColumnBlockInfo& block : info.columns) block.offset += base;
  out_.write(scratch_.data(), scratch_.size());
  directory_[t].push_back(std::move(info));
  chunks_written_counter().add(1);
  if (checkpoint_every_chunks_ > 0 &&
      ++chunks_since_checkpoint_ >= checkpoint_every_chunks_) {
    write_checkpoint();
    chunks_since_checkpoint_ = 0;
  }
}

void ColumnarWriter::write_checkpoint() {
  // A checkpoint describes durable state only: rows still buffered in the
  // builders are not on disk yet, so the snapshot counts flushed chunks,
  // not rows added (the footer parser checks directory vs row counts).
  std::array<std::uint64_t, kTableCount> flushed_rows{};
  for (std::size_t t = 0; t < kTableCount; ++t) {
    for (const ChunkInfo& info : directory_[t]) flushed_rows[t] += info.rows;
  }
  const std::vector<std::byte> payload = format::serialize_footer_payload(
      make_footer_image(window_, monitoring_, onoff_, next_incident_,
                        chunk_rows_, flushed_rows, directory_));
  scratch_.assign(kFrameBytes + format::padded(payload.size(), 8),
                  std::byte{0});
  format::FrameHeader frame;
  frame.kind = format::FrameKind::kCheckpoint;
  frame.table = format::kNoTable;
  frame.rows = 0;
  frame.payload_size = payload.size();
  frame.checksum = fnv1a(payload.data(), payload.size());
  format::write_frame_header(frame, scratch_.data());
  std::memcpy(scratch_.data() + kFrameBytes, payload.data(), payload.size());
  out_.write(scratch_.data(), scratch_.size());
  checkpoints_counter().add(1);
}

void ColumnarWriter::finish() {
  require(!finished_, "columnar: finish called twice");
  for (Table table : columnar::kAllTables) flush_chunk(table);
  write_footer();
  out_.flush();
  out_.close();
  finished_ = true;
}

void ColumnarWriter::write_footer() {
  std::vector<std::byte> bytes = format::serialize_footer_payload(
      make_footer_image(window_, monitoring_, onoff_, next_incident_,
                        chunk_rows_, row_counts_, directory_));
  const std::uint64_t footer_size = bytes.size();
  const std::uint64_t footer_checksum = fnv1a(bytes.data(), bytes.size());
  const auto put = [&bytes](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    bytes.insert(bytes.end(), b, b + n);
  };
  put(&footer_size, sizeof(footer_size));
  put(&footer_checksum, sizeof(footer_checksum));
  put(kColumnarMagic.data(), kColumnarMagic.size());
  const std::uint32_t version = kColumnarVersion;
  put(&version, sizeof(version));
  out_.write(bytes.data(), bytes.size());
  report_ = build_report(directory_, row_counts_, footer_size + kTailBytes);
}

const FileReport& ColumnarWriter::report() const {
  require(finished_, "columnar: report only available after finish");
  return report_;
}

// ---- ChunkReader ----

ChunkReader::ChunkReader(const std::string& path, bool use_mmap)
    : path_(path) {
  if (use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
        void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                           PROT_READ, MAP_PRIVATE, fd, 0);
        if (map != MAP_FAILED) {
          mapping_ = static_cast<const std::byte*>(map);
          mapping_size_ = static_cast<std::uint64_t>(st.st_size);
          file_size_ = mapping_size_;
        }
      }
      // The mapping outlives the descriptor.
      ::close(fd);
    }
  }
  if (mapping_ == nullptr) {
    reader_ = std::make_unique<io::CheckedReader>(
        std::make_unique<io::PosixReadableFile>(path));
    file_size_ = reader_->size();
  }
  try {
    open_footer();
  } catch (...) {
    if (mapping_ != nullptr) {
      ::munmap(const_cast<std::byte*>(mapping_), mapping_size_);
      mapping_ = nullptr;
    }
    throw;
  }
}

ChunkReader::ChunkReader(std::unique_ptr<io::ReadableFile> file,
                         io::RetryPolicy retry, io::Clock* clock)
    : path_(file->path()),
      reader_(std::make_unique<io::CheckedReader>(std::move(file), retry,
                                                  clock)) {
  file_size_ = reader_->size();
  open_footer();
}

void ChunkReader::open_footer() {
  const auto read_at = [&](std::uint64_t offset, void* dest,
                           std::size_t size) {
    if (mapping_ != nullptr) {
      std::memcpy(dest, mapping_ + offset, size);
      return;
    }
    reader_->read_at(offset, dest, size);
  };

  require(file_size_ >= kHeaderBytes + kTailBytes,
          "columnar: " + path_ + " is truncated (no header/tail)");

  char magic[4];
  std::uint32_t version = 0;
  read_at(0, magic, 4);
  require(std::memcmp(magic, kColumnarMagic.data(), 4) == 0,
          "columnar: " + path_ + " is not a columnar trace file "
          "(bad magic)");
  read_at(4, &version, sizeof(version));
  require(version == kColumnarVersion,
          "columnar: " + path_ + " has unsupported format version " +
              std::to_string(version) + " (expected " +
              std::to_string(kColumnarVersion) + ")");

  std::uint64_t footer_size = 0;
  std::uint64_t footer_checksum = 0;
  read_at(file_size_ - kTailBytes, &footer_size, sizeof(footer_size));
  read_at(file_size_ - kTailBytes + 8, &footer_checksum,
          sizeof(footer_checksum));
  read_at(file_size_ - kTailBytes + 16, magic, 4);
  read_at(file_size_ - kTailBytes + 20, &version, sizeof(version));
  require(std::memcmp(magic, kColumnarMagic.data(), 4) == 0 &&
              version == kColumnarVersion,
          "columnar: " + path_ + " has a corrupt or truncated tail");
  require(footer_size <= file_size_ - kHeaderBytes - kTailBytes,
          "columnar: " + path_ + " footer escapes the file (truncated?)");
  const std::uint64_t footer_start = file_size_ - kTailBytes - footer_size;
  footer_bytes_ = footer_size + kTailBytes;

  std::vector<std::byte> footer(footer_size);
  read_at(footer_start, footer.data(), footer.size());
  require(fnv1a(footer.data(), footer.size()) == footer_checksum,
          "columnar: " + path_ + " footer checksum mismatch (corrupt)");

  format::FooterImage image = format::parse_footer_payload(
      footer.data(), footer.size(), footer_start, path_);
  window_ = image.window;
  monitoring_ = image.monitoring;
  onoff_ = image.onoff;
  next_incident_ = image.next_incident;
  chunk_rows_ = image.chunk_rows;
  row_counts_ = image.row_counts;
  directory_ = std::move(image.directory);
}

ChunkReader::~ChunkReader() {
  if (mapping_ != nullptr) {
    ::munmap(const_cast<std::byte*>(mapping_), mapping_size_);
  }
}

std::uint64_t ChunkReader::row_count(Table table) const {
  return row_counts_[static_cast<std::size_t>(table)];
}

std::size_t ChunkReader::chunk_count(Table table) const {
  return directory_[static_cast<std::size_t>(table)].size();
}

const ChunkInfo& ChunkReader::chunk_info(Table table,
                                         std::size_t index) const {
  const auto& chunks = directory_[static_cast<std::size_t>(table)];
  require(index < chunks.size(), "columnar: chunk index out of range");
  return chunks[index];
}

ChunkView ChunkReader::chunk(Table table, std::size_t index) const {
  const ChunkInfo& info = chunk_info(table, index);
  chunks_read_counter().add(1);
  if (info.offset > file_size_ || info.size > file_size_ - info.offset) {
    throw ChunkError(path_, table, index, info.offset, info.size,
                     ReadDefect::kTruncated,
                     "chunk escapes the file (truncated)");
  }
  const auto decode = [&](const std::byte* base,
                          std::vector<std::byte> owned) -> ChunkView {
    try {
      return ChunkView(table, info, base, std::move(owned));
    } catch (const Error& e) {
      throw ChunkError(path_, table, index, info.offset, info.size,
                       ReadDefect::kDecodeError, e.what());
    }
  };
  if (mapping_ != nullptr) {
    const std::byte* base = mapping_ + info.offset;
    if (fnv1a(base, info.size) != info.checksum) {
      throw ChunkError(path_, table, index, info.offset, info.size,
                       ReadDefect::kChecksumMismatch,
                       "checksum mismatch (corrupt)");
    }
    return decode(base, {});
  }
  std::vector<std::byte> owned(info.size);
  try {
    reader_->read_at(info.offset, owned.data(), owned.size());
  } catch (const io::IoError& e) {
    throw ChunkError(path_, table, index, info.offset, info.size,
                     ReadDefect::kIoError, e.what());
  }
  if (fnv1a(owned.data(), owned.size()) != info.checksum) {
    throw ChunkError(path_, table, index, info.offset, info.size,
                     ReadDefect::kChecksumMismatch,
                     "checksum mismatch (corrupt)");
  }
  const std::byte* base = owned.data();
  return decode(base, std::move(owned));
}

std::optional<ChunkView> ChunkReader::try_chunk(
    Table table, std::size_t index, DegradedReadReport* report) const {
  try {
    return chunk(table, index);
  } catch (const ChunkError& e) {
    if (report != nullptr) report->record(e, chunk_info(table, index).rows);
    return std::nullopt;
  }
}

FileReport ChunkReader::report() const {
  return build_report(directory_, row_counts_, footer_bytes_);
}

// ---- record bridge ----

void append_record(columnar::ChunkBuilder& b, const ServerRecord& r) {
  using namespace columnar::col;
  b.add_int(kServerType, static_cast<std::int64_t>(r.type));
  b.add_int(kServerSubsystem, r.subsystem);
  b.add_int(kServerCpuCount, r.cpu_count);
  b.add_double(kServerMemoryGb, r.memory_gb);
  b.add_opt_double(kServerDiskGb, r.disk_gb);
  b.add_opt_int(kServerDiskCount, r.disk_count);
  b.add_int(kServerHostBox, r.host_box.value);
  b.add_int(kServerFirstRecord, r.first_record);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const Ticket& t) {
  using namespace columnar::col;
  b.add_int(kTicketIncident, t.incident.value);
  b.add_int(kTicketServer, t.server.value);
  b.add_int(kTicketSubsystem, t.subsystem);
  b.add_int(kTicketIsCrash, t.is_crash ? 1 : 0);
  b.add_int(kTicketTrueClass, static_cast<std::int64_t>(t.true_class));
  b.add_int(kTicketOpened, t.opened);
  b.add_int(kTicketClosed, t.closed);
  b.add_string(kTicketDescription, t.description);
  b.add_string(kTicketResolution, t.resolution);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const WeeklyUsage& u) {
  using namespace columnar::col;
  b.add_int(kUsageServer, u.server.value);
  b.add_int(kUsageWeek, u.week);
  b.add_double(kUsageCpuUtil, u.cpu_util);
  b.add_double(kUsageMemUtil, u.mem_util);
  b.add_opt_double(kUsageDiskUtil, u.disk_util);
  b.add_opt_double(kUsageNetKbps, u.net_kbps);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const PowerEvent& e) {
  using namespace columnar::col;
  b.add_int(kPowerServer, e.server.value);
  b.add_int(kPowerAt, e.at);
  b.add_int(kPowerOn, e.powered_on ? 1 : 0);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const MonthlySnapshot& s) {
  using namespace columnar::col;
  b.add_int(kSnapServer, s.server.value);
  b.add_int(kSnapMonth, s.month);
  b.add_int(kSnapBox, s.box.value);
  b.add_int(kSnapConsolidation, s.consolidation);
  b.next_row();
}

ServerRecord decode_server(const ChunkView& view, std::uint32_t row,
                           std::int64_t first_row_id) {
  using namespace columnar::col;
  ServerRecord r;
  r.id = ServerId{static_cast<std::int32_t>(first_row_id + row)};
  const std::int64_t type = view.column(kServerType).int_at(row);
  require(type >= 0 && type < kMachineTypeCount,
          "columnar: invalid machine type " + std::to_string(type));
  r.type = static_cast<MachineType>(type);
  const std::int64_t sys = view.column(kServerSubsystem).int_at(row);
  require(sys >= 0 && sys < kSubsystemCount,
          "columnar: invalid subsystem " + std::to_string(sys));
  r.subsystem = static_cast<Subsystem>(sys);
  r.cpu_count = static_cast<int>(view.column(kServerCpuCount).int_at(row));
  r.memory_gb = view.column(kServerMemoryGb).double_at(row);
  if (view.column(kServerDiskGb).present_at(row)) {
    r.disk_gb = view.column(kServerDiskGb).double_at(row);
  }
  if (view.column(kServerDiskCount).present_at(row)) {
    r.disk_count =
        static_cast<int>(view.column(kServerDiskCount).int_at(row));
  }
  r.host_box = BoxId{
      static_cast<std::int32_t>(view.column(kServerHostBox).int_at(row))};
  r.first_record = view.column(kServerFirstRecord).int_at(row);
  return r;
}

Ticket decode_ticket(const ChunkView& view, std::uint32_t row,
                     std::int64_t first_row_id) {
  using namespace columnar::col;
  Ticket t;
  t.id = TicketId{static_cast<std::int32_t>(first_row_id + row)};
  t.incident = IncidentId{
      static_cast<std::int32_t>(view.column(kTicketIncident).int_at(row))};
  t.server = ServerId{
      static_cast<std::int32_t>(view.column(kTicketServer).int_at(row))};
  const std::int64_t sys = view.column(kTicketSubsystem).int_at(row);
  require(sys >= 0 && sys < kSubsystemCount,
          "columnar: invalid subsystem " + std::to_string(sys));
  t.subsystem = static_cast<Subsystem>(sys);
  const std::int64_t crash = view.column(kTicketIsCrash).int_at(row);
  require(crash == 0 || crash == 1,
          "columnar: invalid is_crash " + std::to_string(crash));
  t.is_crash = crash != 0;
  const std::int64_t cls = view.column(kTicketTrueClass).int_at(row);
  require(cls >= 0 && cls < kFailureClassCount,
          "columnar: invalid failure class " + std::to_string(cls));
  t.true_class = static_cast<FailureClass>(cls);
  t.opened = view.column(kTicketOpened).int_at(row);
  t.closed = view.column(kTicketClosed).int_at(row);
  t.description = std::string(view.column(kTicketDescription).string_at(row));
  t.resolution = std::string(view.column(kTicketResolution).string_at(row));
  return t;
}

WeeklyUsage decode_weekly_usage(const ChunkView& view, std::uint32_t row) {
  using namespace columnar::col;
  WeeklyUsage u;
  u.server = ServerId{
      static_cast<std::int32_t>(view.column(kUsageServer).int_at(row))};
  u.week = static_cast<int>(view.column(kUsageWeek).int_at(row));
  u.cpu_util = view.column(kUsageCpuUtil).double_at(row);
  u.mem_util = view.column(kUsageMemUtil).double_at(row);
  if (view.column(kUsageDiskUtil).present_at(row)) {
    u.disk_util = view.column(kUsageDiskUtil).double_at(row);
  }
  if (view.column(kUsageNetKbps).present_at(row)) {
    u.net_kbps = view.column(kUsageNetKbps).double_at(row);
  }
  return u;
}

PowerEvent decode_power_event(const ChunkView& view, std::uint32_t row) {
  using namespace columnar::col;
  PowerEvent e;
  e.server = ServerId{
      static_cast<std::int32_t>(view.column(kPowerServer).int_at(row))};
  e.at = view.column(kPowerAt).int_at(row);
  e.powered_on = view.column(kPowerOn).int_at(row) != 0;
  return e;
}

MonthlySnapshot decode_snapshot(const ChunkView& view, std::uint32_t row) {
  using namespace columnar::col;
  MonthlySnapshot s;
  s.server = ServerId{
      static_cast<std::int32_t>(view.column(kSnapServer).int_at(row))};
  s.month = static_cast<int>(view.column(kSnapMonth).int_at(row));
  s.box = BoxId{
      static_cast<std::int32_t>(view.column(kSnapBox).int_at(row))};
  s.consolidation =
      static_cast<int>(view.column(kSnapConsolidation).int_at(row));
  return s;
}

// ---- whole-database convenience ----

void write_columnar(const TraceDatabase& db, ColumnarWriter& writer) {
  writer.set_windows(db.window(), db.monitoring(), db.onoff_tracking());
  std::int32_t next_incident = 0;
  for (const Ticket& t : db.tickets()) {
    next_incident = std::max(next_incident, t.incident.value + 1);
  }
  writer.set_next_incident(next_incident);
  for (const ServerRecord& s : db.servers()) writer.add_server(s);
  writer.add_tickets(db.tickets());
  for (const ServerRecord& s : db.servers()) {
    for (const WeeklyUsage& u : db.weekly_usage_for(s.id)) {
      writer.add_weekly_usage(u);
    }
  }
  for (const ServerRecord& s : db.servers()) {
    for (const PowerEvent& e : db.power_events_for(s.id)) {
      writer.add_power_event(e);
    }
  }
  for (const ServerRecord& s : db.servers()) {
    for (const MonthlySnapshot& m : db.snapshots_for(s.id)) {
      writer.add_monthly_snapshot(m);
    }
  }
}

FileReport save_columnar(const TraceDatabase& db, const std::string& path,
                         std::uint32_t chunk_rows) {
  obs::Span span("trace.columnar.save");
  ColumnarWriter writer(path, chunk_rows);
  write_columnar(db, writer);
  writer.finish();
  return writer.report();
}

TraceDatabase load_columnar(const std::string& path, bool use_mmap) {
  obs::Span span("trace.columnar.load");
  ChunkReader reader(path, use_mmap);
  TraceDatabase db;
  db.set_windows(reader.window(), reader.monitoring(),
                 reader.onoff_tracking());
  db.reserve(reader.row_count(Table::kServers),
             reader.row_count(Table::kTickets),
             reader.row_count(Table::kWeeklyUsage),
             reader.row_count(Table::kPowerEvents),
             reader.row_count(Table::kSnapshots));

  std::int64_t first_row = 0;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kServers); ++i) {
    const ChunkView view = reader.chunk(Table::kServers, i);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      db.add_server(decode_server(view, r, first_row));
    }
    first_row += view.rows();
  }
  first_row = 0;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kTickets); ++i) {
    using namespace columnar::col;
    const columnar::ChunkInfo& info = reader.chunk_info(Table::kTickets, i);
    // The footer min/max stats validate whole chunks of enum-like columns
    // at once; fall back to per-row checks only when a chunk lacks stats.
    const auto in_range = [&](std::size_t column, std::int64_t lo,
                              std::int64_t hi) {
      const columnar::ColumnStats& stats = info.columns[column].stats;
      return stats.has_minmax && stats.min >= lo && stats.max <= hi;
    };
    if (!in_range(kTicketSubsystem, 0, kSubsystemCount - 1) ||
        !in_range(kTicketIsCrash, 0, 1) ||
        !in_range(kTicketTrueClass, 0, kFailureClassCount - 1)) {
      const ChunkView view = reader.chunk(Table::kTickets, i);
      for (std::uint32_t r = 0; r < view.rows(); ++r) {
        db.add_ticket(decode_ticket(view, r, first_row));
      }
      first_row += view.rows();
      continue;
    }
    const ChunkView view = reader.chunk(Table::kTickets, i);
    const auto incident = view.column(kTicketIncident).i32_span();
    const auto server = view.column(kTicketServer).i32_span();
    const auto subsystem = view.column(kTicketSubsystem).u8_span();
    const auto is_crash = view.column(kTicketIsCrash).u8_span();
    const auto true_class = view.column(kTicketTrueClass).u8_span();
    const auto opened = view.column(kTicketOpened).i64_span();
    const auto closed = view.column(kTicketClosed).i64_span();
    const columnar::ColumnView& description =
        view.column(kTicketDescription);
    const columnar::ColumnView& resolution =
        view.column(kTicketResolution);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      Ticket t;
      t.id = TicketId{static_cast<std::int32_t>(first_row + r)};
      t.incident = IncidentId{incident[r]};
      t.server = ServerId{server[r]};
      t.subsystem = static_cast<Subsystem>(subsystem[r]);
      t.is_crash = is_crash[r] != 0;
      t.true_class = static_cast<FailureClass>(true_class[r]);
      t.opened = opened[r];
      t.closed = closed[r];
      t.description = std::string(description.string_at(r));
      t.resolution = std::string(resolution.string_at(r));
      db.add_ticket(std::move(t));
    }
    first_row += view.rows();
  }
  // The monitoring tables are the row-count bulk of a trace; decode them
  // through typed column spans instead of the per-value generic accessors.
  using namespace columnar::col;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kWeeklyUsage); ++i) {
    const ChunkView view = reader.chunk(Table::kWeeklyUsage, i);
    const auto server = view.column(kUsageServer).i32_span();
    const auto week = view.column(kUsageWeek).i32_span();
    const auto cpu = view.column(kUsageCpuUtil).f64_span();
    const auto mem = view.column(kUsageMemUtil).f64_span();
    const columnar::ColumnView& disk = view.column(kUsageDiskUtil);
    const columnar::ColumnView& net = view.column(kUsageNetKbps);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      WeeklyUsage u;
      u.server = ServerId{server[r]};
      u.week = week[r];
      u.cpu_util = cpu[r];
      u.mem_util = mem[r];
      if (disk.present_at(r)) u.disk_util = disk.double_at(r);
      if (net.present_at(r)) u.net_kbps = net.double_at(r);
      db.add_weekly_usage(u);
    }
  }
  for (std::size_t i = 0; i < reader.chunk_count(Table::kPowerEvents); ++i) {
    const ChunkView view = reader.chunk(Table::kPowerEvents, i);
    const auto server = view.column(kPowerServer).i32_span();
    const auto at = view.column(kPowerAt).i64_span();
    const auto on = view.column(kPowerOn).u8_span();
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      db.add_power_event({ServerId{server[r]}, at[r], on[r] != 0});
    }
  }
  for (std::size_t i = 0; i < reader.chunk_count(Table::kSnapshots); ++i) {
    const ChunkView view = reader.chunk(Table::kSnapshots, i);
    const auto server = view.column(kSnapServer).i32_span();
    const auto month = view.column(kSnapMonth).i32_span();
    const auto box = view.column(kSnapBox).i32_span();
    const auto consolidation = view.column(kSnapConsolidation).i32_span();
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      db.add_monthly_snapshot(
          {ServerId{server[r]}, month[r], BoxId{box[r]}, consolidation[r]});
    }
  }
  for (std::int32_t i = 0; i < reader.next_incident(); ++i) {
    db.new_incident();
  }
  db.finalize();
  return db;
}

TraceDatabase load_columnar_lenient(const std::string& path,
                                    DegradedReadReport& report,
                                    bool use_mmap) {
  obs::Span span("trace.columnar.load_lenient");
  ChunkReader reader(path, use_mmap);
  TraceDatabase db;
  db.set_windows(reader.window(), reader.monitoring(),
                 reader.onoff_tracking());

  // Server ids are row positions, so a damaged server chunk orphans every
  // later positional id: keep only the longest undamaged chunk prefix.
  std::int64_t servers_loaded = 0;
  bool server_gap = false;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kServers); ++i) {
    if (server_gap) {
      report.rows_dropped_dangling +=
          reader.chunk_info(Table::kServers, i).rows;
      continue;
    }
    const auto view = reader.try_chunk(Table::kServers, i, &report);
    if (!view) {
      server_gap = true;
      continue;
    }
    for (std::uint32_t r = 0; r < view->rows(); ++r) {
      db.add_server(decode_server(*view, r, servers_loaded + r));
    }
    servers_loaded += view->rows();
  }
  const auto server_ok = [&](std::int32_t sid) {
    return sid >= 0 && sid < servers_loaded;
  };

  // For the reference-free positional ids of the remaining tables, skipping
  // a damaged chunk is safe as long as `first_row` still advances by the
  // skipped chunk's row count (later decoded records keep their positions
  // in derived values like next_incident).
  std::int32_t max_incident = -1;
  std::int64_t first_row = 0;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kTickets); ++i) {
    const std::uint32_t chunk_rows =
        reader.chunk_info(Table::kTickets, i).rows;
    const auto view = reader.try_chunk(Table::kTickets, i, &report);
    if (view) {
      for (std::uint32_t r = 0; r < view->rows(); ++r) {
        Ticket t = decode_ticket(*view, r, first_row);
        if (!server_ok(t.server.value)) {
          ++report.rows_dropped_dangling;
          continue;
        }
        max_incident = std::max(max_incident, t.incident.value);
        db.add_ticket(std::move(t));
      }
    }
    first_row += chunk_rows;
  }
  for (std::size_t i = 0; i < reader.chunk_count(Table::kWeeklyUsage); ++i) {
    const auto view = reader.try_chunk(Table::kWeeklyUsage, i, &report);
    if (!view) continue;
    for (std::uint32_t r = 0; r < view->rows(); ++r) {
      WeeklyUsage u = decode_weekly_usage(*view, r);
      if (!server_ok(u.server.value)) {
        ++report.rows_dropped_dangling;
        continue;
      }
      db.add_weekly_usage(std::move(u));
    }
  }
  for (std::size_t i = 0; i < reader.chunk_count(Table::kPowerEvents); ++i) {
    const auto view = reader.try_chunk(Table::kPowerEvents, i, &report);
    if (!view) continue;
    for (std::uint32_t r = 0; r < view->rows(); ++r) {
      PowerEvent e = decode_power_event(*view, r);
      if (!server_ok(e.server.value)) {
        ++report.rows_dropped_dangling;
        continue;
      }
      db.add_power_event(e);
    }
  }
  for (std::size_t i = 0; i < reader.chunk_count(Table::kSnapshots); ++i) {
    const auto view = reader.try_chunk(Table::kSnapshots, i, &report);
    if (!view) continue;
    for (std::uint32_t r = 0; r < view->rows(); ++r) {
      MonthlySnapshot s = decode_snapshot(*view, r);
      if (!server_ok(s.server.value)) {
        ++report.rows_dropped_dangling;
        continue;
      }
      db.add_monthly_snapshot(s);
    }
  }
  const std::int32_t next_incident =
      std::max(reader.next_incident(), max_incident + 1);
  for (std::int32_t i = 0; i < next_incident; ++i) db.new_incident();
  db.finalize();
  return db;
}

}  // namespace fa::trace
