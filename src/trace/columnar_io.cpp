#include "src/trace/columnar_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::trace {
namespace {

using columnar::ChunkInfo;
using columnar::ChunkView;
using columnar::ColumnBlockInfo;
using columnar::Encoding;
using columnar::Table;
using columnar::fnv1a;
using columnar::kTableCount;
using columnar::table_schema;

constexpr std::size_t kHeaderBytes = 8;   // magic + version
constexpr std::size_t kTailBytes = 24;    // footer size + checksum + magic

obs::Counter& chunks_written_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.chunks_written");
  return c;
}
obs::Counter& rows_written_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.rows_written");
  return c;
}
obs::Counter& chunks_read_counter() {
  static obs::Counter& c = obs::counter("fa.trace.columnar.chunks_read");
  return c;
}

// ---- footer serialization ----

struct FooterWriter {
  std::vector<std::byte> bytes;

  template <typename T>
  void put(T v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(T));
  }
};

struct FooterParser {
  const std::byte* p;
  const std::byte* end;

  template <typename T>
  T get() {
    require(p + sizeof(T) <= end, "columnar: footer truncated");
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

FileReport build_report(
    const std::array<std::vector<ChunkInfo>, kTableCount>& directory,
    const std::array<std::uint64_t, kTableCount>& row_counts,
    std::uint64_t footer_bytes) {
  FileReport report;
  report.footer_bytes = footer_bytes;
  for (int t = 0; t < kTableCount; ++t) {
    const Table table = columnar::kAllTables[t];
    report.rows[t] = row_counts[t];
    report.chunks[t] = directory[t].size();
    for (const ChunkInfo& chunk : directory[t]) {
      report.data_bytes += chunk.size;
    }
    const auto& schema = table_schema(table);
    for (std::size_t ci = 0; ci < schema.size(); ++ci) {
      ColumnReport col;
      col.table = table;
      col.name = std::string(schema[ci].name);
      col.encoding = schema[ci].encoding;
      for (const ChunkInfo& chunk : directory[t]) {
        const ColumnBlockInfo& block = chunk.columns[ci];
        col.bytes += block.size;
        if (schema[ci].encoding == Encoding::kStringDict) {
          col.dict_entries += block.extra;
          col.max_dict_entries =
              std::max<std::uint64_t>(col.max_dict_entries, block.extra);
        }
      }
      report.columns.push_back(std::move(col));
    }
  }
  return report;
}

}  // namespace

bool is_columnar_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == 4 &&
         std::memcmp(magic, kColumnarMagic.data(), 4) == 0;
}

// ---- ColumnarWriter ----

ColumnarWriter::ColumnarWriter(const std::string& path,
                               std::uint32_t chunk_rows)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      chunk_rows_(chunk_rows),
      window_(ticket_window()),
      monitoring_(monitoring_window()),
      onoff_(onoff_window()) {
  require(chunk_rows_ > 0, "columnar: chunk_rows must be positive");
  require(static_cast<bool>(out_),
          "columnar: cannot open " + path + " for writing");
  builders_.reserve(kTableCount);
  for (Table table : columnar::kAllTables) builders_.emplace_back(table);
  out_.write(kColumnarMagic.data(), kColumnarMagic.size());
  const std::uint32_t version = kColumnarVersion;
  out_.write(reinterpret_cast<const char*>(&version), sizeof(version));
  offset_ = kHeaderBytes;
}

ColumnarWriter::~ColumnarWriter() = default;

void ColumnarWriter::set_windows(ObservationWindow ticket,
                                 ObservationWindow monitoring,
                                 ObservationWindow onoff_tracking) {
  require(!finished_, "columnar: set_windows after finish");
  window_ = ticket;
  monitoring_ = monitoring;
  onoff_ = onoff_tracking;
}

void ColumnarWriter::append_rows_metric(Table table) {
  const auto t = static_cast<std::size_t>(table);
  ++row_counts_[t];
  rows_written_counter().add(1);
  if (builders_[t].rows() >= chunk_rows_) flush_chunk(table);
}

void ColumnarWriter::add_server(const ServerRecord& record) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kServers)], record);
  append_rows_metric(Table::kServers);
}

void ColumnarWriter::add_ticket(const Ticket& ticket) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kTickets)], ticket);
  append_rows_metric(Table::kTickets);
}

void ColumnarWriter::add_tickets(std::span<const Ticket> tickets) {
  require(!finished_, "columnar: write after finish");
  using namespace columnar::col;
  const auto t = static_cast<std::size_t>(Table::kTickets);
  columnar::ChunkBuilder& b = builders_[t];
  std::size_t done = 0;
  while (done < tickets.size()) {
    const std::size_t room = chunk_rows_ - b.rows();
    const std::size_t n = std::min(room, tickets.size() - done);
    const std::span<const Ticket> batch = tickets.subspan(done, n);
    // One task per ticket column. Each fills only its own column's state, so
    // scheduling order cannot affect the encoded bytes; dictionary slots
    // still follow row order within each text column.
    parallel_for(9, [&](std::size_t ci) {
      switch (ci) {
        case kTicketIncident:
          b.fill_ints(kTicketIncident, n,
                      [&](std::size_t i) { return batch[i].incident.value; });
          break;
        case kTicketServer:
          b.fill_ints(kTicketServer, n,
                      [&](std::size_t i) { return batch[i].server.value; });
          break;
        case kTicketSubsystem:
          b.fill_ints(kTicketSubsystem, n, [&](std::size_t i) {
            return static_cast<std::int64_t>(batch[i].subsystem);
          });
          break;
        case kTicketIsCrash:
          b.fill_ints(kTicketIsCrash, n, [&](std::size_t i) {
            return static_cast<std::int64_t>(batch[i].is_crash ? 1 : 0);
          });
          break;
        case kTicketTrueClass:
          b.fill_ints(kTicketTrueClass, n, [&](std::size_t i) {
            return static_cast<std::int64_t>(batch[i].true_class);
          });
          break;
        case kTicketOpened:
          b.fill_ints(kTicketOpened, n,
                      [&](std::size_t i) { return batch[i].opened; });
          break;
        case kTicketClosed:
          b.fill_ints(kTicketClosed, n,
                      [&](std::size_t i) { return batch[i].closed; });
          break;
        case kTicketDescription:
          b.fill_strings(kTicketDescription, n, [&](std::size_t i) {
            return std::string_view(batch[i].description);
          });
          break;
        case kTicketResolution:
          b.fill_strings(kTicketResolution, n, [&](std::size_t i) {
            return std::string_view(batch[i].resolution);
          });
          break;
      }
    });
    b.advance_rows(n);
    row_counts_[t] += n;
    rows_written_counter().add(n);
    done += n;
    if (b.rows() >= chunk_rows_) flush_chunk(Table::kTickets);
  }
}

void ColumnarWriter::add_weekly_usage(const WeeklyUsage& usage) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kWeeklyUsage)],
                usage);
  append_rows_metric(Table::kWeeklyUsage);
}

void ColumnarWriter::add_power_event(const PowerEvent& event) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kPowerEvents)],
                event);
  append_rows_metric(Table::kPowerEvents);
}

void ColumnarWriter::add_monthly_snapshot(const MonthlySnapshot& snapshot) {
  require(!finished_, "columnar: write after finish");
  append_record(builders_[static_cast<std::size_t>(Table::kSnapshots)],
                snapshot);
  append_rows_metric(Table::kSnapshots);
}

void ColumnarWriter::flush_chunk(Table table) {
  const auto t = static_cast<std::size_t>(table);
  if (builders_[t].rows() == 0) return;
  scratch_.clear();
  ChunkInfo info = builders_[t].encode(scratch_);
  info.offset += offset_;
  for (ColumnBlockInfo& block : info.columns) block.offset += offset_;
  out_.write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  offset_ += scratch_.size();
  directory_[t].push_back(std::move(info));
  chunks_written_counter().add(1);
}

void ColumnarWriter::finish() {
  require(!finished_, "columnar: finish called twice");
  for (Table table : columnar::kAllTables) flush_chunk(table);
  write_footer();
  out_.flush();
  require(static_cast<bool>(out_), "columnar: write failed for " + path_);
  out_.close();
  finished_ = true;
}

void ColumnarWriter::write_footer() {
  FooterWriter f;
  f.put<std::int64_t>(window_.begin);
  f.put<std::int64_t>(window_.end);
  f.put<std::int64_t>(monitoring_.begin);
  f.put<std::int64_t>(monitoring_.end);
  f.put<std::int64_t>(onoff_.begin);
  f.put<std::int64_t>(onoff_.end);
  f.put<std::int32_t>(next_incident_);
  f.put<std::uint32_t>(chunk_rows_);
  for (int t = 0; t < kTableCount; ++t) {
    f.put<std::uint64_t>(row_counts_[t]);
    f.put<std::uint32_t>(static_cast<std::uint32_t>(directory_[t].size()));
    for (const ChunkInfo& chunk : directory_[t]) {
      f.put<std::uint64_t>(chunk.offset);
      f.put<std::uint64_t>(chunk.size);
      f.put<std::uint32_t>(chunk.rows);
      f.put<std::uint64_t>(chunk.checksum);
      f.put<std::uint32_t>(static_cast<std::uint32_t>(chunk.columns.size()));
      for (const ColumnBlockInfo& block : chunk.columns) {
        f.put<std::uint64_t>(block.offset);
        f.put<std::uint64_t>(block.size);
        f.put<std::uint32_t>(block.extra);
        f.put<std::uint8_t>(block.stats.has_minmax ? 1 : 0);
        f.put<std::int64_t>(block.stats.min);
        f.put<std::int64_t>(block.stats.max);
      }
    }
  }
  const std::uint64_t footer_size = f.bytes.size();
  const std::uint64_t footer_checksum = fnv1a(f.bytes.data(), f.bytes.size());
  f.put<std::uint64_t>(footer_size);
  f.put<std::uint64_t>(footer_checksum);
  f.bytes.insert(f.bytes.end(),
                 reinterpret_cast<const std::byte*>(kColumnarMagic.data()),
                 reinterpret_cast<const std::byte*>(kColumnarMagic.data()) +
                     kColumnarMagic.size());
  f.put<std::uint32_t>(kColumnarVersion);
  out_.write(reinterpret_cast<const char*>(f.bytes.data()),
             static_cast<std::streamsize>(f.bytes.size()));
  offset_ += f.bytes.size();
  report_ = build_report(directory_, row_counts_, footer_size + kTailBytes);
}

const FileReport& ColumnarWriter::report() const {
  require(finished_, "columnar: report only available after finish");
  return report_;
}

// ---- ChunkReader ----

ChunkReader::ChunkReader(const std::string& path, bool use_mmap)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  require(fd_ >= 0, "columnar: cannot open " + path);
  struct stat st {};
  if (::fstat(fd_, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd_);
    fd_ = -1;
    throw Error("columnar: " + path + " is not a regular file");
  }
  file_size_ = static_cast<std::uint64_t>(st.st_size);

  if (use_mmap && file_size_ > 0) {
    void* map = ::mmap(nullptr, file_size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (map != MAP_FAILED) {
      mapping_ = static_cast<const std::byte*>(map);
      mapping_size_ = file_size_;
    }
  }
  if (mapping_ == nullptr) {
    stream_.open(path, std::ios::binary);
    if (!stream_) {
      ::close(fd_);
      fd_ = -1;
      throw Error("columnar: cannot open " + path);
    }
  }

  auto read_at = [&](std::uint64_t offset, void* dest, std::size_t size) {
    if (mapping_ != nullptr) {
      std::memcpy(dest, mapping_ + offset, size);
      return;
    }
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(offset));
    stream_.read(static_cast<char*>(dest),
                 static_cast<std::streamsize>(size));
    require(stream_.gcount() == static_cast<std::streamsize>(size),
            "columnar: short read from " + path_);
  };

  try {
    require(file_size_ >= kHeaderBytes + kTailBytes,
            "columnar: " + path + " is truncated (no header/tail)");

    char magic[4];
    std::uint32_t version = 0;
    read_at(0, magic, 4);
    require(std::memcmp(magic, kColumnarMagic.data(), 4) == 0,
            "columnar: " + path + " is not a columnar trace file "
            "(bad magic)");
    read_at(4, &version, sizeof(version));
    require(version == kColumnarVersion,
            "columnar: " + path + " has unsupported format version " +
                std::to_string(version));

    std::uint64_t footer_size = 0;
    std::uint64_t footer_checksum = 0;
    read_at(file_size_ - kTailBytes, &footer_size, sizeof(footer_size));
    read_at(file_size_ - kTailBytes + 8, &footer_checksum,
            sizeof(footer_checksum));
    read_at(file_size_ - kTailBytes + 16, magic, 4);
    read_at(file_size_ - kTailBytes + 20, &version, sizeof(version));
    require(std::memcmp(magic, kColumnarMagic.data(), 4) == 0 &&
                version == kColumnarVersion,
            "columnar: " + path + " has a corrupt or truncated tail");
    require(footer_size <= file_size_ - kHeaderBytes - kTailBytes,
            "columnar: " + path + " footer escapes the file (truncated?)");
    const std::uint64_t footer_start = file_size_ - kTailBytes - footer_size;
    footer_bytes_ = footer_size + kTailBytes;

    std::vector<std::byte> footer(footer_size);
    read_at(footer_start, footer.data(), footer.size());
    require(fnv1a(footer.data(), footer.size()) == footer_checksum,
            "columnar: " + path + " footer checksum mismatch (corrupt)");

    FooterParser p{footer.data(), footer.data() + footer.size()};
    window_.begin = p.get<std::int64_t>();
    window_.end = p.get<std::int64_t>();
    monitoring_.begin = p.get<std::int64_t>();
    monitoring_.end = p.get<std::int64_t>();
    onoff_.begin = p.get<std::int64_t>();
    onoff_.end = p.get<std::int64_t>();
    next_incident_ = p.get<std::int32_t>();
    chunk_rows_ = p.get<std::uint32_t>();
    for (int t = 0; t < kTableCount; ++t) {
      const Table table = columnar::kAllTables[t];
      row_counts_[t] = p.get<std::uint64_t>();
      const std::uint32_t chunk_count = p.get<std::uint32_t>();
      std::uint64_t rows_seen = 0;
      directory_[t].reserve(chunk_count);
      for (std::uint32_t i = 0; i < chunk_count; ++i) {
        ChunkInfo chunk;
        chunk.offset = p.get<std::uint64_t>();
        chunk.size = p.get<std::uint64_t>();
        chunk.rows = p.get<std::uint32_t>();
        chunk.checksum = p.get<std::uint64_t>();
        const std::uint32_t column_count = p.get<std::uint32_t>();
        require(column_count == table_schema(table).size(),
                "columnar: " + path + " chunk directory column count "
                "mismatch");
        require(chunk.offset % 8 == 0 &&
                    chunk.offset >= kHeaderBytes &&
                    chunk.size <= footer_start &&
                    chunk.offset <= footer_start - chunk.size,
                "columnar: " + path + " chunk escapes the data region");
        chunk.columns.resize(column_count);
        for (ColumnBlockInfo& block : chunk.columns) {
          block.offset = p.get<std::uint64_t>();
          block.size = p.get<std::uint64_t>();
          block.extra = p.get<std::uint32_t>();
          block.stats.has_minmax = p.get<std::uint8_t>() != 0;
          block.stats.min = p.get<std::int64_t>();
          block.stats.max = p.get<std::int64_t>();
        }
        rows_seen += chunk.rows;
        directory_[t].push_back(std::move(chunk));
      }
      require(rows_seen == row_counts_[t],
              "columnar: " + path + " chunk rows disagree with table "
              "row count");
    }
    require(p.p == p.end, "columnar: " + path + " footer has trailing bytes");
  } catch (...) {
    if (mapping_ != nullptr) {
      ::munmap(const_cast<std::byte*>(mapping_), mapping_size_);
      mapping_ = nullptr;
    }
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    throw;
  }
}

ChunkReader::~ChunkReader() {
  if (mapping_ != nullptr) {
    ::munmap(const_cast<std::byte*>(mapping_), mapping_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t ChunkReader::row_count(Table table) const {
  return row_counts_[static_cast<std::size_t>(table)];
}

std::size_t ChunkReader::chunk_count(Table table) const {
  return directory_[static_cast<std::size_t>(table)].size();
}

const ChunkInfo& ChunkReader::chunk_info(Table table,
                                         std::size_t index) const {
  const auto& chunks = directory_[static_cast<std::size_t>(table)];
  require(index < chunks.size(), "columnar: chunk index out of range");
  return chunks[index];
}

ChunkView ChunkReader::chunk(Table table, std::size_t index) const {
  const ChunkInfo& info = chunk_info(table, index);
  chunks_read_counter().add(1);
  if (mapping_ != nullptr) {
    const std::byte* base = mapping_ + info.offset;
    require(fnv1a(base, info.size) == info.checksum,
            "columnar: " + path_ + " chunk checksum mismatch (corrupt)");
    return ChunkView(table, info, base);
  }
  std::vector<std::byte> owned(info.size);
  stream_.clear();
  stream_.seekg(static_cast<std::streamoff>(info.offset));
  stream_.read(reinterpret_cast<char*>(owned.data()),
               static_cast<std::streamsize>(owned.size()));
  require(stream_.gcount() == static_cast<std::streamsize>(owned.size()),
          "columnar: short read from " + path_);
  require(fnv1a(owned.data(), owned.size()) == info.checksum,
          "columnar: " + path_ + " chunk checksum mismatch (corrupt)");
  return ChunkView(table, info, nullptr, std::move(owned));
}

FileReport ChunkReader::report() const {
  return build_report(directory_, row_counts_, footer_bytes_);
}

// ---- record bridge ----

void append_record(columnar::ChunkBuilder& b, const ServerRecord& r) {
  using namespace columnar::col;
  b.add_int(kServerType, static_cast<std::int64_t>(r.type));
  b.add_int(kServerSubsystem, r.subsystem);
  b.add_int(kServerCpuCount, r.cpu_count);
  b.add_double(kServerMemoryGb, r.memory_gb);
  b.add_opt_double(kServerDiskGb, r.disk_gb);
  b.add_opt_int(kServerDiskCount, r.disk_count);
  b.add_int(kServerHostBox, r.host_box.value);
  b.add_int(kServerFirstRecord, r.first_record);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const Ticket& t) {
  using namespace columnar::col;
  b.add_int(kTicketIncident, t.incident.value);
  b.add_int(kTicketServer, t.server.value);
  b.add_int(kTicketSubsystem, t.subsystem);
  b.add_int(kTicketIsCrash, t.is_crash ? 1 : 0);
  b.add_int(kTicketTrueClass, static_cast<std::int64_t>(t.true_class));
  b.add_int(kTicketOpened, t.opened);
  b.add_int(kTicketClosed, t.closed);
  b.add_string(kTicketDescription, t.description);
  b.add_string(kTicketResolution, t.resolution);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const WeeklyUsage& u) {
  using namespace columnar::col;
  b.add_int(kUsageServer, u.server.value);
  b.add_int(kUsageWeek, u.week);
  b.add_double(kUsageCpuUtil, u.cpu_util);
  b.add_double(kUsageMemUtil, u.mem_util);
  b.add_opt_double(kUsageDiskUtil, u.disk_util);
  b.add_opt_double(kUsageNetKbps, u.net_kbps);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const PowerEvent& e) {
  using namespace columnar::col;
  b.add_int(kPowerServer, e.server.value);
  b.add_int(kPowerAt, e.at);
  b.add_int(kPowerOn, e.powered_on ? 1 : 0);
  b.next_row();
}

void append_record(columnar::ChunkBuilder& b, const MonthlySnapshot& s) {
  using namespace columnar::col;
  b.add_int(kSnapServer, s.server.value);
  b.add_int(kSnapMonth, s.month);
  b.add_int(kSnapBox, s.box.value);
  b.add_int(kSnapConsolidation, s.consolidation);
  b.next_row();
}

ServerRecord decode_server(const ChunkView& view, std::uint32_t row,
                           std::int64_t first_row_id) {
  using namespace columnar::col;
  ServerRecord r;
  r.id = ServerId{static_cast<std::int32_t>(first_row_id + row)};
  const std::int64_t type = view.column(kServerType).int_at(row);
  require(type >= 0 && type < kMachineTypeCount,
          "columnar: invalid machine type " + std::to_string(type));
  r.type = static_cast<MachineType>(type);
  const std::int64_t sys = view.column(kServerSubsystem).int_at(row);
  require(sys >= 0 && sys < kSubsystemCount,
          "columnar: invalid subsystem " + std::to_string(sys));
  r.subsystem = static_cast<Subsystem>(sys);
  r.cpu_count = static_cast<int>(view.column(kServerCpuCount).int_at(row));
  r.memory_gb = view.column(kServerMemoryGb).double_at(row);
  if (view.column(kServerDiskGb).present_at(row)) {
    r.disk_gb = view.column(kServerDiskGb).double_at(row);
  }
  if (view.column(kServerDiskCount).present_at(row)) {
    r.disk_count =
        static_cast<int>(view.column(kServerDiskCount).int_at(row));
  }
  r.host_box = BoxId{
      static_cast<std::int32_t>(view.column(kServerHostBox).int_at(row))};
  r.first_record = view.column(kServerFirstRecord).int_at(row);
  return r;
}

Ticket decode_ticket(const ChunkView& view, std::uint32_t row,
                     std::int64_t first_row_id) {
  using namespace columnar::col;
  Ticket t;
  t.id = TicketId{static_cast<std::int32_t>(first_row_id + row)};
  t.incident = IncidentId{
      static_cast<std::int32_t>(view.column(kTicketIncident).int_at(row))};
  t.server = ServerId{
      static_cast<std::int32_t>(view.column(kTicketServer).int_at(row))};
  const std::int64_t sys = view.column(kTicketSubsystem).int_at(row);
  require(sys >= 0 && sys < kSubsystemCount,
          "columnar: invalid subsystem " + std::to_string(sys));
  t.subsystem = static_cast<Subsystem>(sys);
  const std::int64_t crash = view.column(kTicketIsCrash).int_at(row);
  require(crash == 0 || crash == 1,
          "columnar: invalid is_crash " + std::to_string(crash));
  t.is_crash = crash != 0;
  const std::int64_t cls = view.column(kTicketTrueClass).int_at(row);
  require(cls >= 0 && cls < kFailureClassCount,
          "columnar: invalid failure class " + std::to_string(cls));
  t.true_class = static_cast<FailureClass>(cls);
  t.opened = view.column(kTicketOpened).int_at(row);
  t.closed = view.column(kTicketClosed).int_at(row);
  t.description = std::string(view.column(kTicketDescription).string_at(row));
  t.resolution = std::string(view.column(kTicketResolution).string_at(row));
  return t;
}

WeeklyUsage decode_weekly_usage(const ChunkView& view, std::uint32_t row) {
  using namespace columnar::col;
  WeeklyUsage u;
  u.server = ServerId{
      static_cast<std::int32_t>(view.column(kUsageServer).int_at(row))};
  u.week = static_cast<int>(view.column(kUsageWeek).int_at(row));
  u.cpu_util = view.column(kUsageCpuUtil).double_at(row);
  u.mem_util = view.column(kUsageMemUtil).double_at(row);
  if (view.column(kUsageDiskUtil).present_at(row)) {
    u.disk_util = view.column(kUsageDiskUtil).double_at(row);
  }
  if (view.column(kUsageNetKbps).present_at(row)) {
    u.net_kbps = view.column(kUsageNetKbps).double_at(row);
  }
  return u;
}

PowerEvent decode_power_event(const ChunkView& view, std::uint32_t row) {
  using namespace columnar::col;
  PowerEvent e;
  e.server = ServerId{
      static_cast<std::int32_t>(view.column(kPowerServer).int_at(row))};
  e.at = view.column(kPowerAt).int_at(row);
  e.powered_on = view.column(kPowerOn).int_at(row) != 0;
  return e;
}

MonthlySnapshot decode_snapshot(const ChunkView& view, std::uint32_t row) {
  using namespace columnar::col;
  MonthlySnapshot s;
  s.server = ServerId{
      static_cast<std::int32_t>(view.column(kSnapServer).int_at(row))};
  s.month = static_cast<int>(view.column(kSnapMonth).int_at(row));
  s.box = BoxId{
      static_cast<std::int32_t>(view.column(kSnapBox).int_at(row))};
  s.consolidation =
      static_cast<int>(view.column(kSnapConsolidation).int_at(row));
  return s;
}

// ---- whole-database convenience ----

FileReport save_columnar(const TraceDatabase& db, const std::string& path,
                         std::uint32_t chunk_rows) {
  obs::Span span("trace.columnar.save");
  ColumnarWriter writer(path, chunk_rows);
  writer.set_windows(db.window(), db.monitoring(), db.onoff_tracking());
  std::int32_t next_incident = 0;
  for (const Ticket& t : db.tickets()) {
    next_incident = std::max(next_incident, t.incident.value + 1);
  }
  writer.set_next_incident(next_incident);
  for (const ServerRecord& s : db.servers()) writer.add_server(s);
  writer.add_tickets(db.tickets());
  for (const ServerRecord& s : db.servers()) {
    for (const WeeklyUsage& u : db.weekly_usage_for(s.id)) {
      writer.add_weekly_usage(u);
    }
  }
  for (const ServerRecord& s : db.servers()) {
    for (const PowerEvent& e : db.power_events_for(s.id)) {
      writer.add_power_event(e);
    }
  }
  for (const ServerRecord& s : db.servers()) {
    for (const MonthlySnapshot& m : db.snapshots_for(s.id)) {
      writer.add_monthly_snapshot(m);
    }
  }
  writer.finish();
  return writer.report();
}

TraceDatabase load_columnar(const std::string& path, bool use_mmap) {
  obs::Span span("trace.columnar.load");
  ChunkReader reader(path, use_mmap);
  TraceDatabase db;
  db.set_windows(reader.window(), reader.monitoring(),
                 reader.onoff_tracking());
  db.reserve(reader.row_count(Table::kServers),
             reader.row_count(Table::kTickets),
             reader.row_count(Table::kWeeklyUsage),
             reader.row_count(Table::kPowerEvents),
             reader.row_count(Table::kSnapshots));

  std::int64_t first_row = 0;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kServers); ++i) {
    const ChunkView view = reader.chunk(Table::kServers, i);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      db.add_server(decode_server(view, r, first_row));
    }
    first_row += view.rows();
  }
  first_row = 0;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kTickets); ++i) {
    using namespace columnar::col;
    const columnar::ChunkInfo& info = reader.chunk_info(Table::kTickets, i);
    // The footer min/max stats validate whole chunks of enum-like columns
    // at once; fall back to per-row checks only when a chunk lacks stats.
    const auto in_range = [&](std::size_t column, std::int64_t lo,
                              std::int64_t hi) {
      const columnar::ColumnStats& stats = info.columns[column].stats;
      return stats.has_minmax && stats.min >= lo && stats.max <= hi;
    };
    if (!in_range(kTicketSubsystem, 0, kSubsystemCount - 1) ||
        !in_range(kTicketIsCrash, 0, 1) ||
        !in_range(kTicketTrueClass, 0, kFailureClassCount - 1)) {
      const ChunkView view = reader.chunk(Table::kTickets, i);
      for (std::uint32_t r = 0; r < view.rows(); ++r) {
        db.add_ticket(decode_ticket(view, r, first_row));
      }
      first_row += view.rows();
      continue;
    }
    const ChunkView view = reader.chunk(Table::kTickets, i);
    const auto incident = view.column(kTicketIncident).i32_span();
    const auto server = view.column(kTicketServer).i32_span();
    const auto subsystem = view.column(kTicketSubsystem).u8_span();
    const auto is_crash = view.column(kTicketIsCrash).u8_span();
    const auto true_class = view.column(kTicketTrueClass).u8_span();
    const auto opened = view.column(kTicketOpened).i64_span();
    const auto closed = view.column(kTicketClosed).i64_span();
    const columnar::ColumnView& description =
        view.column(kTicketDescription);
    const columnar::ColumnView& resolution =
        view.column(kTicketResolution);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      Ticket t;
      t.id = TicketId{static_cast<std::int32_t>(first_row + r)};
      t.incident = IncidentId{incident[r]};
      t.server = ServerId{server[r]};
      t.subsystem = static_cast<Subsystem>(subsystem[r]);
      t.is_crash = is_crash[r] != 0;
      t.true_class = static_cast<FailureClass>(true_class[r]);
      t.opened = opened[r];
      t.closed = closed[r];
      t.description = std::string(description.string_at(r));
      t.resolution = std::string(resolution.string_at(r));
      db.add_ticket(std::move(t));
    }
    first_row += view.rows();
  }
  // The monitoring tables are the row-count bulk of a trace; decode them
  // through typed column spans instead of the per-value generic accessors.
  using namespace columnar::col;
  for (std::size_t i = 0; i < reader.chunk_count(Table::kWeeklyUsage); ++i) {
    const ChunkView view = reader.chunk(Table::kWeeklyUsage, i);
    const auto server = view.column(kUsageServer).i32_span();
    const auto week = view.column(kUsageWeek).i32_span();
    const auto cpu = view.column(kUsageCpuUtil).f64_span();
    const auto mem = view.column(kUsageMemUtil).f64_span();
    const columnar::ColumnView& disk = view.column(kUsageDiskUtil);
    const columnar::ColumnView& net = view.column(kUsageNetKbps);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      WeeklyUsage u;
      u.server = ServerId{server[r]};
      u.week = week[r];
      u.cpu_util = cpu[r];
      u.mem_util = mem[r];
      if (disk.present_at(r)) u.disk_util = disk.double_at(r);
      if (net.present_at(r)) u.net_kbps = net.double_at(r);
      db.add_weekly_usage(u);
    }
  }
  for (std::size_t i = 0; i < reader.chunk_count(Table::kPowerEvents); ++i) {
    const ChunkView view = reader.chunk(Table::kPowerEvents, i);
    const auto server = view.column(kPowerServer).i32_span();
    const auto at = view.column(kPowerAt).i64_span();
    const auto on = view.column(kPowerOn).u8_span();
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      db.add_power_event({ServerId{server[r]}, at[r], on[r] != 0});
    }
  }
  for (std::size_t i = 0; i < reader.chunk_count(Table::kSnapshots); ++i) {
    const ChunkView view = reader.chunk(Table::kSnapshots, i);
    const auto server = view.column(kSnapServer).i32_span();
    const auto month = view.column(kSnapMonth).i32_span();
    const auto box = view.column(kSnapBox).i32_span();
    const auto consolidation = view.column(kSnapConsolidation).i32_span();
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      db.add_monthly_snapshot(
          {ServerId{server[r]}, month[r], BoxId{box[r]}, consolidation[r]});
    }
  }
  for (std::int32_t i = 0; i < reader.next_incident(); ++i) {
    db.new_incident();
  }
  db.finalize();
  return db;
}

}  // namespace fa::trace
