// Lenient, repairing loader for trace CSV exports — the reproduction of the
// paper's data-sanitization step. Where load_database (csv_io.h) aborts on
// the first malformed field, sanitize_database classifies every defective
// row into a small taxonomy and either repairs it by an explicit rule or
// quarantines it, then returns the cleaned database together with a full
// accounting of what was changed. Strict loading stays the default; the
// lenient path is opt-in for dirty real-world exports and for the
// fault-injection harness (src/inject/corruptor.h).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/database.h"

namespace fa::trace {

// Defect taxonomy. Every quarantined or repaired row is attributed to
// exactly one class (the first one detected, in the order below), so
// injected defect counts can be compared 1:1 against sanitization reports.
enum class DefectClass : std::uint8_t {
  // A field fails to parse or holds a value outside its column's domain
  // (wrong column count, bad integer, consolidation < 1, ...).
  kUnparseableField = 0,
  // A numeric field parses but is nan/inf.
  kNonFiniteNumeric = 1,
  // A row reuses an id column value already seen in its file. Repair:
  // keep-first, drop later duplicates.
  kDuplicateId = 2,
  // A timestamp lies outside the declared observation window. Repair:
  // clip tickets into the ticket window, power events into monitoring
  // coverage; week/month indexed rows are quarantined.
  kOutOfWindowTimestamp = 3,
  // A ticket closes before it opens.
  kEndBeforeOpen = 4,
  // A row references a machine the inventory does not contain (orphan
  // crash ticket / monitoring record), or a crash ticket lacks an incident.
  // Repair: drop the orphan row; missing incidents get a fresh id.
  kOrphanReference = 5,
  // A server's weekly monitoring series ends before the observation year
  // does. The gap is tolerated (rows kept) but recorded.
  kTruncatedSeries = 6,
  // An enum-valued field holds an unknown symbol. Repair: unknown failure
  // classes fall back to "other"; unknown machine types are quarantined.
  kUnknownEnum = 7,
};

inline constexpr int kDefectClassCount = 8;
inline constexpr std::array<DefectClass, kDefectClassCount> kAllDefectClasses =
    {DefectClass::kUnparseableField, DefectClass::kNonFiniteNumeric,
     DefectClass::kDuplicateId,      DefectClass::kOutOfWindowTimestamp,
     DefectClass::kEndBeforeOpen,    DefectClass::kOrphanReference,
     DefectClass::kTruncatedSeries,  DefectClass::kUnknownEnum};

std::string_view to_string(DefectClass cls);

enum class DefectAction : std::uint8_t {
  kRepaired = 0,     // row kept (possibly rewritten) or dropped by rule
  kQuarantined = 1,  // row dropped with no applicable repair rule
};

std::string_view to_string(DefectAction action);

struct SanitizationReport {
  struct Defect {
    std::string file;  // e.g. "tickets.csv"
    // 1-based data-record index within the file (the header is record 0;
    // quoted fields may span physical lines, so this counts CSV records).
    std::size_t row = 0;
    DefectClass cls = DefectClass::kUnparseableField;
    DefectAction action = DefectAction::kQuarantined;
    std::string detail;
  };

  struct FileStats {
    std::string file;
    std::size_t rows = 0;  // data records read
    std::size_t kept = 0;  // records that reached the database
  };

  std::vector<Defect> defects;
  std::vector<FileStats> files;
  // Rows dropped (or references cleared) only because they referenced a
  // quarantined server row; consequences of another defect, not defects of
  // their own.
  std::size_t cascade_drops = 0;

  std::size_t total_defects() const { return defects.size(); }
  std::size_t count(DefectClass cls) const;
  std::size_t count(const std::string& file, DefectClass cls) const;
  std::size_t repaired() const;
  std::size_t quarantined() const;
  std::size_t rows_read(const std::string& file) const;
  std::size_t rows_kept(const std::string& file) const;
  std::size_t rows_dropped(const std::string& file) const;
  // Ascending record indices of quarantined rows in `file`.
  std::vector<std::size_t> quarantined_rows(const std::string& file) const;

  // Human-readable report: per-class counts, per-file read/kept/dropped.
  std::string to_string() const;
  // Stable machine-readable per-class counts: "class,count" lines, one per
  // defect class in enum order (diffable against an injector's report).
  std::string counts_csv() const;
  // Full defect list: "file,row,class,action,detail" lines.
  std::string defects_csv() const;
};

struct SanitizedDatabase {
  TraceDatabase db;
  SanitizationReport report;
};

// Loads the export in `directory` in lenient mode. Structural problems the
// sanitizer cannot work around (missing files, unreadable headers) still
// throw fa::Error; everything row-level is repaired or quarantined and
// recorded. The returned database is finalized.
SanitizedDatabase sanitize_database(const std::string& directory);

}  // namespace fa::trace
