#include "src/trace/sanitize.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/trace/csv_io.h"
#include "src/util/csv.h"
#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::trace {
namespace {

// ---- lenient field parsers (no exceptions; defects are data, not errors) --

std::optional<std::int64_t> try_int(const std::string& field) {
  if (field.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> try_double(const std::string& field) {
  if (field.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<MachineType> try_machine_type(const std::string& s) {
  for (int t = 0; t < kMachineTypeCount; ++t) {
    const auto type = static_cast<MachineType>(t);
    if (to_string(type) == s) return type;
  }
  return std::nullopt;
}

std::optional<FailureClass> try_failure_class(const std::string& s) {
  for (FailureClass c : kAllFailureClasses) {
    if (to_string(c) == s) return c;
  }
  return std::nullopt;
}

// Accumulates defects for one file and owns its row counters.
class FileAuditor {
 public:
  FileAuditor(SanitizationReport& report, std::string file)
      : report_(&report), file_(std::move(file)) {}

  ~FileAuditor() {
    report_->files.push_back({file_, rows_, kept_});
  }

  const std::string& file() const { return file_; }
  std::size_t next_row() { return ++rows_; }
  void keep() { ++kept_; }
  void cascade_drop() { ++report_->cascade_drops; }

  void defect(std::size_t row, DefectClass cls, DefectAction action,
              std::string detail) {
    report_->defects.push_back(
        {file_, row, cls, action, std::move(detail)});
  }

 private:
  SanitizationReport* report_;
  std::string file_;
  std::size_t rows_ = 0;
  std::size_t kept_ = 0;
};

// Field-level scan shared by all tables: returns the first defect of the
// row's fixed-arity prefix, or nullopt when every field is usable.
struct FieldDefect {
  DefectClass cls;
  std::string detail;
};

std::optional<FieldDefect> check_arity(const std::vector<std::string>& row,
                                       std::size_t want) {
  if (row.size() == want) return std::nullopt;
  return FieldDefect{DefectClass::kUnparseableField,
                     "expected " + std::to_string(want) + " fields, got " +
                         std::to_string(row.size())};
}

std::optional<FieldDefect> bad_int(const std::string& name,
                                   const std::string& value) {
  return FieldDefect{DefectClass::kUnparseableField,
                     name + " '" + value + "' is not an integer"};
}

// Parses a required double column; distinguishes unparseable text from
// values that parse but are nan/inf.
std::optional<FieldDefect> scan_double(const std::string& name,
                                       const std::string& value,
                                       double* out) {
  const auto v = try_double(value);
  if (!v) {
    return FieldDefect{DefectClass::kUnparseableField,
                       name + " '" + value + "' is not a number"};
  }
  if (!std::isfinite(*v)) {
    return FieldDefect{DefectClass::kNonFiniteNumeric,
                       name + " is non-finite ('" + value + "')"};
  }
  *out = *v;
  return std::nullopt;
}

std::optional<FieldDefect> scan_opt_double(const std::string& name,
                                           const std::string& value,
                                           std::optional<double>* out) {
  if (value.empty()) {
    out->reset();
    return std::nullopt;
  }
  double v = 0.0;
  if (auto defect = scan_double(name, value, &v)) return defect;
  *out = v;
  return std::nullopt;
}

TimePoint clamp_into(TimePoint t, const ObservationWindow& window) {
  return std::clamp(t, window.begin, window.end - 1);
}

// ---- staged rows (parsed leniently, resolved after all files are read) ----

struct StagedServer {
  std::int64_t file_id = 0;
  ServerRecord rec;
  std::size_t row = 0;
};

struct StagedTicket {
  std::int64_t file_id = 0;
  std::optional<std::int64_t> incident;
  std::optional<std::int64_t> server;
  Ticket t;  // server/incident filled during resolution
  std::size_t row = 0;
};

// Server ids as written in the file, resolved to remapped database ids.
// Distinguishes "never inventoried" (orphan defect) from "inventoried but
// quarantined" (cascade, not a new defect).
class ServerIdMap {
 public:
  void map(std::int64_t file_id, ServerId db_id) { map_[file_id] = db_id; }
  void quarantine(std::int64_t file_id) { quarantined_.insert(file_id); }

  std::optional<ServerId> resolve(std::int64_t file_id) const {
    const auto it = map_.find(file_id);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  bool was_quarantined(std::int64_t file_id) const {
    return quarantined_.count(file_id) > 0;
  }

 private:
  std::unordered_map<std::int64_t, ServerId> map_;
  std::unordered_set<std::int64_t> quarantined_;
};

std::ifstream open_table(const std::string& directory,
                         const std::string& file) {
  const std::string path = directory + "/" + file;
  std::ifstream in(path);
  require(in.good(), "sanitize_database: cannot open " + path);
  return in;
}

}  // namespace

std::string_view to_string(DefectClass cls) {
  switch (cls) {
    case DefectClass::kUnparseableField: return "unparseable_field";
    case DefectClass::kNonFiniteNumeric: return "non_finite_numeric";
    case DefectClass::kDuplicateId: return "duplicate_id";
    case DefectClass::kOutOfWindowTimestamp: return "out_of_window";
    case DefectClass::kEndBeforeOpen: return "end_before_open";
    case DefectClass::kOrphanReference: return "orphan_reference";
    case DefectClass::kTruncatedSeries: return "truncated_series";
    case DefectClass::kUnknownEnum: return "unknown_enum";
  }
  throw Error("to_string: invalid DefectClass");
}

std::string_view to_string(DefectAction action) {
  switch (action) {
    case DefectAction::kRepaired: return "repaired";
    case DefectAction::kQuarantined: return "quarantined";
  }
  throw Error("to_string: invalid DefectAction");
}

std::size_t SanitizationReport::count(DefectClass cls) const {
  std::size_t n = 0;
  for (const Defect& d : defects) n += d.cls == cls;
  return n;
}

std::size_t SanitizationReport::count(const std::string& file,
                                      DefectClass cls) const {
  std::size_t n = 0;
  for (const Defect& d : defects) n += d.cls == cls && d.file == file;
  return n;
}

std::size_t SanitizationReport::repaired() const {
  std::size_t n = 0;
  for (const Defect& d : defects) n += d.action == DefectAction::kRepaired;
  return n;
}

std::size_t SanitizationReport::quarantined() const {
  std::size_t n = 0;
  for (const Defect& d : defects) n += d.action == DefectAction::kQuarantined;
  return n;
}

std::size_t SanitizationReport::rows_read(const std::string& file) const {
  for (const FileStats& f : files) {
    if (f.file == file) return f.rows;
  }
  return 0;
}

std::size_t SanitizationReport::rows_kept(const std::string& file) const {
  for (const FileStats& f : files) {
    if (f.file == file) return f.kept;
  }
  return 0;
}

std::size_t SanitizationReport::rows_dropped(const std::string& file) const {
  return rows_read(file) - rows_kept(file);
}

std::vector<std::size_t> SanitizationReport::quarantined_rows(
    const std::string& file) const {
  std::vector<std::size_t> rows;
  for (const Defect& d : defects) {
    if (d.file == file && d.action == DefectAction::kQuarantined) {
      rows.push_back(d.row);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string SanitizationReport::to_string() const {
  std::string out = "sanitization report: " +
                    std::to_string(total_defects()) + " defects (" +
                    std::to_string(repaired()) + " repaired, " +
                    std::to_string(quarantined()) + " quarantined, " +
                    std::to_string(cascade_drops) + " cascade drops)\n";
  for (DefectClass cls : kAllDefectClasses) {
    const std::size_t n = count(cls);
    if (n == 0) continue;
    out += "  " + std::string(trace::to_string(cls)) + ": " +
           std::to_string(n) + "\n";
  }
  for (const FileStats& f : files) {
    out += "  " + f.file + ": " + std::to_string(f.kept) + "/" +
           std::to_string(f.rows) + " rows kept\n";
  }
  return out;
}

std::string SanitizationReport::counts_csv() const {
  std::string out = "class,count\n";
  for (DefectClass cls : kAllDefectClasses) {
    out += std::string(trace::to_string(cls)) + "," +
           std::to_string(count(cls)) + "\n";
  }
  return out;
}

std::string SanitizationReport::defects_csv() const {
  std::ostringstream stream;
  CsvWriter w(stream);
  w.write_row({"file", "row", "class", "action", "detail"});
  for (const Defect& d : defects) {
    w.write_row({d.file, std::to_string(d.row),
                 std::string(trace::to_string(d.cls)),
                 std::string(trace::to_string(d.action)), d.detail});
  }
  return stream.str();
}

SanitizedDatabase sanitize_database(const std::string& directory) {
  obs::Span span("trace.sanitize_database");
  SanitizedDatabase result;
  TraceDatabase& db = result.db;
  SanitizationReport& report = result.report;
  std::vector<std::string> row;

  // ---- meta.csv: observation windows (optional, defaults otherwise) ----
  if (std::filesystem::exists(directory + "/" + kMetaFile)) {
    FileAuditor audit(report, kMetaFile);
    auto in = open_table(directory, kMetaFile);
    CsvReader r(in);
    expect_header(r, meta_header(), directory + "/" + kMetaFile);
    ObservationWindow ticket = db.window();
    ObservationWindow monitoring = db.monitoring();
    ObservationWindow onoff = db.onoff_tracking();
    while (r.read_row(row)) {
      const std::size_t n = audit.next_row();
      if (auto defect = check_arity(row, 3)) {
        audit.defect(n, defect->cls, DefectAction::kQuarantined,
                     defect->detail);
        continue;
      }
      const auto begin = try_int(row[1]);
      const auto end = try_int(row[2]);
      if (!begin || !end) {
        audit.defect(n, DefectClass::kUnparseableField,
                     DefectAction::kQuarantined,
                     "window bounds '" + row[1] + "'/'" + row[2] +
                         "' are not integers");
        continue;
      }
      const ObservationWindow window{*begin, *end};
      if (row[0] == "ticket") {
        ticket = window;
      } else if (row[0] == "monitoring") {
        monitoring = window;
      } else if (row[0] == "onoff") {
        onoff = window;
      } else {
        audit.defect(n, DefectClass::kUnknownEnum, DefectAction::kQuarantined,
                     "unknown window '" + row[0] + "'");
        continue;
      }
      audit.keep();
    }
    try {
      db.set_windows(ticket, monitoring, onoff);
    } catch (const Error& e) {
      audit.defect(0, DefectClass::kUnparseableField,
                   DefectAction::kQuarantined,
                   std::string("inconsistent windows (") + e.what() +
                       "); paper defaults kept");
    }
  }
  const ObservationWindow ticket_win = db.window();
  const ObservationWindow monitoring_win = db.monitoring();

  // ---- servers.csv: lenient parse + keep-first dedup ----
  ServerIdMap ids;
  {
    FileAuditor audit(report, kServersFile);
    auto in = open_table(directory, kServersFile);
    CsvReader r(in);
    expect_header(r, servers_header(), directory + "/" + kServersFile);
    std::unordered_set<std::int64_t> seen;
    while (r.read_row(row)) {
      const std::size_t n = audit.next_row();
      const auto quarantine = [&](DefectClass cls, std::string detail) {
        audit.defect(n, cls, DefectAction::kQuarantined, std::move(detail));
        if (row.size() == 9) {
          if (const auto id = try_int(row[0])) ids.quarantine(*id);
        }
      };
      if (auto defect = check_arity(row, 9)) {
        quarantine(defect->cls, defect->detail);
        continue;
      }
      const auto file_id = try_int(row[0]);
      if (!file_id) {
        quarantine(bad_int("id", row[0])->cls, bad_int("id", row[0])->detail);
        continue;
      }
      const auto type = try_machine_type(row[1]);
      if (!type) {
        quarantine(DefectClass::kUnknownEnum,
                   "unknown machine type '" + row[1] + "'");
        continue;
      }
      const auto subsystem = try_int(row[2]);
      if (!subsystem || *subsystem < 0 || *subsystem >= kSubsystemCount) {
        quarantine(subsystem ? DefectClass::kUnknownEnum
                             : DefectClass::kUnparseableField,
                   "subsystem '" + row[2] + "' unknown");
        continue;
      }
      const auto cpu = try_int(row[3]);
      if (!cpu) {
        quarantine(DefectClass::kUnparseableField,
                   bad_int("cpu_count", row[3])->detail);
        continue;
      }
      ServerRecord s;
      s.type = *type;
      s.subsystem = static_cast<Subsystem>(*subsystem);
      s.cpu_count = static_cast<int>(*cpu);
      std::optional<FieldDefect> defect =
          scan_double("memory_gb", row[4], &s.memory_gb);
      if (!defect) defect = scan_opt_double("disk_gb", row[5], &s.disk_gb);
      if (defect) {
        quarantine(defect->cls, defect->detail);
        continue;
      }
      if (!row[6].empty()) {
        const auto disks = try_int(row[6]);
        if (!disks) {
          quarantine(DefectClass::kUnparseableField,
                     bad_int("disk_count", row[6])->detail);
          continue;
        }
        s.disk_count = static_cast<int>(*disks);
      }
      if (!row[7].empty()) {
        const auto box = try_int(row[7]);
        if (!box) {
          quarantine(DefectClass::kUnparseableField,
                     bad_int("host_box", row[7])->detail);
          continue;
        }
        s.host_box = BoxId{static_cast<std::int32_t>(*box)};
      }
      const auto first = try_int(row[8]);
      if (!first) {
        quarantine(DefectClass::kUnparseableField,
                   bad_int("first_record", row[8])->detail);
        continue;
      }
      s.first_record = *first;
      if (!seen.insert(*file_id).second) {
        audit.defect(n, DefectClass::kDuplicateId, DefectAction::kRepaired,
                     "duplicate server id " + std::to_string(*file_id) +
                         "; kept first occurrence");
        continue;
      }
      ids.map(*file_id, db.add_server(s));
      audit.keep();
    }
  }

  // Resolves a server reference; returns the remapped id, or nullopt when
  // the row must be treated as orphaned/cascaded.
  const auto resolve_server = [&](FileAuditor& audit, std::size_t n,
                                  std::int64_t file_id,
                                  bool* cascaded) -> std::optional<ServerId> {
    if (const auto id = ids.resolve(file_id)) return id;
    if (ids.was_quarantined(file_id)) {
      audit.cascade_drop();
      *cascaded = true;
    } else {
      audit.defect(n, DefectClass::kOrphanReference, DefectAction::kRepaired,
                   "references unknown server " + std::to_string(file_id) +
                       "; orphan dropped");
    }
    return std::nullopt;
  };

  // ---- tickets.csv: parse, dedup, orphan/window/ordering repair ----
  {
    FileAuditor audit(report, kTicketsFile);
    auto in = open_table(directory, kTicketsFile);
    CsvReader r(in);
    expect_header(r, tickets_header(), directory + "/" + kTicketsFile);
    std::vector<StagedTicket> staged;
    while (r.read_row(row)) {
      const std::size_t n = audit.next_row();
      if (auto defect = check_arity(row, 10)) {
        audit.defect(n, defect->cls, DefectAction::kQuarantined,
                     defect->detail);
        continue;
      }
      StagedTicket st;
      st.row = n;
      const auto file_id = try_int(row[0]);
      const auto subsystem = try_int(row[3]);
      const auto is_crash = try_int(row[4]);
      const auto opened = try_int(row[6]);
      const auto closed = try_int(row[7]);
      if (!file_id || !subsystem || !is_crash || !opened || !closed ||
          (!row[1].empty() && !try_int(row[1])) ||
          (!row[2].empty() && !try_int(row[2]))) {
        audit.defect(n, DefectClass::kUnparseableField,
                     DefectAction::kQuarantined,
                     "numeric ticket field failed to parse");
        continue;
      }
      if (*subsystem < 0 || *subsystem >= kSubsystemCount) {
        audit.defect(n, DefectClass::kUnknownEnum, DefectAction::kQuarantined,
                     "subsystem '" + row[3] + "' unknown");
        continue;
      }
      st.file_id = *file_id;
      if (!row[1].empty()) st.incident = *try_int(row[1]);
      if (!row[2].empty()) st.server = *try_int(row[2]);
      st.t.subsystem = static_cast<Subsystem>(*subsystem);
      st.t.is_crash = *is_crash != 0;
      st.t.opened = *opened;
      st.t.closed = *closed;
      st.t.description = row[8];
      st.t.resolution = row[9];
      const auto cls = try_failure_class(row[5]);
      if (cls) {
        st.t.true_class = *cls;
      } else {
        st.t.true_class = FailureClass::kOther;
        audit.defect(n, DefectClass::kUnknownEnum, DefectAction::kRepaired,
                     "unknown failure class '" + row[5] +
                         "'; reassigned to 'other'");
      }
      staged.push_back(std::move(st));
    }

    // Advance the incident counter past every id seen in the file so that
    // repairs allocating fresh incidents cannot collide with loaded ids.
    std::int64_t max_incident = -1;
    for (const StagedTicket& st : staged) {
      if (st.incident) max_incident = std::max(max_incident, *st.incident);
    }
    for (std::int64_t i = 0; i <= max_incident; ++i) db.new_incident();

    std::unordered_set<std::int64_t> seen;
    for (StagedTicket& st : staged) {
      if (!seen.insert(st.file_id).second) {
        audit.defect(st.row, DefectClass::kDuplicateId,
                     DefectAction::kRepaired,
                     "duplicate ticket id " + std::to_string(st.file_id) +
                         "; kept first occurrence");
        continue;
      }
      if (st.server) {
        bool cascaded = false;
        const auto id = resolve_server(audit, st.row, *st.server, &cascaded);
        if (!id) {
          if (!st.t.is_crash && !cascaded) {
            // The orphan defect was recorded; background tickets survive
            // with the dangling reference cleared instead of being dropped.
            report.defects.back().detail =
                "references unknown server " + std::to_string(*st.server) +
                "; reference cleared";
          } else if (!st.t.is_crash && cascaded) {
            // Cascade on a background ticket: clear the reference, keep.
          } else {
            continue;  // crash ticket without a machine: drop
          }
        } else {
          st.t.server = *id;
        }
      }
      if (st.t.is_crash && !st.t.server.valid()) {
        // Crash tickets must name a machine; unresolved ones were dropped
        // above, and rows that never carried a reference are orphans too.
        if (!st.server) {
          audit.defect(st.row, DefectClass::kOrphanReference,
                       DefectAction::kRepaired,
                       "crash ticket without server; orphan dropped");
        }
        continue;
      }
      if (st.incident) {
        st.t.incident = IncidentId{static_cast<std::int32_t>(*st.incident)};
      } else if (st.t.is_crash) {
        st.t.incident = db.new_incident();
        audit.defect(st.row, DefectClass::kOrphanReference,
                     DefectAction::kRepaired,
                     "crash ticket without incident; assigned fresh id " +
                         std::to_string(st.t.incident.value));
      }
      if (st.t.closed < st.t.opened) {
        audit.defect(st.row, DefectClass::kEndBeforeOpen,
                     DefectAction::kQuarantined,
                     "closed " + std::to_string(st.t.closed) +
                         " precedes opened " + std::to_string(st.t.opened));
        continue;
      }
      if (!ticket_win.contains(st.t.opened)) {
        // Clip the failure timestamp into the observation window and shift
        // the closing time with it: repair durations survive the repair.
        // (Closing times legitimately run past the window end, as in the
        // paper's data, so only `opened` is window-checked.)
        const TimePoint opened = clamp_into(st.t.opened, ticket_win);
        audit.defect(st.row, DefectClass::kOutOfWindowTimestamp,
                     DefectAction::kRepaired,
                     "ticket opened at " + std::to_string(st.t.opened) +
                         " clipped into the observation window");
        st.t.closed += opened - st.t.opened;
        st.t.opened = opened;
      }
      db.add_ticket(std::move(st.t));
      audit.keep();
    }
  }

  // ---- weekly_usage.csv ----
  {
    FileAuditor audit(report, kWeeklyUsageFile);
    auto in = open_table(directory, kWeeklyUsageFile);
    CsvReader r(in);
    expect_header(r, weekly_usage_header(),
                  directory + "/" + kWeeklyUsageFile);
    const int weeks = ticket_win.week_count();
    // Truncation detection considers every row whose (server, week) parsed,
    // including rows later quarantined for other field defects, so a nan in
    // a final week does not double-count as a truncated series.
    struct SeriesSpan {
      int max_week = -1;
      std::size_t last_row = 0;
    };
    std::unordered_map<std::int64_t, SeriesSpan> spans;
    while (r.read_row(row)) {
      const std::size_t n = audit.next_row();
      if (auto defect = check_arity(row, 6)) {
        audit.defect(n, defect->cls, DefectAction::kQuarantined,
                     defect->detail);
        continue;
      }
      const auto server = try_int(row[0]);
      const auto week = try_int(row[1]);
      if (!server || !week) {
        audit.defect(n, DefectClass::kUnparseableField,
                     DefectAction::kQuarantined,
                     "server/week '" + row[0] + "'/'" + row[1] +
                         "' failed to parse");
        continue;
      }
      SeriesSpan& span = spans[*server];
      if (static_cast<int>(*week) > span.max_week) {
        span.max_week = static_cast<int>(*week);
        span.last_row = n;
      }
      WeeklyUsage u;
      u.week = static_cast<int>(*week);
      std::optional<FieldDefect> defect =
          scan_double("cpu_util", row[2], &u.cpu_util);
      if (!defect) defect = scan_double("mem_util", row[3], &u.mem_util);
      if (!defect) defect = scan_opt_double("disk_util", row[4], &u.disk_util);
      if (!defect) defect = scan_opt_double("net_kbps", row[5], &u.net_kbps);
      if (defect) {
        audit.defect(n, defect->cls, DefectAction::kQuarantined,
                     defect->detail);
        continue;
      }
      if (*week < 0 || *week >= weeks) {
        audit.defect(n, DefectClass::kOutOfWindowTimestamp,
                     DefectAction::kQuarantined,
                     "week " + std::to_string(*week) +
                         " outside the observation year");
        continue;
      }
      bool cascaded = false;
      const auto id = resolve_server(audit, n, *server, &cascaded);
      if (!id) continue;
      u.server = *id;
      db.add_weekly_usage(u);
      audit.keep();
    }
    for (const auto& [file_id, span] : spans) {
      if (!ids.resolve(file_id)) continue;  // orphan/cascade, counted above
      if (span.max_week >= 0 && span.max_week < weeks - 1) {
        audit.defect(span.last_row, DefectClass::kTruncatedSeries,
                     DefectAction::kRepaired,
                     "series for server " + std::to_string(file_id) +
                         " ends at week " + std::to_string(span.max_week) +
                         " of " + std::to_string(weeks - 1) +
                         "; gap tolerated");
      }
    }
  }

  // ---- power_events.csv ----
  {
    FileAuditor audit(report, kPowerEventsFile);
    auto in = open_table(directory, kPowerEventsFile);
    CsvReader r(in);
    expect_header(r, power_events_header(),
                  directory + "/" + kPowerEventsFile);
    while (r.read_row(row)) {
      const std::size_t n = audit.next_row();
      if (auto defect = check_arity(row, 3)) {
        audit.defect(n, defect->cls, DefectAction::kQuarantined,
                     defect->detail);
        continue;
      }
      const auto server = try_int(row[0]);
      const auto at = try_int(row[1]);
      const auto powered = try_int(row[2]);
      if (!server || !at || !powered) {
        audit.defect(n, DefectClass::kUnparseableField,
                     DefectAction::kQuarantined,
                     "power event field failed to parse");
        continue;
      }
      PowerEvent e;
      e.at = *at;
      e.powered_on = *powered != 0;
      if (!monitoring_win.contains(e.at)) {
        const TimePoint clipped = clamp_into(e.at, monitoring_win);
        audit.defect(n, DefectClass::kOutOfWindowTimestamp,
                     DefectAction::kRepaired,
                     "event at " + std::to_string(e.at) +
                         " clipped into monitoring coverage");
        e.at = clipped;
      }
      bool cascaded = false;
      const auto id = resolve_server(audit, n, *server, &cascaded);
      if (!id) continue;
      e.server = *id;
      db.add_power_event(e);
      audit.keep();
    }
  }

  // ---- snapshots.csv ----
  {
    FileAuditor audit(report, kSnapshotsFile);
    auto in = open_table(directory, kSnapshotsFile);
    CsvReader r(in);
    expect_header(r, snapshots_header(), directory + "/" + kSnapshotsFile);
    const int months = ticket_win.month_count();
    while (r.read_row(row)) {
      const std::size_t n = audit.next_row();
      if (auto defect = check_arity(row, 4)) {
        audit.defect(n, defect->cls, DefectAction::kQuarantined,
                     defect->detail);
        continue;
      }
      const auto server = try_int(row[0]);
      const auto month = try_int(row[1]);
      const auto consolidation = try_int(row[3]);
      const auto box = row[2].empty() ? std::optional<std::int64_t>(-1)
                                      : try_int(row[2]);
      if (!server || !month || !consolidation || !box) {
        audit.defect(n, DefectClass::kUnparseableField,
                     DefectAction::kQuarantined,
                     "snapshot field failed to parse");
        continue;
      }
      if (*consolidation < 1) {
        audit.defect(n, DefectClass::kUnparseableField,
                     DefectAction::kQuarantined,
                     "consolidation " + std::to_string(*consolidation) +
                         " below 1");
        continue;
      }
      if (*month < 0 || *month >= months) {
        audit.defect(n, DefectClass::kOutOfWindowTimestamp,
                     DefectAction::kQuarantined,
                     "month " + std::to_string(*month) +
                         " outside the observation year");
        continue;
      }
      bool cascaded = false;
      const auto id = resolve_server(audit, n, *server, &cascaded);
      if (!id) continue;
      MonthlySnapshot s;
      s.server = *id;
      s.month = static_cast<int>(*month);
      if (*box >= 0) s.box = BoxId{static_cast<std::int32_t>(*box)};
      s.consolidation = static_cast<int>(*consolidation);
      db.add_monthly_snapshot(s);
      audit.keep();
    }
  }

  db.finalize();

  // Metric families are emitted complete (add(0) for absent classes), so a
  // clean run and a dirty run export the same set of label values.
  for (DefectClass cls : kAllDefectClasses) {
    obs::counter("fa.sanitize.defects",
                 {{"class", std::string(trace::to_string(cls))}})
        .add(report.count(cls));
  }
  obs::counter("fa.sanitize.repaired").add(report.repaired());
  obs::counter("fa.sanitize.quarantined").add(report.quarantined());
  obs::counter("fa.sanitize.cascade_drops").add(report.cascade_drops);
  return result;
}

}  // namespace fa::trace
