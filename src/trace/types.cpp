#include "src/trace/types.h"

#include "src/util/error.h"

namespace fa::trace {

std::string_view to_string(MachineType type) {
  switch (type) {
    case MachineType::kPhysical:
      return "PM";
    case MachineType::kVirtual:
      return "VM";
  }
  throw Error("to_string: invalid MachineType");
}

MachineType machine_type_from_string(std::string_view s) {
  if (s == "PM") return MachineType::kPhysical;
  if (s == "VM") return MachineType::kVirtual;
  throw Error("machine_type_from_string: invalid value '" + std::string(s) +
              "'");
}

std::string_view subsystem_name(Subsystem sys) {
  static constexpr std::array<std::string_view, kSubsystemCount> kNames = {
      "Sys I", "Sys II", "Sys III", "Sys IV", "Sys V"};
  require(sys < kSubsystemCount, "subsystem_name: index out of range");
  return kNames[sys];
}

std::string_view to_string(FailureClass c) {
  switch (c) {
    case FailureClass::kHardware:
      return "hardware";
    case FailureClass::kNetwork:
      return "network";
    case FailureClass::kPower:
      return "power";
    case FailureClass::kReboot:
      return "reboot";
    case FailureClass::kSoftware:
      return "software";
    case FailureClass::kOther:
      return "other";
  }
  throw Error("to_string: invalid FailureClass");
}

FailureClass failure_class_from_string(std::string_view s) {
  for (FailureClass c : kAllFailureClasses) {
    if (to_string(c) == s) return c;
  }
  throw Error("failure_class_from_string: invalid value '" + std::string(s) +
              "'");
}

}  // namespace fa::trace
