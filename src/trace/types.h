// Core vocabulary types of the failure dataset (Section III of the paper):
// machine types, the five datacenter subsystems, the six failure classes, and
// strongly typed record ids.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace fa::trace {

enum class MachineType : std::uint8_t {
  kPhysical = 0,
  kVirtual = 1,
};

inline constexpr int kMachineTypeCount = 2;

std::string_view to_string(MachineType type);
MachineType machine_type_from_string(std::string_view s);

// The five commercial datacenter subsystems ("Sys I" .. "Sys V").
using Subsystem = std::uint8_t;
inline constexpr int kSubsystemCount = 5;
std::string_view subsystem_name(Subsystem sys);

// The six resolution-based crash classes of Section III-A.
enum class FailureClass : std::uint8_t {
  kHardware = 0,
  kNetwork = 1,
  kPower = 2,
  kReboot = 3,
  kSoftware = 4,
  kOther = 5,
};

inline constexpr int kFailureClassCount = 6;
// The five "classified" classes, excluding kOther (Fig. 1 excludes "other").
inline constexpr std::array<FailureClass, 5> kClassifiedFailureClasses = {
    FailureClass::kHardware, FailureClass::kNetwork, FailureClass::kPower,
    FailureClass::kReboot, FailureClass::kSoftware};
inline constexpr std::array<FailureClass, 6> kAllFailureClasses = {
    FailureClass::kHardware, FailureClass::kNetwork, FailureClass::kPower,
    FailureClass::kReboot,   FailureClass::kSoftware, FailureClass::kOther};

std::string_view to_string(FailureClass c);
FailureClass failure_class_from_string(std::string_view s);

// Strongly typed ids. Distinct tag types prevent cross-assignment between,
// say, a server id and a ticket id in the join-heavy analysis code.
template <typename Tag>
struct Id {
  std::int32_t value = -1;

  constexpr bool valid() const { return value >= 0; }
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct ServerTag {};
struct TicketTag {};
struct IncidentTag {};
struct BoxTag {};

using ServerId = Id<ServerTag>;
using TicketId = Id<TicketTag>;
using IncidentId = Id<IncidentTag>;
using BoxId = Id<BoxTag>;

}  // namespace fa::trace

// Hash support so ids can key unordered_map in the analysis joins.
template <typename Tag>
struct std::hash<fa::trace::Id<Tag>> {
  std::size_t operator()(fa::trace::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
