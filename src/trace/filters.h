// Composable ticket filters: the small query language library consumers use
// to slice a trace before handing it to the analysis functions.
#pragma once

#include <optional>
#include <vector>

#include "src/trace/database.h"

namespace fa::trace {

class TicketFilter {
 public:
  TicketFilter() = default;

  // All predicates are conjunctive; unset predicates match everything.
  TicketFilter& crash_only(bool value = true);
  TicketFilter& subsystem(Subsystem sys);
  TicketFilter& machine_type(MachineType type);
  // Tickets opened within [begin, end).
  TicketFilter& opened_between(TimePoint begin, TimePoint end);
  // Minimum repair duration.
  TicketFilter& repair_at_least(Duration duration);
  TicketFilter& server(ServerId id);

  bool matches(const TraceDatabase& db, const Ticket& ticket) const;

  // All matching tickets, in table order.
  std::vector<const Ticket*> apply(const TraceDatabase& db) const;
  // Filter an existing selection (e.g. pipeline.failures()).
  std::vector<const Ticket*> apply(
      const TraceDatabase& db,
      std::span<const Ticket* const> tickets) const;

 private:
  bool crash_only_ = false;
  std::optional<Subsystem> subsystem_;
  std::optional<MachineType> machine_type_;
  std::optional<TimePoint> opened_begin_;
  std::optional<TimePoint> opened_end_;
  std::optional<Duration> min_repair_;
  std::optional<ServerId> server_;
};

}  // namespace fa::trace
