// Composable ticket filters: the small query language library consumers use
// to slice a trace before handing it to the analysis functions.
#pragma once

#include <optional>
#include <vector>

#include "src/trace/columnar_io.h"
#include "src/trace/database.h"

namespace fa::trace {

class TicketFilter {
 public:
  TicketFilter() = default;

  // All predicates are conjunctive; unset predicates match everything.
  TicketFilter& crash_only(bool value = true);
  TicketFilter& subsystem(Subsystem sys);
  TicketFilter& machine_type(MachineType type);
  // Tickets opened within [begin, end).
  TicketFilter& opened_between(TimePoint begin, TimePoint end);
  // Minimum repair duration.
  TicketFilter& repair_at_least(Duration duration);
  TicketFilter& server(ServerId id);

  bool matches(const TraceDatabase& db, const Ticket& ticket) const;

  // All matching tickets, in table order.
  std::vector<const Ticket*> apply(const TraceDatabase& db) const;
  // Filter an existing selection (e.g. pipeline.failures()).
  std::vector<const Ticket*> apply(
      const TraceDatabase& db,
      std::span<const Ticket* const> tickets) const;

  // ---- columnar predicate pushdown ----

  // True unless the footer min/max stats of a ticket chunk prove no row can
  // match: the opened range misses [opened_begin, opened_end), the server-id
  // range misses a server() predicate, every row is non-crash under
  // crash_only(), the subsystem range misses a subsystem() predicate, or
  // even the widest possible repair time (max closed - min opened) is below
  // repair_at_least(). Conservative: never skips a matching chunk.
  bool chunk_may_match(const columnar::ChunkInfo& info) const;

  // Scans the ticket table of a columnar file chunk-at-a-time, skipping
  // chunks via chunk_may_match and materializing matching tickets only.
  // Skipped/scanned chunk counts land in the deterministic counters
  // fa.trace.pushdown.chunks_skipped / .chunks_scanned. A machine_type()
  // predicate reads the servers table once (one byte of state per server);
  // everything else needs no server-side state at all.
  std::vector<Ticket> scan_columnar(const ChunkReader& reader) const;

 private:
  bool crash_only_ = false;
  std::optional<Subsystem> subsystem_;
  std::optional<MachineType> machine_type_;
  std::optional<TimePoint> opened_begin_;
  std::optional<TimePoint> opened_end_;
  std::optional<Duration> min_repair_;
  std::optional<ServerId> server_;
};

}  // namespace fa::trace
