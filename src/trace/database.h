// In-memory trace database.
//
// Models the paper's situation of several disparate data sources (inventory,
// ticketing, resource monitoring) that must be joined by server id before
// any analysis can happen. The analysis layer only ever consumes this type,
// so it runs unchanged on simulated traces or on real exports loaded via
// fa::trace::load_database().
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "src/trace/records.h"
#include "src/trace/types.h"
#include "src/util/sim_time.h"

namespace fa::trace {

class TraceDatabase {
 public:
  TraceDatabase();

  // ---- construction (simulator / CSV loader) ----
  // Assigns and returns the record id.
  ServerId add_server(ServerRecord record);
  TicketId add_ticket(Ticket ticket);
  void add_weekly_usage(WeeklyUsage usage);
  void add_power_event(PowerEvent event);
  void add_monthly_snapshot(MonthlySnapshot snapshot);
  // Pre-sizes the table vectors for loaders that know row counts up front
  // (the columnar footer carries them; CSV does not).
  void reserve(std::size_t servers, std::size_t tickets,
               std::size_t weekly_usage, std::size_t power_events,
               std::size_t snapshots);
  // Allocates a fresh incident id (tickets sharing one incident share it).
  IncidentId new_incident();

  // Overrides the observation windows (defaults are the paper's 2012-2013
  // windows). Real trace exports carry their own spans; must be called
  // before finalize(). The on/off tracking window must lie within the
  // ticket window, and the ticket window within monitoring coverage.
  void set_windows(ObservationWindow ticket, ObservationWindow monitoring,
                   ObservationWindow onoff_tracking);

  // Validates referential integrity and builds per-server indexes. Must be
  // called once after construction; queries throw before finalization.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- observation windows ----
  // The failure/ticket observation year.
  const ObservationWindow& window() const { return window_; }
  // The (longer) monitoring coverage used for VM ages and usage.
  const ObservationWindow& monitoring() const { return monitoring_; }
  // The fine-grained power-state tracking period (15-min samples).
  const ObservationWindow& onoff_tracking() const { return onoff_; }

  // ---- whole-table access ----
  const std::vector<ServerRecord>& servers() const { return servers_; }
  const std::vector<Ticket>& tickets() const { return tickets_; }

  // ---- point lookups ----
  const ServerRecord& server(ServerId id) const;
  const Ticket& ticket(TicketId id) const;

  // ---- filtered views ----
  // All crash tickets (the paper's "server failures").
  std::vector<const Ticket*> crash_tickets() const;
  std::vector<const Ticket*> crash_tickets_for(ServerId id) const;
  std::vector<ServerId> servers_of(MachineType type) const;
  std::vector<ServerId> servers_of(MachineType type, Subsystem sys) const;
  std::size_t server_count(MachineType type) const;
  std::size_t server_count(MachineType type, Subsystem sys) const;
  std::size_t ticket_count(Subsystem sys) const;

  // Crash tickets grouped by incident id (spatial-dependency analysis).
  std::vector<std::vector<const Ticket*>> incidents() const;

  // ---- monitoring DB views (sorted by time/week/month) ----
  std::span<const WeeklyUsage> weekly_usage_for(ServerId id) const;
  std::span<const PowerEvent> power_events_for(ServerId id) const;
  std::span<const MonthlySnapshot> snapshots_for(ServerId id) const;

  // Expands power events into the 15-min boolean series the paper's
  // monitoring DB records, over [window.begin, window.end).
  std::vector<bool> power_series_for(ServerId id,
                                     const ObservationWindow& window) const;

  // Consolidation level of a VM's box in the month containing t, or 0 when
  // no snapshot covers t.
  int consolidation_at(ServerId id, TimePoint t) const;

 private:
  void require_finalized() const;

  ObservationWindow window_;
  ObservationWindow monitoring_;
  ObservationWindow onoff_;
  std::vector<ServerRecord> servers_;
  std::vector<Ticket> tickets_;
  std::vector<WeeklyUsage> weekly_usage_;
  std::vector<PowerEvent> power_events_;
  std::vector<MonthlySnapshot> snapshots_;
  std::int32_t next_incident_ = 0;
  bool finalized_ = false;

  // Index structures built by finalize(). The row vectors above are sorted
  // by (server, time) so the spans below can reference contiguous ranges.
  std::unordered_map<ServerId, std::pair<std::size_t, std::size_t>>
      usage_ranges_;
  std::unordered_map<ServerId, std::pair<std::size_t, std::size_t>>
      power_ranges_;
  std::unordered_map<ServerId, std::pair<std::size_t, std::size_t>>
      snapshot_ranges_;
  std::unordered_map<ServerId, std::vector<std::size_t>> crash_by_server_;
};

}  // namespace fa::trace
