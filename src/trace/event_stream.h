// Streaming event delivery interface — the ingestion-side counterpart of
// TraceWriter (trace_writer.h).
//
// Where TraceWriter lets the simulator *produce* a trace table by table, a
// StreamSink lets a consumer *receive* the trace as one merged event stream
// in timestamp order, the shape a live ticketing/monitoring feed would have.
// The online-detection layer (src/detect/) implements this interface with
// incremental estimators whose memory is bounded by the sliding window, so
// arbitrarily long streams never materialize a TraceDatabase.
//
// Contract (enforced by the emitters in src/sim/stream.h):
//   * begin(meta) is called exactly once, before any event;
//   * events arrive in non-decreasing `at` order (ties broken by kind, then
//     record identity, so replays are byte-reproducible);
//   * finish(stream_end) is called exactly once, after the last event, with
//     stream_end >= every delivered timestamp.
// Sinks that tolerate disordered feeds (e.g. OnlineDetector's reorder
// buffer) may relax the ordering clause; the contract above is what the
// simulator-driven emitters guarantee.
#pragma once

#include <array>
#include <cstddef>

#include "src/trace/records.h"
#include "src/trace/types.h"
#include "src/util/sim_time.h"

namespace fa::trace {

enum class StreamEventKind : std::uint8_t {
  kTicket = 0,  // a ticket was opened (crash or background)
  kUsage = 1,   // a weekly usage average became available (week end)
};

// One element of the merged feed. Exactly one payload is meaningful,
// selected by `kind`; `machine_type` is denormalized from the inventory so
// sinks can stratify by PM/VM without holding the server table.
struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kTicket;
  TimePoint at = 0;  // ticket opening time / usage availability time
  MachineType machine_type = MachineType::kPhysical;

  Ticket ticket;     // valid when kind == kTicket
  WeeklyUsage usage; // valid when kind == kUsage
};

// Stream header: the population denominators and observation window a sink
// needs to turn event counts into rates. Mirrors what a tenant would
// configure when registering a fleet with the ingestion service.
struct StreamMeta {
  ObservationWindow window;  // the period the stream covers
  std::size_t server_count = 0;
  std::array<std::size_t, kMachineTypeCount> servers_by_type{};
  std::array<std::size_t, kSubsystemCount> servers_by_subsystem{};
};

class StreamSink {
 public:
  virtual ~StreamSink() = default;

  virtual void begin(const StreamMeta& meta) = 0;
  virtual void on_event(const StreamEvent& event) = 0;
  // `stream_end` is the time the feed stopped — for a complete trace the
  // window end, for a tenant that disconnected mid-window the cutoff.
  virtual void finish(TimePoint stream_end) = 0;
};

}  // namespace fa::trace
