#include "src/trace/filters.h"

#include "src/obs/metrics.h"

namespace fa::trace {

TicketFilter& TicketFilter::crash_only(bool value) {
  crash_only_ = value;
  return *this;
}

TicketFilter& TicketFilter::subsystem(Subsystem sys) {
  subsystem_ = sys;
  return *this;
}

TicketFilter& TicketFilter::machine_type(MachineType type) {
  machine_type_ = type;
  return *this;
}

TicketFilter& TicketFilter::opened_between(TimePoint begin, TimePoint end) {
  opened_begin_ = begin;
  opened_end_ = end;
  return *this;
}

TicketFilter& TicketFilter::repair_at_least(Duration duration) {
  min_repair_ = duration;
  return *this;
}

TicketFilter& TicketFilter::server(ServerId id) {
  server_ = id;
  return *this;
}

bool TicketFilter::matches(const TraceDatabase& db,
                           const Ticket& ticket) const {
  if (crash_only_ && !ticket.is_crash) return false;
  if (subsystem_ && ticket.subsystem != *subsystem_) return false;
  if (machine_type_) {
    if (!ticket.server.valid()) return false;
    if (db.server(ticket.server).type != *machine_type_) return false;
  }
  if (opened_begin_ && ticket.opened < *opened_begin_) return false;
  if (opened_end_ && ticket.opened >= *opened_end_) return false;
  if (min_repair_ && ticket.repair_time() < *min_repair_) return false;
  if (server_ && ticket.server != *server_) return false;
  return true;
}

std::vector<const Ticket*> TicketFilter::apply(
    const TraceDatabase& db) const {
  std::vector<const Ticket*> out;
  for (const Ticket& t : db.tickets()) {
    if (matches(db, t)) out.push_back(&t);
  }
  return out;
}

std::vector<const Ticket*> TicketFilter::apply(
    const TraceDatabase& db, std::span<const Ticket* const> tickets) const {
  std::vector<const Ticket*> out;
  for (const Ticket* t : tickets) {
    if (matches(db, *t)) out.push_back(t);
  }
  return out;
}

bool TicketFilter::chunk_may_match(const columnar::ChunkInfo& info) const {
  using namespace columnar::col;
  const auto& opened = info.columns[kTicketOpened].stats;
  if (opened.has_minmax) {
    if (opened_begin_ && opened.max < *opened_begin_) return false;
    if (opened_end_ && opened.min >= *opened_end_) return false;
  }
  const auto& server = info.columns[kTicketServer].stats;
  if (server_ && server.has_minmax &&
      (server_->value < server.min || server_->value > server.max)) {
    return false;
  }
  const auto& crash = info.columns[kTicketIsCrash].stats;
  if (crash_only_ && crash.has_minmax && crash.max == 0) return false;
  const auto& sys = info.columns[kTicketSubsystem].stats;
  if (subsystem_ && sys.has_minmax &&
      (*subsystem_ < sys.min || *subsystem_ > sys.max)) {
    return false;
  }
  const auto& closed = info.columns[kTicketClosed].stats;
  if (min_repair_ && opened.has_minmax && closed.has_minmax &&
      closed.max - opened.min < *min_repair_) {
    return false;
  }
  return true;
}

std::vector<Ticket> TicketFilter::scan_columnar(
    const ChunkReader& reader) const {
  static obs::Counter& skipped =
      obs::counter("fa.trace.pushdown.chunks_skipped");
  static obs::Counter& scanned =
      obs::counter("fa.trace.pushdown.chunks_scanned");

  // A machine-type predicate is the one row check that needs server-side
  // context; gather just the types (one byte per server) in a single pass.
  std::vector<std::uint8_t> server_types;
  if (machine_type_) {
    server_types.reserve(reader.row_count(columnar::Table::kServers));
    const std::size_t chunks = reader.chunk_count(columnar::Table::kServers);
    for (std::size_t i = 0; i < chunks; ++i) {
      const columnar::ChunkView view =
          reader.chunk(columnar::Table::kServers, i);
      const auto types = view.column(columnar::col::kServerType).u8_span();
      server_types.insert(server_types.end(), types.begin(), types.end());
    }
  }

  std::vector<Ticket> out;
  std::int64_t first_row = 0;
  const std::size_t chunks = reader.chunk_count(columnar::Table::kTickets);
  for (std::size_t i = 0; i < chunks; ++i) {
    const columnar::ChunkInfo& info =
        reader.chunk_info(columnar::Table::kTickets, i);
    if (!chunk_may_match(info)) {
      skipped.add(1);
      first_row += info.rows;
      continue;
    }
    scanned.add(1);
    const columnar::ChunkView view =
        reader.chunk(columnar::Table::kTickets, i);
    for (std::uint32_t r = 0; r < view.rows(); ++r) {
      using namespace columnar::col;
      // Cheap column probes first; decode the full row (strings) last.
      if (crash_only_ && view.column(kTicketIsCrash).int_at(r) == 0) continue;
      if (subsystem_ &&
          view.column(kTicketSubsystem).int_at(r) != *subsystem_) {
        continue;
      }
      const TimePoint opened = view.column(kTicketOpened).int_at(r);
      if (opened_begin_ && opened < *opened_begin_) continue;
      if (opened_end_ && opened >= *opened_end_) continue;
      const auto server = static_cast<std::int32_t>(
          view.column(kTicketServer).int_at(r));
      if (server_ && server != server_->value) continue;
      if (min_repair_ &&
          view.column(kTicketClosed).int_at(r) - opened < *min_repair_) {
        continue;
      }
      if (machine_type_) {
        if (server < 0 ||
            static_cast<std::size_t>(server) >= server_types.size()) {
          continue;
        }
        if (static_cast<MachineType>(server_types[server]) !=
            *machine_type_) {
          continue;
        }
      }
      out.push_back(decode_ticket(view, r, first_row));
    }
    first_row += info.rows;
  }
  return out;
}

}  // namespace fa::trace
