#include "src/trace/filters.h"

namespace fa::trace {

TicketFilter& TicketFilter::crash_only(bool value) {
  crash_only_ = value;
  return *this;
}

TicketFilter& TicketFilter::subsystem(Subsystem sys) {
  subsystem_ = sys;
  return *this;
}

TicketFilter& TicketFilter::machine_type(MachineType type) {
  machine_type_ = type;
  return *this;
}

TicketFilter& TicketFilter::opened_between(TimePoint begin, TimePoint end) {
  opened_begin_ = begin;
  opened_end_ = end;
  return *this;
}

TicketFilter& TicketFilter::repair_at_least(Duration duration) {
  min_repair_ = duration;
  return *this;
}

TicketFilter& TicketFilter::server(ServerId id) {
  server_ = id;
  return *this;
}

bool TicketFilter::matches(const TraceDatabase& db,
                           const Ticket& ticket) const {
  if (crash_only_ && !ticket.is_crash) return false;
  if (subsystem_ && ticket.subsystem != *subsystem_) return false;
  if (machine_type_) {
    if (!ticket.server.valid()) return false;
    if (db.server(ticket.server).type != *machine_type_) return false;
  }
  if (opened_begin_ && ticket.opened < *opened_begin_) return false;
  if (opened_end_ && ticket.opened >= *opened_end_) return false;
  if (min_repair_ && ticket.repair_time() < *min_repair_) return false;
  if (server_ && ticket.server != *server_) return false;
  return true;
}

std::vector<const Ticket*> TicketFilter::apply(
    const TraceDatabase& db) const {
  std::vector<const Ticket*> out;
  for (const Ticket& t : db.tickets()) {
    if (matches(db, t)) out.push_back(&t);
  }
  return out;
}

std::vector<const Ticket*> TicketFilter::apply(
    const TraceDatabase& db, std::span<const Ticket* const> tickets) const {
  std::vector<const Ticket*> out;
  for (const Ticket* t : tickets) {
    if (matches(db, *t)) out.push_back(t);
  }
  return out;
}

}  // namespace fa::trace
