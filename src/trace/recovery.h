// Crash-consistent salvage of ".fac" columnar trace files.
//
// A ColumnarWriter that dies before finish() — crash, full disk, kill —
// leaves a file with no valid footer, which strict readers reject outright.
// But every chunk that made it to disk is individually checksummed behind a
// self-describing frame header (columnar_format.h), so the data is not
// lost: scan_columnar_salvage() walks the frame stream from the file
// header, verifies each payload checksum, and stops at the first byte that
// is not an intact frame. recover_columnar() then re-encodes the salvaged
// longest-valid-prefix of rows into a fresh, canonical columnar file with
// a proper footer — a byte-exact row prefix of what the uncrashed writer
// would have produced.
//
// Writers can bound the damage further with WriterOptions::
// checkpoint_every_chunks: each checkpoint frame snapshots the full footer
// (windows + incident counter + directory), so recovery after a crash at
// row N restores writer metadata from the last checkpoint and loses at
// most the rows after it — at most one chunk per table when N == 1.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/columnar_io.h"

namespace fa::trace {

// One salvageable chunk found by the scan, in stream order.
struct SalvagedChunkRef {
  columnar::Table table;
  std::uint32_t rows = 0;
  std::uint64_t payload_offset = 0;  // absolute file offset of the payload
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

// Result of walking a (possibly truncated) columnar file's frame stream.
struct SalvageScan {
  std::string path;
  std::uint64_t file_size = 0;
  bool header_ok = false;       // file magic + supported version
  std::uint32_t version = 0;
  bool finished = false;        // strict open succeeded (valid footer)
  std::uint64_t valid_prefix_end = 0;  // first byte past the last intact frame
  std::string stop_reason;      // why the scan stopped there

  std::vector<SalvagedChunkRef> chunks;  // intact chunks, stream order
  std::array<std::uint64_t, columnar::kTableCount> rows_salvageable{};
  std::array<std::uint64_t, columnar::kTableCount> chunks_salvageable{};

  // Writer metadata recovered from the last intact checkpoint frame (or the
  // final footer when `finished`); paper defaults otherwise.
  bool checkpoint_seen = false;
  bool windows_recovered = false;
  ObservationWindow window;
  ObservationWindow monitoring;
  ObservationWindow onoff;
  std::int32_t next_incident = 0;
  std::uint32_t chunk_rows = 0;  // 0 when no checkpoint/footer was found

  std::uint64_t total_rows() const;
  std::uint64_t total_chunks() const { return chunks.size(); }
  // Human-readable salvage diagnostic (fa_trace info on a damaged file).
  std::string to_string() const;
};

// Walks `path` and reports what is salvageable. Never throws on damage —
// a file that is not even a columnar header yields header_ok == false with
// an empty chunk list. Throws io::IoError only when the file cannot be
// read at all.
SalvageScan scan_columnar_salvage(const std::string& path);

// What recover_columnar() did.
struct SalvageReport {
  SalvageScan scan;
  std::uint64_t rows_recovered = 0;
  std::uint64_t chunks_recovered = 0;
  std::string to_string() const;
};

// Salvages the longest valid prefix of `in` into a fresh columnar file at
// `out` (strict-readable, canonical layout: recover(recover(x)) ==
// recover(x)). Windows/incident counter come from the last checkpoint (or
// the footer of an already-finished file); chunk size from the same source,
// falling back to kDefaultChunkRows. Throws fa::Error when `in` has no
// salvageable columnar header at all.
SalvageReport recover_columnar(const std::string& in, const std::string& out);

}  // namespace fa::trace
