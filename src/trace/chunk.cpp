#include "src/trace/chunk.h"

#include "src/util/error.h"
#include "src/util/strings.h"

namespace fa::trace::columnar {
namespace {

constexpr std::size_t kBlockAlign = 8;

std::size_t padded(std::size_t size, std::size_t align = kBlockAlign) {
  return (size + align - 1) / align * align;
}

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + size);
}

void pad_to(std::vector<std::byte>& out, std::size_t align) {
  out.resize(padded(out.size(), align), std::byte{0});
}

bool int_like(Encoding e) {
  switch (e) {
    case Encoding::kInt64:
    case Encoding::kInt32:
    case Encoding::kUInt8:
    case Encoding::kOptInt32:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string_view table_name(Table table) {
  switch (table) {
    case Table::kServers: return "servers";
    case Table::kTickets: return "tickets";
    case Table::kWeeklyUsage: return "weekly_usage";
    case Table::kPowerEvents: return "power_events";
    case Table::kSnapshots: return "snapshots";
  }
  throw Error("unknown columnar table");
}

std::string_view encoding_name(Encoding encoding) {
  switch (encoding) {
    case Encoding::kInt64: return "i64";
    case Encoding::kInt32: return "i32";
    case Encoding::kUInt8: return "u8";
    case Encoding::kFloat64: return "f64";
    case Encoding::kOptFloat64: return "opt_f64";
    case Encoding::kOptInt32: return "opt_i32";
    case Encoding::kStringDict: return "str_dict";
  }
  throw Error("unknown columnar encoding");
}

const std::vector<ColumnSpec>& table_schema(Table table) {
  static const std::vector<ColumnSpec> servers = {
      {"type", Encoding::kUInt8},
      {"subsystem", Encoding::kUInt8},
      {"cpu_count", Encoding::kInt32},
      {"memory_gb", Encoding::kFloat64},
      {"disk_gb", Encoding::kOptFloat64},
      {"disk_count", Encoding::kOptInt32},
      {"host_box", Encoding::kInt32},
      {"first_record", Encoding::kInt64},
  };
  static const std::vector<ColumnSpec> tickets = {
      {"incident", Encoding::kInt32},
      {"server", Encoding::kInt32},
      {"subsystem", Encoding::kUInt8},
      {"is_crash", Encoding::kUInt8},
      {"true_class", Encoding::kUInt8},
      {"opened", Encoding::kInt64},
      {"closed", Encoding::kInt64},
      {"description", Encoding::kStringDict},
      {"resolution", Encoding::kStringDict},
  };
  static const std::vector<ColumnSpec> weekly_usage = {
      {"server", Encoding::kInt32},
      {"week", Encoding::kInt32},
      {"cpu_util", Encoding::kFloat64},
      {"mem_util", Encoding::kFloat64},
      {"disk_util", Encoding::kOptFloat64},
      {"net_kbps", Encoding::kOptFloat64},
  };
  static const std::vector<ColumnSpec> power_events = {
      {"server", Encoding::kInt32},
      {"at", Encoding::kInt64},
      {"powered_on", Encoding::kUInt8},
  };
  static const std::vector<ColumnSpec> snapshots = {
      {"server", Encoding::kInt32},
      {"month", Encoding::kInt32},
      {"box", Encoding::kInt32},
      {"consolidation", Encoding::kInt32},
  };
  switch (table) {
    case Table::kServers: return servers;
    case Table::kTickets: return tickets;
    case Table::kWeeklyUsage: return weekly_usage;
    case Table::kPowerEvents: return power_events;
    case Table::kSnapshots: return snapshots;
  }
  throw Error("unknown columnar table");
}

std::uint64_t fnv1a(const std::byte* data, std::size_t size) {
  std::uint64_t hash = 1469598103934665603ULL;
  std::size_t i = 0;
  // Word-wise FNV-1a: one xor/multiply per 8-byte word instead of per byte
  // (chunks are 8-aligned, so only the footer tail takes the byte loop).
  // Every byte still feeds the hash, so any single-byte flip changes it.
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    hash ^= word;
    hash *= 1099511628211ULL;
  }
  for (; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// ---- ChunkBuilder ----

ChunkBuilder::ChunkBuilder(Table table) : table_(table) {
  const auto& schema = table_schema(table);
  columns_.resize(schema.size());
  for (std::size_t i = 0; i < schema.size(); ++i) {
    columns_[i].encoding = schema[i].encoding;
  }
}

// The per-value append path runs once per cell of every saved trace, so the
// happy path must not construct error messages: checks branch to these cold
// [[noreturn]] helpers, which build the diagnostic only when a check fires.
void ChunkBuilder::fail_encoding(std::size_t index, Encoding expected) const {
  throw Error("columnar: column " + std::to_string(index) + " of " +
              std::string(table_name(table_)) + " expects encoding " +
              std::string(encoding_name(columns_[index].encoding)) +
              ", got " + std::string(encoding_name(expected)));
}

void ChunkBuilder::fail_row_incomplete() const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].size != rows_) {
      throw Error("columnar: row " + std::to_string(rows_ - 1) + " of " +
                  std::string(table_name(table_)) + " left column " +
                  std::string(table_schema(table_)[i].name) + " unset");
    }
  }
  throw Error("columnar: row completion check failed");
}

ChunkBuilder::Column& ChunkBuilder::column_for(std::size_t index,
                                               Encoding expected) {
  require(index < columns_.size(), "columnar: column index out of range");
  Column& c = columns_[index];
  if (c.encoding != expected) fail_encoding(index, expected);
  require(c.size == rows_, "columnar: column appended out of row order");
  ++c.size;
  return c;
}

ChunkBuilder::Column& ChunkBuilder::batch_column(std::size_t index) {
  require(index < columns_.size(), "columnar: column index out of range");
  Column& c = columns_[index];
  require(c.size == rows_, "columnar: batch fill on a column already advanced");
  return c;
}

std::uint32_t ChunkBuilder::dict_slot(Column& c, std::string_view v) {
  if (const auto it = c.dict_lookup.find(v); it != c.dict_lookup.end()) {
    return it->second;
  }
  const auto slot = static_cast<std::uint32_t>(c.dict.size());
  c.dict.emplace_back(v);
  c.dict_lookup.emplace(c.dict.back(), slot);
  return slot;
}

void ChunkBuilder::add_int(std::size_t column, std::int64_t v) {
  require(column < columns_.size(), "columnar: column index out of range");
  const Encoding e = columns_[column].encoding;
  require(e == Encoding::kInt64 || e == Encoding::kInt32 ||
              e == Encoding::kUInt8,
          "columnar: add_int on a non-integer column");
  Column& c = column_for(column, e);
  if (e == Encoding::kInt32) {
    require(v >= INT32_MIN && v <= INT32_MAX,
            "columnar: value out of int32 range");
  } else if (e == Encoding::kUInt8) {
    require(v >= 0 && v <= UINT8_MAX, "columnar: value out of uint8 range");
  }
  c.ints.push_back(v);
}

void ChunkBuilder::add_double(std::size_t column, double v) {
  column_for(column, Encoding::kFloat64).doubles.push_back(v);
}

void ChunkBuilder::add_opt_double(std::size_t column,
                                  const std::optional<double>& v) {
  Column& c = column_for(column, Encoding::kOptFloat64);
  c.present.push_back(v.has_value() ? 1 : 0);
  c.doubles.push_back(v.value_or(0.0));
}

void ChunkBuilder::add_opt_int(std::size_t column,
                               const std::optional<std::int32_t>& v) {
  Column& c = column_for(column, Encoding::kOptInt32);
  c.present.push_back(v.has_value() ? 1 : 0);
  c.ints.push_back(v.value_or(0));
}

void ChunkBuilder::add_string(std::size_t column, std::string_view v) {
  Column& c = column_for(column, Encoding::kStringDict);
  c.indices.push_back(dict_slot(c, v));
}

void ChunkBuilder::next_row() {
  ++rows_;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].size != rows_) fail_row_incomplete();
  }
}

void ChunkBuilder::advance_rows(std::size_t n) {
  rows_ += static_cast<std::uint32_t>(n);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].size != rows_) fail_row_incomplete();
  }
}

ChunkInfo ChunkBuilder::encode(std::vector<std::byte>& out) {
  require(out.size() % kBlockAlign == 0,
          "columnar: chunk output buffer not 8-aligned");
  ChunkInfo info;
  info.rows = rows_;
  info.offset = out.size();
  info.columns.resize(columns_.size());

  for (std::size_t ci = 0; ci < columns_.size(); ++ci) {
    Column& c = columns_[ci];
    ColumnBlockInfo& block = info.columns[ci];
    block.offset = out.size();

    auto stat_ints = [&](bool optional_col) {
      ColumnStats s;
      for (std::size_t r = 0; r < c.ints.size(); ++r) {
        if (optional_col && !c.present[r]) continue;
        if (!s.has_minmax) {
          s.has_minmax = true;
          s.min = s.max = c.ints[r];
        } else {
          s.min = std::min(s.min, c.ints[r]);
          s.max = std::max(s.max, c.ints[r]);
        }
      }
      return s;
    };

    auto write_bitmap = [&] {
      std::vector<std::uint8_t> bitmap(padded((rows_ + 7) / 8), 0);
      for (std::uint32_t r = 0; r < rows_; ++r) {
        if (c.present[r]) bitmap[r / 8] |= std::uint8_t(1u << (r % 8));
      }
      append_bytes(out, bitmap.data(), bitmap.size());
    };

    switch (c.encoding) {
      case Encoding::kInt64:
        append_bytes(out, c.ints.data(), c.ints.size() * sizeof(std::int64_t));
        block.stats = stat_ints(false);
        break;
      case Encoding::kInt32: {
        std::vector<std::int32_t> narrow(c.ints.begin(), c.ints.end());
        append_bytes(out, narrow.data(),
                     narrow.size() * sizeof(std::int32_t));
        block.stats = stat_ints(false);
        break;
      }
      case Encoding::kUInt8: {
        std::vector<std::uint8_t> narrow(c.ints.begin(), c.ints.end());
        append_bytes(out, narrow.data(), narrow.size());
        block.stats = stat_ints(false);
        break;
      }
      case Encoding::kFloat64:
        append_bytes(out, c.doubles.data(),
                     c.doubles.size() * sizeof(double));
        break;
      case Encoding::kOptFloat64:
        write_bitmap();
        append_bytes(out, c.doubles.data(),
                     c.doubles.size() * sizeof(double));
        break;
      case Encoding::kOptInt32: {
        write_bitmap();
        std::vector<std::int32_t> narrow(c.ints.begin(), c.ints.end());
        append_bytes(out, narrow.data(),
                     narrow.size() * sizeof(std::int32_t));
        block.stats = stat_ints(true);
        break;
      }
      case Encoding::kStringDict: {
        const auto dict_count = static_cast<std::uint32_t>(c.dict.size());
        block.extra = dict_count;
        append_bytes(out, &dict_count, sizeof(dict_count));
        std::vector<std::uint32_t> offsets;
        offsets.reserve(c.dict.size() + 1);
        std::uint32_t pos = 0;
        offsets.push_back(0);
        for (const std::string& s : c.dict) {
          require(s.size() <= UINT32_MAX - pos,
                  "columnar: dictionary blob exceeds 4 GiB");
          pos += static_cast<std::uint32_t>(s.size());
          offsets.push_back(pos);
        }
        append_bytes(out, offsets.data(),
                     offsets.size() * sizeof(std::uint32_t));
        for (const std::string& s : c.dict) {
          append_bytes(out, s.data(), s.size());
        }
        pad_to(out, 4);
        append_bytes(out, c.indices.data(),
                     c.indices.size() * sizeof(std::uint32_t));
        break;
      }
    }

    block.size = out.size() - block.offset;
    pad_to(out, kBlockAlign);

    if (!int_like(c.encoding)) block.stats = ColumnStats{};

    // Reset for the next chunk, keeping capacity.
    c.ints.clear();
    c.doubles.clear();
    c.present.clear();
    c.indices.clear();
    c.dict.clear();
    c.dict_lookup.clear();
    c.size = 0;
  }

  info.size = out.size() - info.offset;
  info.checksum = fnv1a(out.data() + info.offset, info.size);
  rows_ = 0;
  return info;
}

// ---- ColumnView ----

std::int64_t ColumnView::int_at(std::uint32_t row) const {
  switch (encoding_) {
    case Encoding::kInt64: {
      std::int64_t v;
      std::memcpy(&v, values_ + row * sizeof(v), sizeof(v));
      return v;
    }
    case Encoding::kInt32:
    case Encoding::kOptInt32: {
      std::int32_t v;
      std::memcpy(&v, values_ + row * sizeof(v), sizeof(v));
      return v;
    }
    case Encoding::kUInt8:
      return static_cast<std::int64_t>(
          static_cast<std::uint8_t>(values_[row]));
    default:
      throw Error("columnar: int_at on a non-integer column");
  }
}

double ColumnView::double_at(std::uint32_t row) const {
  require(encoding_ == Encoding::kFloat64 ||
              encoding_ == Encoding::kOptFloat64,
          "columnar: double_at on a non-double column");
  double v;
  std::memcpy(&v, values_ + row * sizeof(v), sizeof(v));
  return v;
}

bool ColumnView::present_at(std::uint32_t row) const {
  if (bitmap_ == nullptr) return true;
  const auto byte = static_cast<std::uint8_t>(bitmap_[row / 8]);
  return (byte >> (row % 8)) & 1u;
}

std::string_view ColumnView::string_at(std::uint32_t row) const {
  require(encoding_ == Encoding::kStringDict,
          "columnar: string_at on a non-dictionary column");
  const std::uint32_t slot = indices_[row];
  require(slot < dict_count_, "columnar: dictionary index out of range");
  return {dict_bytes_ + dict_offsets_[slot],
          dict_offsets_[slot + 1] - dict_offsets_[slot]};
}

std::span<const std::int64_t> ColumnView::i64_span() const {
  require(encoding_ == Encoding::kInt64, "columnar: not an int64 column");
  return {reinterpret_cast<const std::int64_t*>(values_), rows_};
}

std::span<const std::int32_t> ColumnView::i32_span() const {
  require(encoding_ == Encoding::kInt32 || encoding_ == Encoding::kOptInt32,
          "columnar: not an int32 column");
  return {reinterpret_cast<const std::int32_t*>(values_), rows_};
}

std::span<const std::uint8_t> ColumnView::u8_span() const {
  require(encoding_ == Encoding::kUInt8, "columnar: not a uint8 column");
  return {reinterpret_cast<const std::uint8_t*>(values_), rows_};
}

std::span<const double> ColumnView::f64_span() const {
  require(encoding_ == Encoding::kFloat64 ||
              encoding_ == Encoding::kOptFloat64,
          "columnar: not a double column");
  return {reinterpret_cast<const double*>(values_), rows_};
}

// ---- ChunkView ----

ChunkView::ChunkView(Table table, const ChunkInfo& info, const std::byte* base,
                     std::vector<std::byte> owned)
    : table_(table), rows_(info.rows), owned_(std::move(owned)) {
  if (!owned_.empty()) base = owned_.data();
  const auto& schema = table_schema(table);
  require(info.columns.size() == schema.size(),
          "columnar: chunk directory column count mismatch");
  columns_.resize(schema.size());
  for (std::size_t ci = 0; ci < schema.size(); ++ci) {
    const ColumnBlockInfo& block = info.columns[ci];
    require(block.offset >= info.offset &&
                block.offset + block.size <= info.offset + info.size,
            "columnar: column block escapes its chunk");
    const std::byte* p = base + (block.offset - info.offset);
    ColumnView& view = columns_[ci];
    view.encoding_ = schema[ci].encoding;
    view.rows_ = rows_;

    const std::size_t bitmap_bytes = padded((rows_ + 7) / 8);
    auto expect_size = [&](std::size_t want) {
      require(block.size == want,
              "columnar: column " + std::string(schema[ci].name) + " of " +
                  std::string(table_name(table)) + " has size " +
                  std::to_string(block.size) + " bytes, expected " +
                  std::to_string(want));
    };

    switch (schema[ci].encoding) {
      case Encoding::kInt64:
      case Encoding::kFloat64:
        expect_size(rows_ * 8ull);
        view.values_ = p;
        break;
      case Encoding::kInt32:
        expect_size(rows_ * 4ull);
        view.values_ = p;
        break;
      case Encoding::kUInt8:
        expect_size(rows_);
        view.values_ = p;
        break;
      case Encoding::kOptFloat64:
        expect_size(bitmap_bytes + rows_ * 8ull);
        view.bitmap_ = p;
        view.values_ = p + bitmap_bytes;
        break;
      case Encoding::kOptInt32:
        expect_size(bitmap_bytes + rows_ * 4ull);
        view.bitmap_ = p;
        view.values_ = p + bitmap_bytes;
        break;
      case Encoding::kStringDict: {
        require(block.size >= sizeof(std::uint32_t),
                "columnar: dictionary block truncated");
        std::uint32_t dict_count;
        std::memcpy(&dict_count, p, sizeof(dict_count));
        require(dict_count == block.extra,
                "columnar: dictionary cardinality disagrees with footer");
        const std::size_t offsets_bytes =
            (std::size_t(dict_count) + 1) * sizeof(std::uint32_t);
        require(block.size >= sizeof(std::uint32_t) + offsets_bytes,
                "columnar: dictionary offsets truncated");
        view.dict_count_ = dict_count;
        view.dict_offsets_ = reinterpret_cast<const std::uint32_t*>(
            p + sizeof(std::uint32_t));
        const std::size_t blob_start = sizeof(std::uint32_t) + offsets_bytes;
        const std::uint32_t blob_size = view.dict_offsets_[dict_count];
        const std::size_t indices_start =
            padded(blob_start + blob_size, 4);
        expect_size(indices_start + rows_ * sizeof(std::uint32_t));
        view.dict_bytes_ = reinterpret_cast<const char*>(p + blob_start);
        view.indices_ = reinterpret_cast<const std::uint32_t*>(
            p + indices_start);
        break;
      }
    }
  }
}

const ColumnView& ChunkView::column(std::size_t index) const {
  require(index < columns_.size(), "columnar: column index out of range");
  return columns_[index];
}

}  // namespace fa::trace::columnar
