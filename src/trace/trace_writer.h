// Streaming sink interface for trace generation.
//
// The simulator emits records through this interface instead of mutating a
// TraceDatabase directly, so the same generation code can either build the
// classic in-memory database (DatabaseTraceWriter) or stream chunks straight
// to a columnar file (ColumnarTraceWriter) with memory bounded by chunk
// size. The base class owns id assignment (server/ticket ids are contiguous
// append positions, incident ids a simple counter) and per-subsystem ticket
// tallies, so every sink agrees on ids and the simulator can emit its
// volume metrics without a database to query.
//
// Writers are not thread-safe: the simulator's parallel phases render into
// private slots and commit through the writer from their serial sections
// only, which is also what keeps emitted traces bit-identical at any
// --threads setting.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/trace/columnar_io.h"
#include "src/trace/database.h"
#include "src/trace/records.h"

namespace fa::trace {

class TraceWriter {
 public:
  virtual ~TraceWriter() = default;

  // Assign ids (contiguous append order) and forward to the sink.
  ServerId add_server(ServerRecord record);
  TicketId add_ticket(Ticket ticket);
  // Batch commit: assigns contiguous ids in span order (serially, so ids are
  // independent of the sink), then hands the whole batch to the sink, which
  // may encode it with column-level parallelism. Tickets are consumed.
  void add_tickets(std::span<Ticket> tickets);
  void add_weekly_usage(const WeeklyUsage& usage);
  void add_power_event(const PowerEvent& event);
  void add_monthly_snapshot(const MonthlySnapshot& snapshot);

  // Allocates a fresh incident id. Virtual so DatabaseTraceWriter can share
  // the database's own counter.
  virtual IncidentId new_incident();

  // Overrides the observation windows (defaults: the paper windows).
  virtual void set_windows(ObservationWindow ticket,
                           ObservationWindow monitoring,
                           ObservationWindow onoff_tracking) = 0;

  // Flushes sink state (columnar: pending chunks + footer). Must be the
  // last call; adding records afterwards is an error in the columnar sink.
  virtual void finish() = 0;

  // ---- emission tallies (valid at any point during generation) ----
  std::size_t server_count() const { return next_server_; }
  std::size_t ticket_count() const { return next_ticket_; }
  std::size_t ticket_count(Subsystem sys) const {
    return tickets_by_subsystem_[sys];
  }
  std::int32_t next_incident_value() const { return next_incident_; }

 protected:
  virtual void do_add_server(const ServerRecord& record) = 0;
  virtual void do_add_ticket(Ticket ticket) = 0;
  // Batch hook; the default forwards one ticket at a time.
  virtual void do_add_tickets(std::span<Ticket> tickets);
  virtual void do_add_weekly_usage(const WeeklyUsage& usage) = 0;
  virtual void do_add_power_event(const PowerEvent& event) = 0;
  virtual void do_add_monthly_snapshot(const MonthlySnapshot& snapshot) = 0;

 private:
  std::int32_t next_server_ = 0;
  std::int32_t next_ticket_ = 0;
  std::int32_t next_incident_ = 0;
  std::array<std::size_t, kSubsystemCount> tickets_by_subsystem_{};
};

// Sink building the classic in-memory TraceDatabase. finish() does NOT
// finalize the database — the caller decides when (and whether) to index.
class DatabaseTraceWriter final : public TraceWriter {
 public:
  explicit DatabaseTraceWriter(TraceDatabase& db) : db_(db) {}

  IncidentId new_incident() override { return db_.new_incident(); }
  void set_windows(ObservationWindow ticket, ObservationWindow monitoring,
                   ObservationWindow onoff_tracking) override {
    db_.set_windows(ticket, monitoring, onoff_tracking);
  }
  void finish() override {}

 protected:
  void do_add_server(const ServerRecord& record) override;
  void do_add_ticket(Ticket ticket) override;
  void do_add_tickets(std::span<Ticket> tickets) override;
  void do_add_weekly_usage(const WeeklyUsage& usage) override {
    db_.add_weekly_usage(usage);
  }
  void do_add_power_event(const PowerEvent& event) override {
    db_.add_power_event(event);
  }
  void do_add_monthly_snapshot(const MonthlySnapshot& snapshot) override {
    db_.add_monthly_snapshot(snapshot);
  }

 private:
  TraceDatabase& db_;
};

// Sink streaming chunks to a columnar file as records arrive; peak memory
// is one partial chunk per table regardless of fleet size.
class ColumnarTraceWriter final : public TraceWriter {
 public:
  explicit ColumnarTraceWriter(const std::string& path,
                               std::uint32_t chunk_rows = kDefaultChunkRows)
      : writer_(path, chunk_rows) {}
  ColumnarTraceWriter(const std::string& path, const WriterOptions& options)
      : writer_(path, options) {}
  // Streams through a caller-supplied file (fault injection, tests).
  explicit ColumnarTraceWriter(std::unique_ptr<io::WritableFile> file,
                               const WriterOptions& options = {})
      : writer_(std::move(file), options) {}

  void set_windows(ObservationWindow ticket, ObservationWindow monitoring,
                   ObservationWindow onoff_tracking) override {
    writer_.set_windows(ticket, monitoring, onoff_tracking);
  }
  void finish() override {
    writer_.set_next_incident(next_incident_value());
    writer_.finish();
  }

  // Valid after finish().
  const FileReport& report() const { return writer_.report(); }

 protected:
  void do_add_server(const ServerRecord& record) override {
    writer_.add_server(record);
  }
  void do_add_ticket(Ticket ticket) override { writer_.add_ticket(ticket); }
  void do_add_tickets(std::span<Ticket> tickets) override {
    writer_.add_tickets(tickets);
  }
  void do_add_weekly_usage(const WeeklyUsage& usage) override {
    writer_.add_weekly_usage(usage);
  }
  void do_add_power_event(const PowerEvent& event) override {
    writer_.add_power_event(event);
  }
  void do_add_monthly_snapshot(const MonthlySnapshot& snapshot) override {
    writer_.add_monthly_snapshot(snapshot);
  }

 private:
  ColumnarWriter writer_;
};

}  // namespace fa::trace
