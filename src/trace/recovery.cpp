#include "src/trace/recovery.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/trace/columnar_format.h"
#include "src/util/error.h"

namespace fa::trace {
namespace {

using columnar::ChunkInfo;
using columnar::ChunkView;
using columnar::Table;
using columnar::fnv1a;
using columnar::kTableCount;

obs::Counter& chunks_salvaged_counter() {
  static obs::Counter& c = obs::counter("fa.trace.recovery.chunks_salvaged");
  return c;
}
obs::Counter& rows_salvaged_counter() {
  static obs::Counter& c = obs::counter("fa.trace.recovery.rows_salvaged");
  return c;
}

std::string table_label(int t) {
  return std::string(columnar::table_name(columnar::kAllTables[t]));
}

}  // namespace

std::uint64_t SalvageScan::total_rows() const {
  std::uint64_t total = 0;
  for (int t = 0; t < kTableCount; ++t) total += rows_salvageable[t];
  return total;
}

std::string SalvageScan::to_string() const {
  std::string out = "salvage scan: " + path + "\n";
  out += "  file size: " + std::to_string(file_size) + " bytes\n";
  if (!header_ok) {
    out += "  header: INVALID (" + stop_reason + ")\n";
    return out;
  }
  out += "  header: ok (version " + std::to_string(version) + ")\n";
  out += finished ? "  state: finished (clean footer)\n"
                  : "  state: unfinished or truncated (no valid footer)\n";
  out += "  valid prefix: " + std::to_string(valid_prefix_end) +
         " bytes; scan stopped: " + stop_reason + "\n";
  for (int t = 0; t < kTableCount; ++t) {
    if (chunks_salvageable[t] == 0) continue;
    out += "  " + table_label(t) + ": " +
           std::to_string(chunks_salvageable[t]) + " chunk(s), " +
           std::to_string(rows_salvageable[t]) + " row(s) salvageable\n";
  }
  if (!chunks.empty()) {
    const SalvagedChunkRef& last = chunks.back();
    out += "  last valid chunk: " +
           std::string(columnar::table_name(last.table)) + " at offset " +
           std::to_string(last.payload_offset) + " (" +
           std::to_string(last.rows) + " rows)\n";
  }
  out += "  estimated recoverable rows: " + std::to_string(total_rows()) +
         "\n";
  out += checkpoint_seen
             ? "  checkpoint: found (windows + incident counter recovered)\n"
             : "  checkpoint: none before the damage\n";
  return out;
}

std::string SalvageReport::to_string() const {
  return scan.to_string() + "recovered: " + std::to_string(rows_recovered) +
         " row(s) in " + std::to_string(chunks_recovered) + " chunk(s)\n";
}

SalvageScan scan_columnar_salvage(const std::string& path) {
  obs::Span span("trace.recovery.scan");
  SalvageScan scan;
  scan.path = path;

  io::CheckedReader reader(std::make_unique<io::PosixReadableFile>(path));
  scan.file_size = reader.size();

  // A clean tail means the writer finished: take metadata from the real
  // footer and treat the whole data region as the valid prefix.
  try {
    ChunkReader finished(path, /*use_mmap=*/false);
    scan.finished = true;
    scan.windows_recovered = true;
    scan.window = finished.window();
    scan.monitoring = finished.monitoring();
    scan.onoff = finished.onoff_tracking();
    scan.next_incident = finished.next_incident();
    scan.chunk_rows = finished.chunk_rows();
  } catch (const Error&) {
    scan.finished = false;
  }

  if (scan.file_size < format::kHeaderBytes) {
    scan.stop_reason = "file smaller than the 8-byte header";
    return scan;
  }
  std::array<std::byte, format::kHeaderBytes> header;
  reader.read_at(0, header.data(), header.size());
  if (std::memcmp(header.data(), kColumnarMagic.data(), 4) != 0) {
    scan.stop_reason = "not a columnar trace file (bad magic)";
    return scan;
  }
  std::memcpy(&scan.version, header.data() + 4, sizeof(scan.version));
  if (scan.version != kColumnarVersion) {
    scan.stop_reason = "unsupported format version " +
                       std::to_string(scan.version) + " (expected " +
                       std::to_string(kColumnarVersion) +
                       "; pre-frame versions are not salvageable)";
    return scan;
  }
  scan.header_ok = true;
  scan.valid_prefix_end = format::kHeaderBytes;

  std::uint64_t cursor = format::kHeaderBytes;
  std::vector<std::byte> payload;
  std::array<std::byte, format::kFrameBytes> frame_bytes;
  while (true) {
    if (cursor + format::kFrameBytes > scan.file_size) {
      scan.stop_reason = scan.finished && !scan.chunks.empty()
                             ? "reached the footer"
                             : "no room for another frame header";
      break;
    }
    reader.read_at(cursor, frame_bytes.data(), frame_bytes.size());
    format::FrameHeader frame;
    if (!format::parse_frame_header(frame_bytes.data(), frame)) {
      scan.stop_reason = scan.finished
                             ? "reached the footer"
                             : "invalid frame header at offset " +
                                   std::to_string(cursor);
      break;
    }
    const std::uint64_t payload_offset = cursor + format::kFrameBytes;
    if (frame.payload_size > scan.file_size - payload_offset) {
      scan.stop_reason = "frame at offset " + std::to_string(cursor) +
                         " escapes the file (truncated mid-write)";
      break;
    }
    payload.resize(frame.payload_size);
    reader.read_at(payload_offset, payload.data(), payload.size());
    if (fnv1a(payload.data(), payload.size()) != frame.checksum) {
      scan.stop_reason = "payload checksum mismatch at offset " +
                         std::to_string(cursor) + " (torn or corrupt write)";
      break;
    }
    if (frame.kind == format::FrameKind::kCheckpoint) {
      try {
        const format::FooterImage image = format::parse_footer_payload(
            payload.data(), payload.size(), cursor, path);
        scan.checkpoint_seen = true;
        scan.windows_recovered = true;
        scan.window = image.window;
        scan.monitoring = image.monitoring;
        scan.onoff = image.onoff;
        scan.next_incident =
            std::max(scan.next_incident, image.next_incident);
        scan.chunk_rows = image.chunk_rows;
      } catch (const Error&) {
        scan.stop_reason = "corrupt checkpoint at offset " +
                           std::to_string(cursor);
        break;
      }
    } else {
      SalvagedChunkRef ref;
      ref.table = static_cast<Table>(frame.table);
      ref.rows = frame.rows;
      ref.payload_offset = payload_offset;
      ref.payload_size = frame.payload_size;
      ref.checksum = frame.checksum;
      const auto t = static_cast<std::size_t>(ref.table);
      scan.rows_salvageable[t] += ref.rows;
      ++scan.chunks_salvageable[t];
      scan.chunks.push_back(ref);
    }
    cursor = format::padded(payload_offset + frame.payload_size, 8);
    scan.valid_prefix_end = cursor;
  }

  // Without a checkpoint the writer's chunk size is still recoverable:
  // mid-stream chunks are cut at exactly chunk_rows rows (partial chunks
  // exist only right before a footer), so the largest salvaged chunk is
  // the writer's chunk size.
  if (scan.chunk_rows == 0) {
    for (const SalvagedChunkRef& ref : scan.chunks) {
      scan.chunk_rows = std::max(scan.chunk_rows, ref.rows);
    }
  }
  return scan;
}

SalvageReport recover_columnar(const std::string& in, const std::string& out) {
  obs::Span span("trace.recovery.recover");
  SalvageReport report;
  report.scan = scan_columnar_salvage(in);
  const SalvageScan& scan = report.scan;
  require(scan.header_ok, "columnar: " + in + " cannot be salvaged: " +
                              scan.stop_reason);

  WriterOptions options;
  options.chunk_rows =
      scan.chunk_rows > 0 ? scan.chunk_rows : kDefaultChunkRows;
  // No checkpoints in the output: recovery emits the canonical layout, so
  // recovering an already-recovered file reproduces it byte for byte.
  ColumnarWriter writer(out, options);
  if (scan.windows_recovered) {
    writer.set_windows(scan.window, scan.monitoring, scan.onoff);
  }

  io::CheckedReader reader(std::make_unique<io::PosixReadableFile>(in));
  std::int32_t max_incident = -1;
  std::array<std::int64_t, kTableCount> first_row{};
  for (const SalvagedChunkRef& ref : scan.chunks) {
    std::vector<std::byte> payload(ref.payload_size);
    reader.read_at(ref.payload_offset, payload.data(), payload.size());
    const ChunkInfo info = format::reconstruct_chunk_info(
        ref.table, ref.rows, payload, in);
    const ChunkView view(ref.table, info, nullptr, std::move(payload));
    const auto t = static_cast<std::size_t>(ref.table);
    switch (ref.table) {
      case Table::kServers:
        for (std::uint32_t r = 0; r < view.rows(); ++r) {
          writer.add_server(decode_server(view, r, first_row[t]));
        }
        break;
      case Table::kTickets:
        for (std::uint32_t r = 0; r < view.rows(); ++r) {
          Ticket ticket = decode_ticket(view, r, first_row[t]);
          max_incident = std::max(max_incident, ticket.incident.value);
          writer.add_ticket(ticket);
        }
        break;
      case Table::kWeeklyUsage:
        for (std::uint32_t r = 0; r < view.rows(); ++r) {
          writer.add_weekly_usage(decode_weekly_usage(view, r));
        }
        break;
      case Table::kPowerEvents:
        for (std::uint32_t r = 0; r < view.rows(); ++r) {
          writer.add_power_event(decode_power_event(view, r));
        }
        break;
      case Table::kSnapshots:
        for (std::uint32_t r = 0; r < view.rows(); ++r) {
          writer.add_monthly_snapshot(decode_snapshot(view, r));
        }
        break;
    }
    first_row[t] += view.rows();
    report.rows_recovered += view.rows();
    ++report.chunks_recovered;
    chunks_salvaged_counter().add(1);
    rows_salvaged_counter().add(view.rows());
  }
  writer.set_next_incident(std::max(scan.next_incident, max_incident + 1));
  writer.finish();
  return report;
}

}  // namespace fa::trace
