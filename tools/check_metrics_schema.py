#!/usr/bin/env python3
"""Validate observability JSON exports against checked-in schemas.

Dependency-free (standard library only): implements the small JSON-Schema
subset the checked-in schemas use (type, properties, required, items,
additionalProperties, enum, minimum) instead of requiring the jsonschema
package.

Modes:
  check_metrics_schema.py --schema SCHEMA METRICS_JSON
      Validate a metrics snapshot (fa_trace --metrics / perf_toolkit
      --metrics output) against SCHEMA (tools/metrics_schema.json).

  check_metrics_schema.py --trace SCHEMA TRACE_JSON
      Validate a Chrome trace-event export (--trace-out output) against
      SCHEMA (tools/trace_schema.json).

  check_metrics_schema.py --compare-deterministic A_JSON B_JSON
      Assert that the "deterministic" sections of two metrics snapshots are
      identical (the cross-thread-count determinism contract).

  check_metrics_schema.py --health SCHEMA HEARTBEATS_JSONL
      Validate every line of a health-heartbeat JSONL file (fa_trace
      serve/watch --stats-every --stats-out) against SCHEMA
      (tools/health_schema.json).

  check_metrics_schema.py --compare-health A_JSONL B_JSONL
      Assert that two heartbeat files are identical after dropping each
      line's wall-clock "timing" object (the per-tenant heartbeat
      determinism contract across --threads settings).

Exit status: 0 on success, 1 on any violation (each printed to stderr).
"""

import argparse
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate(instance, schema, path, errors):
    """Validate `instance` against the supported JSON-Schema subset."""
    expected = schema.get("type")
    if expected is not None:
        py_type = TYPES[expected]
        ok = isinstance(instance, py_type)
        # bool is a subclass of int in Python; a boolean is not a number.
        if ok and isinstance(instance, bool) and expected in ("number", "integer"):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(instance).__name__}")
            return

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")

    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key '{key}'")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if key in properties:
                validate(value, properties[key], f"{path}.{key}", errors)
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key '{key}'")

    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"{path}: {e}\n")
        sys.exit(1)


def check_schema(schema_path, data_path):
    schema = load(schema_path)
    data = load(data_path)
    errors = []
    validate(data, schema, "$", errors)
    for e in errors:
        sys.stderr.write(f"{data_path}: {e}\n")
    return 1 if errors else 0


def compare_deterministic(a_path, b_path):
    a = load(a_path).get("deterministic")
    b = load(b_path).get("deterministic")
    if a is None or b is None:
        sys.stderr.write("both files must carry a 'deterministic' section\n")
        return 1
    if not a.get("counters"):
        sys.stderr.write(f"{a_path}: deterministic section is empty — "
                         "nothing meaningful was compared\n")
        return 1
    if a != b:
        for key in sorted(set(a) | set(b)):
            if a.get(key) == b.get(key):
                continue
            av = {json.dumps(x, sort_keys=True) for x in a.get(key, [])}
            bv = {json.dumps(x, sort_keys=True) for x in b.get(key, [])}
            for only_a in sorted(av - bv):
                sys.stderr.write(f"only in {a_path} {key}: {only_a}\n")
            for only_b in sorted(bv - av):
                sys.stderr.write(f"only in {b_path} {key}: {only_b}\n")
        sys.stderr.write("deterministic sections differ\n")
        return 1
    print(f"deterministic sections identical "
          f"({len(a.get('counters', []))} counters)")
    return 0


def load_heartbeats(path):
    """Parses a heartbeat JSONL file into (line_number, object) pairs."""
    beats = []
    try:
        with open(path, encoding="utf-8") as f:
            for number, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    beats.append((number, json.loads(line)))
                except json.JSONDecodeError as e:
                    sys.stderr.write(f"{path}:{number}: {e}\n")
                    sys.exit(1)
    except OSError as e:
        sys.stderr.write(f"{path}: {e}\n")
        sys.exit(1)
    return beats


def check_health(schema_path, data_path):
    schema = load(schema_path)
    beats = load_heartbeats(data_path)
    if not beats:
        sys.stderr.write(f"{data_path}: no heartbeat lines\n")
        return 1
    errors = []
    for number, beat in beats:
        line_errors = []
        validate(beat, schema, "$", line_errors)
        errors.extend(f"line {number} {e}" for e in line_errors)
    for e in errors:
        sys.stderr.write(f"{data_path}: {e}\n")
    if errors:
        return 1
    print(f"{data_path}: ok ({len(beats)} heartbeats)")
    return 0


def compare_health(a_path, b_path):
    def det_lines(path):
        # Drop the wall-clock "timing" object; everything else must match.
        out = []
        for _, beat in load_heartbeats(path):
            beat.pop("timing", None)
            out.append(json.dumps(beat, sort_keys=True))
        return out

    a, b = det_lines(a_path), det_lines(b_path)
    if not a:
        sys.stderr.write(f"{a_path}: no heartbeat lines — "
                         "nothing meaningful was compared\n")
        return 1
    if a != b:
        if len(a) != len(b):
            sys.stderr.write(f"heartbeat counts differ: {len(a)} in {a_path} "
                             f"vs {len(b)} in {b_path}\n")
        for i, (la, lb) in enumerate(zip(a, b), start=1):
            if la != lb:
                sys.stderr.write(f"heartbeat {i} differs:\n"
                                 f"  {a_path}: {la}\n  {b_path}: {lb}\n")
                break
        sys.stderr.write("heartbeat det sections differ\n")
        return 1
    print(f"heartbeat det sections identical ({len(a)} heartbeats)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--schema", metavar="SCHEMA",
                      help="validate a metrics snapshot against SCHEMA")
    mode.add_argument("--trace", metavar="SCHEMA",
                      help="validate a Chrome trace export against SCHEMA")
    mode.add_argument("--health", metavar="SCHEMA",
                      help="validate a heartbeat JSONL file against SCHEMA")
    mode.add_argument("--compare-deterministic", action="store_true",
                      help="compare the deterministic sections of two files")
    mode.add_argument("--compare-health", action="store_true",
                      help="compare two heartbeat files minus wall-clock")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    if args.compare_deterministic:
        if len(args.files) != 2:
            parser.error("--compare-deterministic takes exactly two files")
        return compare_deterministic(args.files[0], args.files[1])
    if args.compare_health:
        if len(args.files) != 2:
            parser.error("--compare-health takes exactly two files")
        return compare_health(args.files[0], args.files[1])
    if args.health:
        if len(args.files) != 1:
            parser.error("--health takes exactly one data file")
        return check_health(args.health, args.files[0])
    schema = args.schema or args.trace
    if len(args.files) != 1:
        parser.error("schema validation takes exactly one data file")
    rc = check_schema(schema, args.files[0])
    if rc == 0:
        print(f"{args.files[0]}: ok")
    return rc


if __name__ == "__main__":
    sys.exit(main())
