// fa_trace — command-line front end of the failure-analysis toolkit.
//
//   fa_trace simulate --out DIR [--scale S] [--seed N]
//       Simulate a datacenter trace and export it as the five-file CSV
//       schema (servers/tickets/weekly_usage/power_events/snapshots).
//
//   fa_trace report DIR
//       Load a CSV trace and print the full failure-analysis summary:
//       population, classification, failure rates, recurrence, repair
//       times, spatial dependency and reliability metrics.
//
//   fa_trace classify DIR
//       Load a CSV trace, run crash extraction + k-means classification
//       and print the per-class ticket distribution (and, when the trace
//       carries ground-truth labels, the accuracy and confusion matrix).
//
//   fa_trace fit DIR (interfailure|repair) (pm|vm)
//       Fit the candidate distributions to the chosen metric and print
//       the ranked results.
//
//   fa_trace transitions DIR
//       Print the same-server weekly failure class-transition matrix.
//
// Global flags (any command):
//   --threads N   worker threads for parallel stages (0 = all cores)
//   --no-cache    disable the in-process artifact cache
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/artifact_cache.h"
#include "src/analysis/failure_rates.h"
#include "src/analysis/interfailure.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/reliability.h"
#include "src/analysis/repair_times.h"
#include "src/analysis/report.h"
#include "src/analysis/spatial.h"
#include "src/analysis/transitions.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/stats/fitting.h"
#include "src/trace/csv_io.h"
#include "src/util/error.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace {

using namespace fa;

int usage() {
  std::cerr
      << "usage:\n"
         "  fa_trace simulate --out DIR [--scale S] [--seed N]\n"
         "  fa_trace report DIR\n"
         "  fa_trace classify DIR\n"
         "  fa_trace fit DIR (interfailure|repair) (pm|vm)\n"
         "  fa_trace transitions DIR\n"
         "global flags: --threads N, --no-cache\n";
  return 2;
}

// Loads a CSV trace and runs the analysis pipeline over it, sharing both
// artifacts through the process-wide cache (so a future multi-command mode
// pays for each trace once).
analysis::AnalysisContext loaded_context(const std::string& dir) {
  auto db = std::make_shared<const trace::TraceDatabase>(
      trace::load_database(dir));
  auto pipeline = analysis::ArtifactCache::global().pipeline(db);
  return {std::move(db), std::move(pipeline)};
}

int cmd_simulate(const std::vector<std::string>& args) {
  std::string out;
  double scale = 1.0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::atof(args[++i].c_str());
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      have_seed = true;
    } else {
      std::cerr << "simulate: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (out.empty() || scale <= 0.0 || scale > 1.0) return usage();

  auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
  if (have_seed) config.seed = seed;
  const auto db_ptr = analysis::ArtifactCache::global().database(config);
  const trace::TraceDatabase& db = *db_ptr;
  const auto validation = sim::validate_trace(db, config);
  trace::save_database(db, out);
  std::cout << "wrote " << db.servers().size() << " servers, "
            << db.tickets().size() << " tickets to " << out << "\n"
            << validation.to_string();
  return validation.ok() ? 0 : 1;
}

int cmd_report(const std::string& dir) {
  const auto ctx = loaded_context(dir);
  const trace::TraceDatabase& db = *ctx.db;
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto& failures = pipeline.failures();

  std::cout << "trace: " << db.servers().size() << " servers ("
            << db.server_count(trace::MachineType::kPhysical) << " PM, "
            << db.server_count(trace::MachineType::kVirtual) << " VM), "
            << db.tickets().size() << " tickets, " << failures.size()
            << " crash tickets\n\n";

  analysis::TextTable table({"metric", "PM", "VM"});
  std::array<analysis::ReliabilityReport, 2> reports;
  std::array<double, 2> recurrence{}, random{};
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                std::nullopt};
    reports[static_cast<std::size_t>(t)] =
        analysis::reliability_report(db, failures, scope);
    recurrence[static_cast<std::size_t>(t)] = analysis::recurrent_probability(
        db, failures, scope, kMinutesPerWeek);
    random[static_cast<std::size_t>(t)] = analysis::random_failure_probability(
        db, failures, scope, analysis::Granularity::kWeekly);
  }
  const auto row = [&](const std::string& name, auto fn) {
    table.add_row({name, fn(0), fn(1)});
  };
  row("weekly failure rate", [&](int t) {
    const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                std::nullopt};
    return format_double(
        analysis::failure_rate_summary(db, failures, scope,
                                       analysis::Granularity::kWeekly)
            .mean,
        5);
  });
  row("random weekly probability",
      [&](int t) { return format_double(random[static_cast<std::size_t>(t)], 5); });
  row("recurrent weekly probability", [&](int t) {
    return format_double(recurrence[static_cast<std::size_t>(t)], 3);
  });
  row("recurrence ratio", [&](int t) {
    const auto i = static_cast<std::size_t>(t);
    return random[i] > 0 ? format_double(recurrence[i] / random[i], 1) + "x"
                         : std::string("n.a.");
  });
  row("MTTR [hours]", [&](int t) {
    return format_double(reports[static_cast<std::size_t>(t)].mttr_hours, 1);
  });
  row("availability", [&](int t) {
    return format_double(
               100.0 * reports[static_cast<std::size_t>(t)].availability, 4) +
           "%";
  });
  std::cout << table.to_string() << "\n";

  const auto spatial = analysis::analyze_spatial(db, pipeline.class_lookup());
  std::cout << "incidents: " << spatial.incident_count << " ("
            << format_double(100.0 * spatial.all.two_or_more, 1)
            << "% affect >= 2 servers; widest "
            << spatial.max_servers_in_incident << " servers)\n";
  return 0;
}

int cmd_classify(const std::string& dir) {
  const auto ctx = loaded_context(dir);
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto& result = pipeline.classification();

  analysis::TextTable table({"class", "tickets", "share"});
  std::array<int, trace::kFailureClassCount> counts{};
  for (const trace::Ticket* t : pipeline.failures()) {
    ++counts[static_cast<std::size_t>(pipeline.class_of(*t))];
  }
  const auto total = static_cast<double>(pipeline.failures().size());
  for (trace::FailureClass c : trace::kAllFailureClasses) {
    const int n = counts[static_cast<std::size_t>(c)];
    table.add_row({std::string(trace::to_string(c)), std::to_string(n),
                   format_double(100.0 * n / total, 1) + "%"});
  }
  std::cout << table.to_string() << "\naccuracy vs trace labels: "
            << format_double(100.0 * result.accuracy, 1) << "%\n";
  return 0;
}

int cmd_fit(const std::string& dir, const std::string& metric,
            const std::string& type_name) {
  const auto ctx = loaded_context(dir);
  const trace::TraceDatabase& db = *ctx.db;
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto type = trace::machine_type_from_string(
      type_name == "pm" ? "PM" : type_name == "vm" ? "VM" : type_name);
  const analysis::Scope scope{type, std::nullopt};

  std::vector<double> sample;
  if (metric == "interfailure") {
    sample = analysis::per_server_interfailure_days(db, pipeline.failures(),
                                                    scope);
  } else if (metric == "repair") {
    sample = analysis::repair_hours(db, pipeline.failures(), scope);
  } else {
    return usage();
  }
  require(sample.size() >= 30, "fit: sample too small (" +
                                   std::to_string(sample.size()) +
                                   " observations)");

  analysis::TextTable table({"family", "parameters", "logL", "AIC", "KS"});
  for (const auto& fit : stats::fit_candidates(sample)) {
    table.add_row({fit.dist->name(), fit.dist->describe(),
                   format_double(fit.log_likelihood, 1),
                   format_double(fit.aic, 1),
                   format_double(fit.ks_statistic, 4)});
  }
  std::cout << metric << " sample (" << type_name << "): " << sample.size()
            << " observations\n"
            << table.to_string();
  return 0;
}

int cmd_transitions(const std::string& dir) {
  const auto ctx = loaded_context(dir);
  const trace::TraceDatabase& db = *ctx.db;
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto result = analysis::analyze_transitions(
      db, pipeline.failures(), pipeline.class_lookup(), kMinutesPerWeek);

  analysis::TextTable table({"from \\ to", "HW", "Net", "Power", "Reboot",
                             "SW", "Other", "P(follow-up)"});
  for (trace::FailureClass from : trace::kAllFailureClasses) {
    const auto i = static_cast<std::size_t>(from);
    std::vector<std::string> row = {std::string(trace::to_string(from))};
    for (std::size_t j = 0; j < trace::kFailureClassCount; ++j) {
      row.push_back(format_double(result.probability[i][j], 2));
    }
    row.push_back(format_double(result.followup_probability[i], 3));
    table.add_row(std::move(row));
  }
  std::cout << "same-server class transitions within a week\n"
            << table.to_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-cache") {
      fa::analysis::ArtifactCache::global().set_enabled(false);
    } else if (arg == "--threads" && i + 1 < argc) {
      fa::ThreadPool::set_default_thread_count(
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10)));
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return usage();
  try {
    const std::string& command = args[0];
    if (command == "simulate") {
      return cmd_simulate({args.begin() + 1, args.end()});
    }
    if (command == "report" && args.size() == 2) return cmd_report(args[1]);
    if (command == "classify" && args.size() == 2) {
      return cmd_classify(args[1]);
    }
    if (command == "fit" && args.size() == 4) {
      return cmd_fit(args[1], args[2], args[3]);
    }
    if (command == "transitions" && args.size() == 2) {
      return cmd_transitions(args[1]);
    }
    return usage();
  } catch (const fa::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
